"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.consensus.paxos import PaxosConsensus
from repro.fdetect.heartbeat import HeartbeatDetector
from repro.fdetect.omega import OmegaOracle
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.sim.rng import SeedSequence
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.network import Network, NetworkConfig


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


class MiniCluster:
    """A hand-rolled small cluster for unit tests below the harness level.

    Exposes the raw pieces (nodes, endpoints, detectors, consensuses) so
    tests can poke at individual layers without the full harness.
    """

    def __init__(self, n: int = 3, seed: int = 0,
                 network_config: NetworkConfig = None,
                 with_consensus: bool = True,
                 attempt_timeout: float = 1.0):
        self.sim = Simulator()
        self.seeds = SeedSequence(seed)
        self.network = Network(self.sim, self.seeds.stream("net"),
                               network_config or NetworkConfig())
        self.nodes = {}
        self.endpoints = {}
        self.detectors = {}
        self.omegas = {}
        self.consensuses = {}
        for i in range(n):
            node = Node(self.sim, i, MemoryStorage())
            endpoint = node.add_component(Endpoint(self.network))
            self.endpoints[i] = endpoint
            if with_consensus:
                detector = node.add_component(HeartbeatDetector(endpoint))
                omega = node.add_component(OmegaOracle(detector))
                consensus = node.add_component(PaxosConsensus(
                    endpoint, omega, attempt_timeout=attempt_timeout))
                self.detectors[i] = detector
                self.omegas[i] = omega
                self.consensuses[i] = consensus
            self.network.register(node)
            self.nodes[i] = node

    def start(self):
        for node in self.nodes.values():
            node.start()
        return self

    def run(self, until):
        return self.sim.run(until=until)


@pytest.fixture
def mini_cluster():
    """Factory for small raw clusters."""
    return MiniCluster
