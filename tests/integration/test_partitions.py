"""Integration tests: partitions, healing, and the PartitionSchedule."""

from __future__ import annotations

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import verify_run
from repro.sim.faults import PartitionSchedule
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload, ScheduledWorkload


def build(n=3, seed=0, protocol="basic"):
    cluster = Cluster(ClusterConfig(
        n=n, seed=seed, protocol=protocol,
        network=NetworkConfig(loss_rate=0.02)))
    cluster.start()
    return cluster


class TestPartitionSchedule:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            PartitionSchedule().isolate(5.0, 5.0, [0])

    def test_cut_and_heal(self):
        cluster = build()
        PartitionSchedule().isolate(1.0, 3.0, [2]).install(
            cluster.sim, cluster.network)
        cluster.run(until=2.0)
        assert cluster.network.is_partitioned(2, 0)
        assert cluster.network.is_partitioned(2, 1)
        assert not cluster.network.is_partitioned(0, 1)
        cluster.run(until=4.0)
        assert not cluster.network.is_partitioned(2, 0)

    def test_minority_partition_then_converge(self):
        cluster = build(seed=21)
        PartitionSchedule().isolate(2.0, 8.0, [2]).install(
            cluster.sim, cluster.network)
        PoissonWorkload(1.0, 10.0, seed=21).install(cluster)
        cluster.run(until=20.0)
        assert cluster.settle(limit=200.0)
        verify_run(cluster)
        counts = [ab.delivered_count()
                  for ab in cluster.abcasts.values()]
        assert counts[0] == counts[1] == counts[2] > 0

    def test_majority_side_keeps_ordering_during_partition(self):
        cluster = build(seed=22, n=5)
        PartitionSchedule().isolate(2.0, 12.0, [3, 4]).install(
            cluster.sim, cluster.network)
        plan = [(3.0 + 0.3 * j, j % 3, ("m", j)) for j in range(10)]
        ScheduledWorkload(plan).install(cluster)
        cluster.run(until=10.0)
        # Majority side {0,1,2} ordered everything while cut off.
        assert cluster.abcasts[0].delivered_count() == 10
        assert cluster.abcasts[3].delivered_count() == 0
        cluster.run(until=25.0)
        assert cluster.settle(limit=300.0)
        verify_run(cluster)
        assert cluster.abcasts[3].delivered_count() == 10

    def test_minority_side_blocks_no_split_brain(self):
        """Safety: the isolated minority cannot decide on its own."""
        cluster = build(seed=23, n=5)
        PartitionSchedule().isolate(1.0, 40.0, [3, 4]).install(
            cluster.sim, cluster.network)
        cluster.run(until=2.0)
        # Only the minority side submits.
        cluster.submit(3, "minority-message")
        cluster.run(until=30.0)
        # Neither side of the partition delivered it: the minority lacks
        # a quorum and the majority never heard of it.
        assert all(ab.delivered_count() == 0
                   for ab in cluster.abcasts.values())
        # After healing it goes through everywhere.
        cluster.run(until=60.0)
        assert cluster.settle(limit=400.0)
        verify_run(cluster)
        assert all(ab.delivered_count() == 1
                   for ab in cluster.abcasts.values())

    def test_repeated_flapping_partitions(self):
        cluster = build(seed=24)
        schedule = PartitionSchedule()
        for window in range(4):
            start = 2.0 + window * 3.0
            schedule.isolate(start, start + 1.5, [window % 3])
        schedule.install(cluster.sim, cluster.network)
        PoissonWorkload(1.0, 14.0, seed=24).install(cluster)
        cluster.run(until=25.0)
        assert cluster.settle(limit=300.0)
        verify_run(cluster)
