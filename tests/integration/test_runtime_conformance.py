"""Cross-runtime conformance: sim and live A-deliver the same stream.

One scenario — 3 nodes, 30 single-sender broadcasts, one kill/restart of
the highest node — runs on both runtime implementations:

* ``SimRuntime``: virtual time, simulated lossy network, in-memory
  storage surviving crashes;
* ``LiveRuntime``: real asyncio timing, localhost UDP datagrams with
  injected loss/duplication, fsync'd files surviving a process-style
  kill (socket closed, storage handle discarded, recovery replays from
  disk).

Both runs must pass the omniscient verifier (Validity, Integrity, Total
Order, Termination) and produce the *identical* canonical delivery
order.  A single sender makes that comparison sound: batches respect the
deterministic MessageId order and gossip carries whole Unordered sets,
so any batch containing message *i+1* also contains every undelivered
message up to *i* — the canonical sequence is then a pure function of
the submission sequence, whatever the timing.
"""

from __future__ import annotations

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.live import LiveCluster
from repro.harness.verify import verify_run
from repro.transport.network import NetworkConfig

N_NODES = 3
N_MESSAGES = 30
SEED = 11
PAYLOADS = [f"conf-{i}" for i in range(N_MESSAGES)]
# One timeline for both runtimes (virtual seconds == wall seconds):
# 30 submissions from node 0 over [0.05, 1.55), node 2 killed at 0.8
# (mid-stream) and restarted at 1.4, so recovery must replay from its
# log while the sender keeps broadcasting.
SUBMIT_TIMES = [0.05 + i * 0.05 for i in range(N_MESSAGES)]
KILL_AT = 0.8
RESTART_AT = 1.4
RUN_UNTIL = 2.0
VICTIM = N_NODES - 1


def _config() -> ClusterConfig:
    return ClusterConfig(
        n=N_NODES, seed=SEED, protocol="basic",
        network=NetworkConfig(loss_rate=0.05, duplicate_rate=0.05),
        gossip_interval=0.1)


def _canonical_payloads(cluster) -> list:
    report = verify_run(cluster)
    payloads = cluster.collector.broadcast_payloads
    return [payloads[mid] for mid in report.canonical]


def _run_sim() -> list:
    cluster = Cluster(_config())
    cluster.start()
    for when, payload in zip(SUBMIT_TIMES, PAYLOADS):
        cluster.sim.schedule(when, cluster.submit, 0, payload)
    cluster.sim.schedule(KILL_AT, cluster.crash, VICTIM)
    cluster.sim.schedule(RESTART_AT, cluster.recover, VICTIM)
    cluster.sim.run(until=RUN_UNTIL)
    assert cluster.settle(limit=60.0), "sim run did not settle"
    assert cluster.nodes[VICTIM].recovery_count == 1
    return _canonical_payloads(cluster)


def _run_live(tmp_path) -> list:
    cluster = LiveCluster(_config(), str(tmp_path))
    with cluster:
        cluster.start()
        for when, payload in zip(SUBMIT_TIMES, PAYLOADS):
            cluster.runtime.schedule(when, cluster.submit, 0, payload)
        cluster.run_for(KILL_AT)
        cluster.kill(VICTIM)
        cluster.run_for(RESTART_AT - KILL_AT)
        cluster.restart(VICTIM)
        cluster.run_for(RUN_UNTIL - RESTART_AT)
        assert cluster.settle(limit=30.0), "live run did not settle"
        assert cluster.nodes[VICTIM].recovery_count == 1
        # The kill really crossed a process boundary: datagrams flowed.
        assert cluster.network.metrics.sent > 0
        return _canonical_payloads(cluster)


@pytest.fixture(scope="module")
def canonical_orders(tmp_path_factory):
    live = _run_live(tmp_path_factory.mktemp("live-cluster"))
    sim = _run_sim()
    return {"sim": sim, "live": live}


@pytest.mark.parametrize("runtime", ["sim", "live"])
def test_runtime_passes_verifier_and_delivers_everything(
        canonical_orders, runtime):
    # _canonical_payloads already ran the omniscient verifier (it raises
    # on any property violation); here we pin down completeness.
    order = canonical_orders[runtime]
    assert len(order) == N_MESSAGES
    assert sorted(order) == sorted(PAYLOADS)


def test_delivery_order_identical_across_runtimes(canonical_orders):
    assert canonical_orders["live"] == canonical_orders["sim"]
    # And the single-sender argument predicts submission order exactly.
    assert canonical_orders["sim"] == PAYLOADS


def test_live_survives_heavy_loss_via_stubborn_channels(tmp_path):
    """20% injected UDP loss, zero protocol-level message loss.

    The live network drops every fifth datagram on the floor; the
    stubborn-channel layer (on by default for the live harness) must
    turn that fair-lossy link back into a reliable one by ack-gated
    retransmission, so the verifier still sees every submission
    A-delivered everywhere.  This is the Aguilera/Chen/Toueg stubborn
    link assumption the paper's protocols are written against,
    demonstrated on real sockets rather than assumed.
    """
    n_messages = 20
    cluster = LiveCluster(ClusterConfig(
        n=N_NODES, seed=SEED, protocol="basic",
        network=NetworkConfig(loss_rate=0.2),
        gossip_interval=0.1), str(tmp_path))
    with cluster:
        cluster.start()
        for i in range(n_messages):
            cluster.runtime.schedule(0.05 + i * 0.05, cluster.submit,
                                     0, f"loss-{i}")
        cluster.run_for(0.05 + n_messages * 0.05)
        assert cluster.settle(limit=30.0), "lossy live run did not settle"
        order = _canonical_payloads(cluster)
        # Zero protocol-level loss: everything submitted was ordered
        # and delivered, in submission order (single sender).
        assert order == [f"loss-{i}" for i in range(n_messages)]
        # The loss was real and the recovery mechanism did the work.
        assert cluster.network.metrics.lost > 0
        assert cluster.stubborn is not None
        assert cluster.stubborn.metrics.retransmissions > 0
        assert cluster.stubborn.metrics.acks_received > 0
