"""Integration: the full protocol stack running on file-backed storage.

Demonstrates that the protocols are substrate-agnostic: the same code
paths write real JSON files through the atomic write-temp-rename pattern,
and a recovering node replays from what is physically on disk.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import verify_run
from repro.storage.file import FileStorage
from repro.transport.network import NetworkConfig
from repro.workloads.generators import ScheduledWorkload


@pytest.fixture
def file_cluster(tmp_path):
    config = ClusterConfig(
        n=3, seed=50, protocol="basic",
        network=NetworkConfig(loss_rate=0.02),
        storage_factory=lambda i: FileStorage(str(tmp_path / f"node{i}")))
    cluster = Cluster(config)
    cluster.start()
    return cluster, tmp_path


class TestFileBackedCluster:
    def test_orders_and_verifies_on_disk(self, file_cluster):
        cluster, tmp_path = file_cluster
        plan = [(0.5 + 0.2 * j, j % 3, ("op", j)) for j in range(12)]
        ScheduledWorkload(plan).install(cluster)
        cluster.run(until=15.0)
        assert cluster.settle(limit=90.0)
        verify_run(cluster)
        # Proposals physically exist as files.
        node0_files = os.listdir(str(tmp_path / "node0"))
        assert any("consensus" in name for name in node0_files)
        assert any("paxos" in name for name in node0_files)

    def test_recovery_replays_from_disk(self, file_cluster):
        cluster, tmp_path = file_cluster
        plan = [(0.5 + 0.2 * j, 0, ("op", j)) for j in range(10)]
        ScheduledWorkload(plan).install(cluster)
        cluster.run(until=10.0)
        before = [m.payload for m in cluster.abcasts[1].deliver_sequence()]
        cluster.nodes[1].crash()
        cluster.run(until=11.0)
        cluster.nodes[1].recover()
        cluster.run(until=50.0)
        after = [m.payload for m in cluster.abcasts[1].deliver_sequence()]
        assert after[:len(before)] == before
        assert len(after) == 10

    def test_fresh_storage_object_reads_same_log(self, file_cluster):
        """Simulates a true OS-level process restart: a brand-new
        FileStorage over the same directory sees the same durable state."""
        cluster, tmp_path = file_cluster
        plan = [(0.5 + 0.2 * j, 0, ("op", j)) for j in range(5)]
        ScheduledWorkload(plan).install(cluster)
        cluster.run(until=10.0)
        old = cluster.nodes[0].storage
        reopened = FileStorage(old.directory)
        assert sorted(reopened.keys()) == sorted(old.keys())
        for key in old.keys():
            assert reopened.retrieve(key) == old.retrieve(key)
