"""Integration tests for elastic reconfiguration: the seeded churn
scenario, view-timeline reproducibility and the chaos churn nemesis."""

from __future__ import annotations

import pytest

from repro.chaos.controller import SimChaosController
from repro.chaos.engine import ChaosConfig, explore
from repro.chaos.events import ChaosEvent
from repro.harness.cluster import Cluster, ClusterConfig
from repro.membership.scenario import (check_churn_reproducibility,
                                       run_churn_scenario)


class TestChurnScenario:
    def test_seeded_churn_run_verifies(self):
        report = run_churn_scenario(seed=0)
        # n=5 grew by two state-transfer joins, then shrank by two
        # evictions (one while the victim was crashed) and a leave.
        assert report.final_view.epoch == 5
        assert report.final_view.members == (0, 1, 5, 6)
        assert report.joiners == [5, 6]
        assert report.transfers_adopted >= 2
        # Uniform total order held across every epoch.
        assert report.verification is not None

    def test_joiners_bootstrap_by_state_transfer(self):
        report = run_churn_scenario(seed=2)
        for joiner in report.joiners:
            assert joiner in report.final_view.members

    def test_view_timeline_reproducible(self):
        # Same seed, two full runs: the (node, epoch, members, origin)
        # install sequence must be bit-identical.
        check_churn_reproducibility(seed=0)

    def test_view_installs_monotone_per_node(self):
        report = run_churn_scenario(seed=1)
        last: dict = {}
        for install in report.view_installs:
            node_id, epoch = install[0], install[1]
            assert epoch > last.get(node_id, -1)
            last[node_id] = epoch


class TestChurnNemesis:
    def test_small_churn_sweep_verifies(self):
        config = ChaosConfig(seeds=3, churn=True, master_seed=7)
        report = explore(config)
        assert report.ok, [f.error for f in report.failures]

    def test_churn_absent_from_default_sweep(self):
        config = ChaosConfig(seeds=1)
        assert all(nemesis.name != "churn" for nemesis in config.nemeses)

    def test_churn_flag_appends_nemesis(self):
        config = ChaosConfig(seeds=1, churn=True)
        assert any(nemesis.name == "churn" for nemesis in config.nemeses)


class TestChurnControllerGuards:
    def _controller(self, n=3):
        cluster = Cluster(ClusterConfig(n=n, seed=0,
                                        protocol="alternative"))
        cluster.start()
        cluster.sim.run(until=1.0)
        return SimChaosController(cluster, base_loss=0.0)

    def test_join_of_existing_node_skipped(self):
        controller = self._controller()
        controller.apply(ChaosEvent(1.0, "join", node=2))
        assert controller.applied == []

    def test_removal_below_two_members_skipped(self):
        controller = self._controller(n=2)
        controller.apply(ChaosEvent(1.0, "leave", node=1))
        assert controller.applied == []
        assert controller.cluster.current_view().members == (0, 1)

    def test_removal_of_non_member_skipped(self):
        controller = self._controller()
        controller.apply(ChaosEvent(1.0, "evict", node=9))
        assert controller.applied == []

    def test_evict_crashes_running_victim(self):
        controller = self._controller()
        controller.apply(ChaosEvent(1.0, "evict", node=2))
        assert not controller.cluster.nodes[2].up
        kinds = [event.kind for event in controller.applied]
        assert kinds == ["evict", "crash"]

    def test_leave_keeps_victim_running(self):
        controller = self._controller()
        controller.apply(ChaosEvent(1.0, "leave", node=2))
        assert controller.cluster.nodes[2].up
        controller.cluster.sim.run(until=5.0)
        assert controller.cluster.current_view().members == (0, 1)
