"""Integration tests for multi-group total order multicast (Section 6.4)."""

from __future__ import annotations

import pytest

from repro.errors import BroadcastError, SimulationError
from repro.multigroup import MultiGroupCluster
from repro.transport.network import NetworkConfig


def build(groups, seed=0, loss=0.05):
    cluster = MultiGroupCluster(groups, seed=seed,
                                network=NetworkConfig(loss_rate=loss))
    cluster.start()
    return cluster


def payloads(cluster, group, node_id):
    return [payload for _, payload in cluster.sequences(group)[node_id]]


class TestSingleGroup:
    def test_degenerates_to_atomic_broadcast(self):
        cluster = build({"g": [0, 1, 2]}, seed=1)
        for j in range(6):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.multicast,
                                 j % 3, f"m{j}", ["g"])
        cluster.run(until=25.0)
        cluster.check_group_agreement("g")
        assert len(payloads(cluster, "g", 0)) == 6
        assert payloads(cluster, "g", 0) == payloads(cluster, "g", 1) \
            == payloads(cluster, "g", 2)


class TestOverlappingGroups:
    def test_cross_group_messages_ordered_consistently(self):
        cluster = build({"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=2)
        for j in range(5):
            cluster.sim.schedule(0.5 + 0.3 * j, cluster.multicast,
                                 0, f"a{j}", ["g1"])
            cluster.sim.schedule(0.6 + 0.3 * j, cluster.multicast,
                                 3, f"b{j}", ["g2"])
            cluster.sim.schedule(0.7 + 0.3 * j, cluster.multicast,
                                 2, f"x{j}", ["g1", "g2"])
        cluster.run(until=60.0)
        cluster.check_group_agreement("g1")
        cluster.check_group_agreement("g2")
        cluster.check_pairwise_total_order()
        # Every group delivers all of its messages.
        assert len(payloads(cluster, "g1", 0)) == 10
        assert len(payloads(cluster, "g2", 4)) == 10
        # Cross-group messages keep their relative order in both groups.
        g1_cross = [p for p in payloads(cluster, "g1", 0)
                    if p.startswith("x")]
        g2_cross = [p for p in payloads(cluster, "g2", 3)
                    if p.startswith("x")]
        assert g1_cross == g2_cross

    def test_three_groups_chain(self):
        cluster = build({"a": [0, 1, 2], "b": [2, 3, 4], "c": [4, 5, 6]},
                        seed=3)
        cluster.sim.schedule(0.5, cluster.multicast, 2, "ab", ["a", "b"])
        cluster.sim.schedule(0.7, cluster.multicast, 4, "bc", ["b", "c"])
        cluster.sim.schedule(0.9, cluster.multicast, 0, "a-only", ["a"])
        cluster.run(until=60.0)
        for group in ("a", "b", "c"):
            cluster.check_group_agreement(group)
        cluster.check_pairwise_total_order()
        assert "ab" in payloads(cluster, "a", 0)
        assert "ab" in payloads(cluster, "b", 3)
        assert "bc" in payloads(cluster, "c", 5)

    def test_disjoint_groups_progress_independently(self):
        cluster = build({"left": [0, 1, 2], "right": [3, 4, 5]}, seed=4)
        for j in range(4):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.multicast,
                                 0, f"l{j}", ["left"])
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.multicast,
                                 3, f"r{j}", ["right"])
        cluster.run(until=30.0)
        assert len(payloads(cluster, "left", 1)) == 4
        assert len(payloads(cluster, "right", 4)) == 4


class TestCrashRecovery:
    def test_bridge_node_crash_and_recovery(self):
        cluster = build({"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=5)
        for j in range(3):
            cluster.sim.schedule(0.5 + 0.3 * j, cluster.multicast,
                                 2, f"x{j}", ["g1", "g2"])
        cluster.sim.schedule(3.0, cluster.nodes[2].crash)
        cluster.sim.schedule(3.5, cluster.multicast, 0, "during", ["g1"])
        cluster.sim.schedule(6.0, cluster.nodes[2].recover)
        cluster.run(until=80.0)
        cluster.check_group_agreement("g1")
        cluster.check_group_agreement("g2")
        cluster.check_pairwise_total_order()
        # The recovered bridge caught up in both of its groups.
        assert set(payloads(cluster, "g1", 2)) == \
            set(payloads(cluster, "g1", 0))
        assert set(payloads(cluster, "g2", 2)) == \
            set(payloads(cluster, "g2", 3))

    def test_sender_crash_after_partial_submit_is_repaired(self):
        """The relay path: if the sender dies right after submitting,
        whichever group got the message re-injects it into the others."""
        cluster = build({"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=6,
                        loss=0.02)
        cluster.run(until=1.0)
        # Bypass the public API to submit to only ONE group's AB, then
        # crash the sender — simulating a crash between the two submits.
        layer = cluster.layers[2]
        mid = (2, cluster.group_abs[2]["g1"].incarnation, 999)
        cluster.group_abs[2]["g1"].submit(
            ("mgp", mid, ("g1", "g2"), "half-sent"))
        cluster.run(until=1.6)
        cluster.nodes[2].crash()
        cluster.run(until=60.0)
        # g1 members relayed the body into g2; both groups delivered it.
        assert "half-sent" in payloads(cluster, "g1", 0)
        assert "half-sent" in payloads(cluster, "g2", 3)
        cluster.check_pairwise_total_order()

    def test_member_crash_in_one_group_does_not_block_other(self):
        cluster = build({"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=7)
        cluster.sim.schedule(1.0, cluster.nodes[0].crash)  # g1-only member
        for j in range(4):
            cluster.sim.schedule(1.5 + 0.2 * j, cluster.multicast,
                                 3, f"r{j}", ["g2"])
        cluster.run(until=30.0)
        assert len(payloads(cluster, "g2", 3)) == 4


class TestValidation:
    def test_non_member_multicast_rejected(self):
        cluster = build({"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=8)
        with pytest.raises(BroadcastError):
            cluster.layers[0].multicast("nope", ["g2"])

    def test_empty_groups_rejected(self):
        cluster = build({"g1": [0, 1, 2]}, seed=9)
        with pytest.raises(BroadcastError):
            cluster.layers[0].multicast("nope", [])

    def test_sparse_node_ids_rejected(self):
        with pytest.raises(SimulationError):
            MultiGroupCluster({"g": [0, 5]})

    def test_no_groups_rejected(self):
        with pytest.raises(SimulationError):
            MultiGroupCluster({})


class TestScopedIsolation:
    def test_group_storage_is_namespaced(self):
        cluster = build({"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=10)
        cluster.sim.schedule(0.5, cluster.multicast, 2, "x", ["g1", "g2"])
        cluster.run(until=20.0)
        keys = list(cluster.nodes[2].storage.keys())
        assert any(key.startswith("consensus@g1/") for key in keys)
        assert any(key.startswith("consensus@g2/") for key in keys)
        assert any(key.startswith("ab@g1/") for key in keys)

    def test_determinism(self):
        def run():
            cluster = build({"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=11)
            for j in range(4):
                cluster.sim.schedule(0.5 + 0.3 * j, cluster.multicast,
                                     2, f"x{j}", ["g1", "g2"])
            cluster.run(until=40.0)
            return (payloads(cluster, "g1", 0),
                    payloads(cluster, "g2", 4))

        assert run() == run()
