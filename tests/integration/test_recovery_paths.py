"""Integration tests focused on the three recovery paths of the paper.

1. Full replay from round 0 (basic protocol, Section 4.2).
2. Replay from a durable checkpoint (Section 5.1).
3. State transfer, skipping missed instances (Section 5.3).
"""

from __future__ import annotations

import pytest

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import verify_run
from repro.transport.network import NetworkConfig
from repro.workloads.generators import ScheduledWorkload


def build(protocol="alternative", alt=None, seed=0, n=3,
          app_factory=None):
    extra = {"app_factory": app_factory} if app_factory else {}
    cluster = Cluster(ClusterConfig(
        n=n, seed=seed, protocol=protocol,
        network=NetworkConfig(loss_rate=0.05),
        alt=alt, **extra))
    cluster.start()
    return cluster


def steady_load(cluster, count, start=0.5, gap=0.25):
    plan = [(start + gap * j, j % len(cluster.nodes), ("m", j))
            for j in range(count)]
    ScheduledWorkload(plan).install(cluster)


class TestReplayFromZero:
    def test_replay_work_grows_with_history(self):
        """Basic protocol: the longer the history, the longer the replay —
        the cost Section 5.1 is designed to cut."""
        def replayed_after(history_len):
            cluster = build(protocol="basic", seed=40)
            steady_load(cluster, history_len, gap=0.2)
            cluster.run(until=history_len * 0.2 + 6.0)
            cluster.nodes[1].crash()
            cluster.nodes[1].recover()
            cluster.run(until=history_len * 0.2 + 40.0)
            return cluster.abcasts[1].replayed_rounds

        short = replayed_after(5)
        long = replayed_after(25)
        assert long > short

    def test_replay_preserves_exact_prefix(self):
        cluster = build(protocol="basic", seed=41)
        steady_load(cluster, 12)
        cluster.run(until=10.0)
        before = [m.id for m in cluster.abcasts[0].deliver_sequence()]
        cluster.nodes[0].crash()
        cluster.run(until=11.0)
        cluster.nodes[0].recover()
        cluster.run(until=50.0)
        after = [m.id for m in cluster.abcasts[0].deliver_sequence()]
        assert after[:len(before)] == before
        assert cluster.settle(limit=120.0)
        verify_run(cluster)


class TestReplayFromCheckpoint:
    def test_checkpoint_bounds_replay_work(self):
        def replayed(checkpoint_interval):
            alt = AlternativeConfig(checkpoint_interval=checkpoint_interval,
                                    delta=None)
            cluster = build(alt=alt, seed=42)
            steady_load(cluster, 25, gap=0.2)
            cluster.run(until=12.0)
            cluster.nodes[1].crash()
            cluster.nodes[1].recover()
            cluster.run(until=60.0)
            return cluster.abcasts[1].replayed_rounds

        frequent = replayed(0.5)
        rare = replayed(20.0)  # effectively never checkpoints before crash
        assert frequent < rare

    def test_checkpointed_recovery_verifies(self):
        cluster = build(alt=AlternativeConfig(checkpoint_interval=1.0),
                        seed=43)
        steady_load(cluster, 20, gap=0.2)
        cluster.run(until=8.0)
        cluster.nodes[2].crash()
        cluster.run(until=9.0)
        cluster.nodes[2].recover()
        cluster.run(until=30.0)
        assert cluster.settle(limit=120.0)
        verify_run(cluster)


class TestStateTransferPath:
    def test_state_transfer_beats_replay_for_long_outage(self):
        """With Δ small, a long-dead node adopts state and skips rounds."""
        alt = AlternativeConfig(checkpoint_interval=2.0, delta=2)
        cluster = build(alt=alt, seed=44)
        cluster.run(until=1.0)
        cluster.nodes[2].crash()
        steady_load(cluster, 40, start=1.5, gap=0.15)
        cluster.run(until=10.0)
        rounds_at_up_nodes = cluster.abcasts[0].k
        cluster.nodes[2].recover()
        cluster.run(until=60.0)
        ab = cluster.abcasts[2]
        assert ab.rounds_skipped > 0
        # It did not replay anywhere near the full history.
        assert ab.replayed_rounds < rounds_at_up_nodes / 2
        assert cluster.settle(limit=180.0)
        verify_run(cluster)

    def test_app_state_carried_by_state_message(self):
        from repro.apps.kvstore import KeyValueStore
        alt = AlternativeConfig(checkpoint_interval=2.0, delta=2)
        cluster = build(alt=alt, seed=45, app_factory=KeyValueStore)
        cluster.run(until=1.0)
        cluster.nodes[2].crash()
        plan = [(1.5 + 0.15 * j, 0, ("put", f"k{j}", j)) for j in range(30)]
        ScheduledWorkload(plan).install(cluster)
        cluster.run(until=10.0)
        cluster.nodes[2].recover()
        cluster.run(until=60.0)
        assert cluster.settle(limit=180.0)
        assert cluster.app(2).data == cluster.app(0).data
        verify_run(cluster)

    def test_all_three_paths_in_one_run(self):
        """Crash three nodes at different times with different outage
        lengths; whatever mix of paths they take, the run must verify."""
        alt = AlternativeConfig(checkpoint_interval=1.5, delta=3)
        cluster = build(alt=alt, seed=46)
        steady_load(cluster, 50, gap=0.2)
        cluster.sim.schedule(2.0, cluster.nodes[0].crash)
        cluster.sim.schedule(2.8, cluster.nodes[0].recover)   # short
        cluster.sim.schedule(4.0, cluster.nodes[1].crash)
        cluster.sim.schedule(7.0, cluster.nodes[1].recover)   # medium
        cluster.sim.schedule(5.0, cluster.nodes[2].crash)
        cluster.sim.schedule(11.0, cluster.nodes[2].recover)  # long
        cluster.run(until=25.0)
        assert cluster.settle(limit=200.0)
        verify_run(cluster)
        seqs = [[m.id for m in ab.deliver_sequence()]
                for ab in cluster.abcasts.values()]
        # All nodes converged to the same delivered set.
        counts = [ab.delivered_count() for ab in cluster.abcasts.values()]
        assert counts[0] == counts[1] == counts[2]


class TestRecoveryMetrics:
    def test_recovery_durations_recorded(self):
        cluster = build(protocol="basic", seed=47)
        steady_load(cluster, 10)
        cluster.run(until=6.0)
        cluster.nodes[1].crash()
        cluster.run(until=7.0)
        cluster.nodes[1].recover()
        cluster.run(until=40.0)
        assert len(cluster.nodes[1].recovery_durations) >= 1
        assert all(d >= 0 for d in cluster.nodes[1].recovery_durations)
