"""End-to-end scenarios: full stacks under load, loss and crash-recovery.

Every test runs a complete scenario through the harness and relies on
:func:`repro.harness.verify.verify_run` to check the four Atomic
Broadcast properties — these are the strongest correctness tests in the
suite.
"""

from __future__ import annotations

import pytest

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario, run_scenario
from repro.sim.faults import FaultSchedule, RandomFaults
from repro.transport.network import NetworkConfig
from repro.workloads.generators import (BurstyWorkload, PoissonWorkload,
                                        SkewedWorkload)


class TestFailureFree:
    @pytest.mark.parametrize("protocol", ["basic", "alternative", "eager"])
    def test_lossy_network_all_protocols(self, protocol):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(
                n=3, seed=10, protocol=protocol,
                network=NetworkConfig(loss_rate=0.1, duplicate_rate=0.05)),
            workload=PoissonWorkload(2.0, 10.0, seed=10),
            duration=15.0, settle_limit=90.0))
        assert result.report is not None
        assert result.metrics.messages_delivered == \
            result.metrics.messages_broadcast

    def test_five_nodes_heavier_load(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=5, seed=11, protocol="basic",
                                  network=NetworkConfig(loss_rate=0.05)),
            workload=PoissonWorkload(2.0, 10.0, seed=11),
            duration=15.0, settle_limit=90.0))
        assert result.metrics.messages_delivered > 50

    def test_bursty_traffic_batches_into_rounds(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=12, protocol="basic"),
            workload=BurstyWorkload(burst_size=10, burst_spacing=2.0,
                                    bursts=5, seed=12),
            duration=15.0, settle_limit=60.0))
        delivered = result.metrics.messages_delivered
        rounds = result.report.rounds
        assert delivered == 50
        # Batching: far fewer consensus rounds than messages.
        assert rounds < delivered / 2

    def test_skewed_senders(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=4, seed=13, protocol="alternative"),
            workload=SkewedWorkload(total_messages=60, duration=10.0,
                                    skew=1.2, seed=13),
            duration=15.0, settle_limit=90.0))
        assert result.metrics.messages_delivered == 60


class TestCrashRecovery:
    @pytest.mark.parametrize("protocol", ["basic", "alternative"])
    def test_random_faults_many_seeds(self, protocol):
        for seed in range(3):
            result = run_scenario(Scenario(
                cluster=ClusterConfig(
                    n=3, seed=100 + seed, protocol=protocol,
                    network=NetworkConfig(loss_rate=0.05)),
                workload=PoissonWorkload(1.5, 12.0, seed=100 + seed),
                faults=RandomFaults(mttf=8.0, mttr=2.0, stabilize_at=15.0,
                                    seed=100 + seed),
                duration=25.0, settle_limit=150.0))
            assert result.report is not None

    def test_targeted_crash_of_every_node_in_turn(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=14, protocol="basic",
                                  network=NetworkConfig(loss_rate=0.05)),
            workload=PoissonWorkload(1.5, 15.0, seed=14),
            faults=FaultSchedule()
            .crash(3.0, 0).recover(6.0, 0)
            .crash(7.0, 1).recover(10.0, 1)
            .crash(11.0, 2).recover(14.0, 2),
            duration=25.0, settle_limit=150.0))
        stats = result.metrics.node_stats
        assert all(stats[i]["crashes"] == 1 for i in range(3))
        assert all(stats[i]["recoveries"] == 1 for i in range(3))

    def test_double_crash_same_node(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=15, protocol="alternative",
                                  network=NetworkConfig(loss_rate=0.05)),
            workload=PoissonWorkload(1.5, 15.0, seed=15),
            faults=FaultSchedule()
            .crash(3.0, 2).recover(5.0, 2)
            .crash(8.0, 2).recover(12.0, 2),
            duration=25.0, settle_limit=150.0))
        assert result.metrics.node_stats[2]["crashes"] == 2

    def test_simultaneous_minority_crash(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=5, seed=16, protocol="basic",
                                  network=NetworkConfig(loss_rate=0.05)),
            workload=PoissonWorkload(1.0, 12.0, seed=16),
            faults=FaultSchedule()
            .crash(4.0, 3).crash(4.0, 4)
            .recover(9.0, 3).recover(9.0, 4),
            duration=20.0, settle_limit=150.0))
        assert result.report is not None

    def test_crash_during_recovery_of_another(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=17, protocol="alternative",
                                  network=NetworkConfig(loss_rate=0.05)),
            workload=PoissonWorkload(1.5, 15.0, seed=17),
            faults=FaultSchedule()
            .crash(3.0, 1).recover(6.0, 1)
            .crash(6.2, 2).recover(9.0, 2),
            duration=25.0, settle_limit=150.0))
        assert result.report is not None


class TestNonBlockingLiveness:
    def test_good_nodes_progress_despite_oscillating_bad_node(self):
        """The paper's non-blocking claim: bad processes cannot block
        good ones as long as consensus is live (majority of good)."""
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=4, seed=18, protocol="basic",
                                  network=NetworkConfig(loss_rate=0.05)),
            workload=PoissonWorkload(1.0, 20.0, seed=18),
            faults=RandomFaults(mttf=3.0, mttr=1.0, stabilize_at=22.0,
                                seed=18, bad_nodes=[3]),
            duration=35.0, settle_limit=200.0, good_nodes=[0, 1, 2]))
        assert result.metrics.messages_delivered > 10
        # The bad node oscillated but the good ones delivered everything.
        assert result.metrics.node_stats[3]["crashes"] > 1

    def test_permanently_dead_node_does_not_block(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=19, protocol="basic",
                                  network=NetworkConfig(loss_rate=0.05)),
            workload=PoissonWorkload(1.0, 12.0, seed=19),
            faults=RandomFaults(mttf=4.0, mttr=1.0, stabilize_at=15.0,
                                seed=19, bad_nodes=[2], bad_mode="die"),
            duration=25.0, settle_limit=150.0, good_nodes=[0, 1]))
        assert result.metrics.messages_delivered > 5


class TestPartitions:
    def test_heals_and_converges(self):
        from repro.harness.cluster import Cluster
        cluster = Cluster(ClusterConfig(
            n=3, seed=20, protocol="basic",
            network=NetworkConfig(loss_rate=0.02)))
        cluster.start()
        PoissonWorkload(1.5, 12.0, seed=20).install(cluster)
        cluster.sim.schedule(3.0, cluster.network.partition, 2, 0)
        cluster.sim.schedule(3.0, cluster.network.partition, 2, 1)
        cluster.sim.schedule(8.0, cluster.network.heal_all)
        cluster.run(until=20.0)
        assert cluster.settle(limit=120.0)
        from repro.harness.verify import verify_run
        report = verify_run(cluster)
        assert report is not None
