"""End-to-end overload robustness: saturation, gray failures, accounting.

The overload-safety contract, verified through the real stacks:

* every admission attempt is accounted — ``accepted + rejected ==
  offered`` exactly, across retries and gray failures;
* every accepted broadcast is eventually delivered (admission control
  must not become silent message loss);
* every bounded queue's high-water mark respects its configured bound;
* the whole story is a pure function of the seed.
"""

from __future__ import annotations

import pytest

from repro.chaos.engine import ChaosConfig, explore, run_seed
from repro.errors import OverloadError, VerificationError
from repro.flow.controller import FlowConfig
from repro.flow.scenario import (check_overload_reproducibility,
                                 run_saturation_scenario)
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import verify_overload_safety
from repro.transport.stubborn import StubbornConfig
from repro.workloads.generators import PoissonWorkload


class TestSaturationScenario:
    def test_invariants_hold_under_ten_x_overload(self):
        report = run_saturation_scenario(seed=0)
        # Exact accounting: the scenario already cross-checked the
        # client's counters against the controllers; re-assert the
        # arithmetic on the report itself.
        assert report.accepted + report.rejected == report.offered
        assert report.rejected == sum(report.rejected_by_reason.values())
        assert report.accepted > 0 and report.rejected > 0
        # >10x overload: the burst offers 120 against a bucket that
        # sustains at most rate + burst (= 8) in its window.
        assert report.rejected > 10 * report.accepted / 2
        # Bounded queues, observed not assumed.
        assert report.backlog_high_water <= 16
        assert report.backlog_overflows >= 0
        # The gray failure actually fired.
        assert report.slow_writes > 0
        # Every accepted broadcast was delivered (checked in-scenario;
        # the totals must agree).
        assert report.delivered == report.accepted

    def test_bit_identical_across_same_seed_runs(self):
        report = check_overload_reproducibility(seed=0)
        assert report.signature() == run_saturation_scenario(0).signature()

    def test_different_seeds_differ(self):
        # Not a tautology: if the seed were ignored the scenario would
        # collapse to one timeline and reproducibility would be vacuous.
        a = run_saturation_scenario(seed=0).signature()
        b = run_saturation_scenario(seed=1).signature()
        assert a != b


class TestOverloadChaosFamily:
    def test_overload_sweep_passes_and_exercises_gray_failures(self):
        report = explore(ChaosConfig(seeds=6, overload=True))
        assert report.ok, [f.describe() for f in report.failures]
        totals = report.totals()
        # The family must actually exercise the new machinery.
        assert totals.get("flow_accepted", 0) > 0
        assert totals.get("overload_reject", 0) > 0
        assert totals.get("slow_write", 0) > 0
        assert totals.get("limp", 0) + totals.get("slow_disk", 0) > 0
        assert totals["delivered"] > 0

    def test_overload_seed_reruns_identically(self):
        config = ChaosConfig(seeds=3, overload=True)
        first = run_seed(config, 0)
        second = run_seed(config, 0)
        assert first.ok and second.ok
        assert first.counters == second.counters
        assert first.params == second.params

    def test_legacy_family_unchanged_by_the_overload_knob(self):
        # overload=False is the frozen default family: no flow params
        # are drawn and no flow counters appear.
        result = run_seed(ChaosConfig(seeds=1), 0)
        assert result.ok
        assert "flow_rate" not in result.params
        assert "flow_accepted" not in result.counters


class TestVerifyOverloadSafety:
    def _throttled_cluster(self):
        cluster = Cluster(ClusterConfig(
            n=3, seed=0, stubborn=StubbornConfig(window=4, max_backlog=8),
            flow=FlowConfig(rate=4.0, burst=4)))
        cluster.start()
        offered = rejected = 0
        for i in range(10):
            offered += 1
            try:
                cluster.submit(0, f"v-{i}")
            except OverloadError:
                rejected += 1
        assert cluster.settle(limit=240.0)
        return cluster, offered, rejected

    def test_passes_on_a_clean_run(self):
        cluster, offered, rejected = self._throttled_cluster()
        verify_overload_safety(cluster, offered=offered, rejected=rejected)

    def test_fails_on_offered_mismatch(self):
        cluster, offered, rejected = self._throttled_cluster()
        with pytest.raises(VerificationError):
            verify_overload_safety(cluster, offered=offered + 1,
                                   rejected=rejected)

    def test_fails_on_rejected_mismatch(self):
        cluster, offered, rejected = self._throttled_cluster()
        with pytest.raises(VerificationError):
            verify_overload_safety(cluster, offered=offered,
                                   rejected=rejected + 1)

    def test_fails_on_corrupted_controller_accounting(self):
        cluster, offered, rejected = self._throttled_cluster()
        # A rejection counted without its reason breaks the per-node
        # cross-check even when no scenario totals are supplied.
        cluster.flows[0].rejected += 1
        with pytest.raises(VerificationError):
            verify_overload_safety(cluster)

    def test_fails_on_backlog_bound_violation(self):
        cluster, offered, rejected = self._throttled_cluster()
        assert cluster.stubborn is not None
        cluster.stubborn.metrics.backlog_high_water = 999
        with pytest.raises(VerificationError):
            verify_overload_safety(cluster)


class TestWorkloadBackpressure:
    def test_open_loop_workload_retries_to_exact_accounting(self):
        cluster = Cluster(ClusterConfig(
            n=3, seed=2, flow=FlowConfig(rate=2.0, burst=2)))
        cluster.start()
        workload = PoissonWorkload(rate_per_node=20.0, duration=1.0, seed=5)
        workload.install(cluster)
        cluster.run(until=30.0)
        assert cluster.settle(limit=cluster.sim.now + 240.0)
        assert workload.pending_retries == 0
        assert workload.rejected_attempts > 0  # backpressure engaged
        accepted = sum(f.accepted for f in cluster.flows.values())
        assert workload.offered == accepted + workload.rejected_attempts
        assert workload.submitted == accepted
        verify_overload_safety(cluster, offered=workload.offered,
                               rejected=workload.rejected_attempts)

    def test_workload_counters_inert_without_flow(self):
        cluster = Cluster(ClusterConfig(n=3, seed=2))
        cluster.start()
        workload = PoissonWorkload(rate_per_node=20.0, duration=1.0, seed=5)
        workload.install(cluster)
        cluster.run(until=30.0)
        assert workload.rejected_attempts == 0
        assert workload.retries == 0
        assert workload.gave_up == 0
        assert workload._backoff_rng is None  # no extra randomness drawn
