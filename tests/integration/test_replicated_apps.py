"""Integration tests: replicated applications stay consistent under faults."""

from __future__ import annotations

import pytest

from repro.apps.bank import Bank
from repro.apps.certifier import CertifyingDatabase, make_transaction
from repro.apps.kvstore import KeyValueStore
from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import Cluster, ClusterConfig
from repro.sim.faults import FaultSchedule, RandomFaults
from repro.transport.network import NetworkConfig
from repro.workloads.generators import ScheduledWorkload


def run_cluster(app_factory, plan, seed=0, protocol="alternative",
                faults=None, duration=30.0, settle=180.0, n=3, alt=None):
    cluster = Cluster(ClusterConfig(
        n=n, seed=seed, protocol=protocol,
        network=NetworkConfig(loss_rate=0.05),
        app_factory=app_factory, alt=alt))
    cluster.start()
    if faults is not None:
        faults.install(cluster.sim, cluster.nodes)
    ScheduledWorkload(plan).install(cluster)
    cluster.run(until=duration)
    assert cluster.settle(limit=settle)
    from repro.harness.verify import verify_run
    verify_run(cluster)
    return cluster


class TestReplicatedKV:
    def test_replicas_identical_after_faults(self):
        plan = [(0.5 + 0.2 * j, j % 3, ("put", f"k{j}", j))
                for j in range(30)]
        plan += [(7.0 + 0.2 * j, j % 3, ("append", "log", j))
                 for j in range(10)]
        faults = FaultSchedule().crash(3.0, 1).recover(5.5, 1)
        cluster = run_cluster(KeyValueStore, plan, seed=30, faults=faults)
        states = [cluster.app(i).data for i in range(3)]
        assert states[0] == states[1] == states[2]
        assert states[0]["log"] == tuple(
            sorted(states[0]["log"])) or len(states[0]["log"]) == 10

    def test_order_sensitive_appends_agree(self):
        plan = [(0.5 + 0.05 * j, j % 3, ("append", "seq", f"v{j}"))
                for j in range(24)]
        cluster = run_cluster(KeyValueStore, plan, seed=31)
        logs = [cluster.app(i).get("seq") for i in range(3)]
        assert logs[0] == logs[1] == logs[2]
        assert len(logs[0]) == 24


class TestReplicatedBank:
    def test_money_conserved_across_replicas_and_faults(self):
        plan = [(0.5, 0, ("open", "a", 100)), (0.6, 1, ("open", "b", 100))]
        plan += [(1.0 + 0.15 * j, j % 3,
                  ("transfer", "a" if j % 2 else "b",
                   "b" if j % 2 else "a", 10))
                 for j in range(30)]
        faults = RandomFaults(mttf=6.0, mttr=1.5, stabilize_at=10.0,
                              seed=32)
        # log_unordered (Section 5.4): a submitted command survives its
        # sender's crash, so no deposit/open can vanish.
        cluster = run_cluster(
            Bank, plan, seed=32, faults=faults,
            alt=AlternativeConfig(checkpoint_interval=2.0,
                                  log_unordered=True))
        banks = [cluster.app(i) for i in range(3)]
        assert banks[0].balances == banks[1].balances == banks[2].balances
        # Money conserved: the total equals the sum of the opens that
        # were actually delivered (an open scheduled while its node was
        # down is skipped — a down process cannot invoke A-broadcast).
        delivered_opens = sum(
            payload[2]
            for mid, payload in cluster.collector.broadcast_payloads.items()
            if payload[0] == "open" and mid in cluster.collector.first_delivery)
        assert banks[0].total() == delivered_opens
        assert delivered_opens >= 100  # at least one open made it
        # Same rejections everywhere (order-sensitivity check).
        assert banks[0].rejected == banks[1].rejected == banks[2].rejected


class TestCertifyingDatabase:
    def test_identical_verdicts_across_replicas(self):
        # Conflicting transactions: all read x at version 0, write x.
        plan = [(0.5 + 0.1 * j, j % 3,
                 make_transaction(f"t{j}", [("x", 0)], [("x", j)]))
                for j in range(9)]
        cluster = run_cluster(CertifyingDatabase, plan, seed=33)
        dbs = [cluster.app(i) for i in range(3)]
        assert dbs[0].verdicts == dbs[1].verdicts == dbs[2].verdicts
        # Exactly one of the conflicting writers commits.
        assert sum(dbs[0].verdicts.values()) == 1
        assert dbs[0].committed == 1 and dbs[0].aborted == 8

    def test_disjoint_transactions_all_commit(self):
        plan = [(0.5 + 0.1 * j, j % 3,
                 make_transaction(f"t{j}", [(f"k{j}", 0)], [(f"k{j}", j)]))
                for j in range(12)]
        cluster = run_cluster(CertifyingDatabase, plan, seed=34)
        assert cluster.app(0).committed == 12
        assert cluster.app(0).values == cluster.app(2).values


class TestCheckpointedApps:
    def test_recovered_replica_state_matches_via_checkpoint(self):
        plan = [(0.5 + 0.2 * j, 0, ("put", f"k{j}", j)) for j in range(20)]
        faults = FaultSchedule().crash(3.5, 2).recover(7.0, 2)
        cluster = run_cluster(
            KeyValueStore, plan, seed=35,
            alt=AlternativeConfig(checkpoint_interval=1.0, delta=2),
            faults=faults)
        assert cluster.app(2).data == cluster.app(0).data
        # Checkpointing really happened (the queue was compacted).
        assert cluster.abcasts[0].agreed.checkpointed_count > 0

    def test_basic_protocol_rebuilds_app_by_full_replay(self):
        plan = [(0.5 + 0.2 * j, 0, ("put", f"k{j}", j)) for j in range(15)]
        faults = FaultSchedule().crash(3.0, 1).recover(5.0, 1)
        cluster = run_cluster(KeyValueStore, plan, seed=36,
                              protocol="basic", faults=faults)
        assert cluster.app(1).data == cluster.app(0).data
        assert cluster.abcasts[1].replayed_rounds > 0
