"""Live-runtime chaos smoke: loss burst plus one crash, verified.

A single hand-written timeline — not a seeded sweep — so the test stays
fast and its failure mode is legible: 3 nodes over real UDP with 20%%
injected loss, a mid-run kill of one node (socket closed, storage handle
dropped, recovery replays the fsync'd files) and a burst to 40%% loss,
then the world is restored and the omniscient verifier checks the
paper's four properties on what actually happened.  The seeded sweep
equivalent runs in CI as ``repro chaos --runtime live`` (chaos-smoke
job); this test is the tier-1 guard for the same machinery.
"""

from __future__ import annotations

import pytest

from repro.chaos.controller import LiveChaosController
from repro.chaos.events import ChaosEvent
from repro.harness.cluster import ClusterConfig
from repro.harness.live import LiveCluster
from repro.transport.network import NetworkConfig

HORIZON = 2.5
BASE_LOSS = 0.2
N_MESSAGES = 8


@pytest.fixture(scope="module")
def chaos_result(tmp_path_factory):
    cluster = LiveCluster(
        ClusterConfig(n=3, seed=23, protocol="basic",
                      network=NetworkConfig(loss_rate=BASE_LOSS),
                      gossip_interval=0.1),
        str(tmp_path_factory.mktemp("chaos-live")))
    controller = LiveChaosController(cluster, BASE_LOSS)
    timeline = [
        ChaosEvent(0.1 + i * 0.15, "submit", node=i % 3,
                   payload=f"live-chaos-{i}")
        for i in range(N_MESSAGES)
    ]
    timeline += [
        ChaosEvent(0.6, "crash", node=2),
        ChaosEvent(0.9, "loss", rate=0.4),
        ChaosEvent(1.5, "loss_restore"),
        ChaosEvent(1.6, "recover", node=2),
    ]
    timeline.sort(key=lambda event: event.time)
    with cluster:
        cluster.start()
        controller.run_timeline(timeline, HORIZON)
        report = controller.finish(settle_limit=30.0)
        yield cluster, controller, report


def test_all_submissions_delivered(chaos_result):
    cluster, _, report = chaos_result
    payloads = cluster.collector.broadcast_payloads
    delivered = sorted(payloads[mid] for mid in report.canonical)
    assert delivered == sorted(f"live-chaos-{i}" for i in range(N_MESSAGES))


def test_faults_actually_happened(chaos_result):
    cluster, controller, _ = chaos_result
    assert controller.fault_counts.get("crash") == 1
    assert controller.fault_counts.get("loss") == 1
    assert cluster.nodes[2].recovery_count == 1
    # Injected UDP loss really dropped datagrams on the floor...
    assert cluster.network.metrics.lost > 0
    # ...and the stubborn layer (on by default for live) papered over
    # it: retransmissions happened and every submission still made it.
    assert cluster.stubborn is not None
    assert cluster.stubborn.metrics.retransmissions > 0


def test_applied_timeline_is_reproducible_ground_truth(chaos_result):
    _, controller, _ = chaos_result
    kinds = [event.kind for event in controller.applied]
    assert kinds.count("submit") == N_MESSAGES
    assert "crash" in kinds and "recover" in kinds
    # Events are recorded in application order with real timestamps.
    times = [event.time for event in controller.applied]
    assert times == sorted(times)
