"""Scale and stress scenarios: larger clusters, longer runs, churn.

These runs are sized to stay in CI-friendly territory (a few seconds
each) while exercising regimes the targeted tests do not: seven and nine
node clusters, hundreds of messages, continuous churn with several nodes
down at once, and duplication + loss + crash interplay.
"""

from __future__ import annotations

import pytest

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario, run_scenario
from repro.sim.faults import RandomFaults
from repro.transport.network import NetworkConfig
from repro.workloads.generators import BurstyWorkload, PoissonWorkload


class TestScale:
    @pytest.mark.parametrize("n", [7, 9])
    def test_larger_clusters_order_and_verify(self, n):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=n, seed=50 + n, protocol="basic",
                                  network=NetworkConfig(loss_rate=0.03)),
            workload=PoissonWorkload(1.0, 8.0, seed=50 + n),
            duration=12.0, settle_limit=150.0))
        assert result.metrics.messages_delivered == \
            result.metrics.messages_broadcast
        assert result.metrics.messages_delivered >= n * 4

    def test_hundreds_of_messages(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=60, protocol="alternative",
                                  network=NetworkConfig(loss_rate=0.02),
                                  alt=AlternativeConfig(
                                      checkpoint_interval=2.0)),
            workload=PoissonWorkload(15.0, 10.0, seed=60),
            duration=14.0, settle_limit=150.0))
        assert result.metrics.messages_delivered > 350
        # Heavy load batches into far fewer rounds than messages.
        assert result.report.rounds < \
            result.metrics.messages_delivered / 3

    def test_big_bursts(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=61, protocol="basic"),
            workload=BurstyWorkload(burst_size=40, burst_spacing=3.0,
                                    bursts=4, seed=61),
            duration=18.0, settle_limit=200.0))
        assert result.metrics.messages_delivered == 160


class TestChurn:
    def test_continuous_churn_five_nodes(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=5, seed=62, protocol="alternative",
                                  network=NetworkConfig(loss_rate=0.05),
                                  alt=AlternativeConfig(
                                      checkpoint_interval=2.0, delta=3)),
            workload=PoissonWorkload(1.0, 18.0, seed=62),
            faults=RandomFaults(mttf=5.0, mttr=1.5, stabilize_at=22.0,
                                seed=62),
            duration=35.0, settle_limit=400.0))
        total_crashes = sum(stats["crashes"] for stats in
                            result.metrics.node_stats.values())
        assert total_crashes >= 5
        assert result.report is not None

    def test_loss_duplication_and_crashes_together(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(
                n=3, seed=63, protocol="alternative",
                network=NetworkConfig(loss_rate=0.15,
                                      duplicate_rate=0.15),
                alt=AlternativeConfig(checkpoint_interval=1.5, delta=2,
                                      log_unordered=True)),
            workload=PoissonWorkload(1.0, 12.0, seed=63),
            faults=RandomFaults(mttf=6.0, mttr=1.5, stabilize_at=15.0,
                                seed=63),
            duration=25.0, settle_limit=400.0))
        assert result.report is not None
        # log_unordered: nothing submitted while up may be lost.
        assert result.metrics.messages_delivered == \
            result.metrics.messages_broadcast

    def test_repeated_crashes_of_same_node(self):
        from repro.sim.faults import FaultSchedule
        schedule = FaultSchedule()
        for round_no in range(4):
            schedule.crash(2.0 + round_no * 3.0, 1)
            schedule.recover(3.2 + round_no * 3.0, 1)
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=64, protocol="basic",
                                  network=NetworkConfig(loss_rate=0.05)),
            workload=PoissonWorkload(1.0, 14.0, seed=64),
            faults=schedule,
            duration=25.0, settle_limit=300.0))
        assert result.metrics.node_stats[1]["crashes"] == 4
        assert result.metrics.node_stats[1]["recoveries"] == 4


class TestDeterminismAtScale:
    def test_full_stress_run_is_bitwise_deterministic(self):
        def digest():
            result = run_scenario(Scenario(
                cluster=ClusterConfig(
                    n=5, seed=65, protocol="alternative",
                    network=NetworkConfig(loss_rate=0.1,
                                          duplicate_rate=0.05),
                    alt=AlternativeConfig(checkpoint_interval=2.0,
                                          delta=2)),
                workload=PoissonWorkload(1.5, 10.0, seed=65),
                faults=RandomFaults(mttf=5.0, mttr=1.5,
                                    stabilize_at=13.0, seed=65),
                duration=22.0, settle_limit=300.0))
            return (tuple(result.report.canonical),
                    result.metrics.total_log_ops(),
                    result.metrics.network["sent"],
                    tuple(sorted(result.metrics.collector
                                 .first_delivery.items())))

        assert digest() == digest()
