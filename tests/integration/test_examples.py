"""Every shipped example must run clean — they are living documentation."""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

EXAMPLES = [
    "quickstart.py",
    "replicated_kv_store.py",
    "replicated_bank.py",
    "deferred_update_db.py",
    "protocol_comparison.py",
    "multigroup_rooms.py",
]


@pytest.mark.parametrize("filename", EXAMPLES)
def test_example_runs_clean(filename, capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, filename))
    assert os.path.exists(path), f"example missing: {filename}"
    spec = importlib.util.spec_from_file_location(
        f"example_{filename[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), "examples must narrate what they demonstrate"


def test_every_example_on_disk_is_in_the_list():
    on_disk = sorted(name for name in os.listdir(EXAMPLES_DIR)
                     if name.endswith(".py"))
    assert on_disk == sorted(EXAMPLES)
