"""Property-based tests for multi-group multicast.

Hypothesis generates the group topology (via overlap choice), the mix of
single- and cross-group messages, and a crash schedule; every generated
run must satisfy group agreement and pairwise total order.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.multigroup import MultiGroupCluster
from repro.transport.network import NetworkConfig

RUNS = settings(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@RUNS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    cross_slots=st.lists(st.booleans(), min_size=4, max_size=10),
    crash_bridge=st.booleans(),
)
def test_agreement_and_pairwise_order(seed, cross_slots, crash_bridge):
    cluster = MultiGroupCluster(
        {"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=seed,
        network=NetworkConfig(loss_rate=0.03))
    cluster.start()
    for index, is_cross in enumerate(cross_slots):
        when = 0.5 + 0.3 * index
        if is_cross:
            cluster.sim.schedule(when, cluster.multicast, 2,
                                 f"x{index}", ["g1", "g2"])
        else:
            sender, group = ((0, "g1") if index % 2 == 0 else (3, "g2"))
            cluster.sim.schedule(when, cluster.multicast, sender,
                                 f"s{index}", [group])
    if crash_bridge:
        cluster.sim.schedule(1.5, cluster.nodes[2].crash)
        cluster.sim.schedule(4.0, cluster.nodes[2].recover)
    cluster.run(until=90.0)
    cluster.check_group_agreement("g1")
    cluster.check_group_agreement("g2")
    cluster.check_pairwise_total_order()
    # Cross-group messages submitted while the bridge was up appear in
    # the same relative order in both groups.
    seq_g1 = [p for _, p in cluster.layers[0].delivered_in("g1")
              if p.startswith("x")]
    seq_g2 = [p for _, p in cluster.layers[3].delivered_in("g2")
              if p.startswith("x")]
    shared = [p for p in seq_g1 if p in set(seq_g2)]
    assert shared == [p for p in seq_g2 if p in set(seq_g1)]
