"""Property/statistical tests for the simulated network's model guarantees."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.message import WireMessage
from repro.transport.network import Network, NetworkConfig

RUNS = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class Ping(WireMessage):
    type = "test.ping"
    fields = ("value",)

    def __init__(self, value):
        self.value = value


def build(config, seed, n=2):
    sim = Simulator()
    net = Network(sim, random.Random(seed), config)
    received = {i: [] for i in range(n)}
    for i in range(n):
        node = Node(sim, i, MemoryStorage())
        node.start()
        node.register_handler(
            "test.ping",
            lambda m, s, i=i: received[i].append((m.value, sim.now)))
        net.register(node)
    return sim, net, received


@RUNS
@given(seed=st.integers(min_value=0, max_value=10_000),
       loss=st.floats(min_value=0.0, max_value=0.9))
def test_fair_loss_always_eventually_delivers(seed, loss):
    """A message sent repeatedly is received, for any loss rate < 1."""
    sim, net, received = build(NetworkConfig(loss_rate=loss), seed)
    attempts = 0
    while not received[1] and attempts < 10_000:
        net.send(0, 1, Ping(attempts))
        attempts += 1
        sim.run()
    assert received[1], f"fair loss violated at loss={loss}"


@RUNS
@given(seed=st.integers(min_value=0, max_value=10_000),
       min_delay=st.floats(min_value=0.0, max_value=0.5),
       spread=st.floats(min_value=0.0, max_value=2.0))
def test_delays_respect_configured_bounds(seed, min_delay, spread):
    config = NetworkConfig(min_delay=min_delay,
                           max_delay=min_delay + spread)
    sim, net, received = build(config, seed)
    for index in range(50):
        net.send(0, 1, Ping(index))
    sim.run()
    assert len(received[1]) == 50
    for _, arrival in received[1]:
        assert min_delay <= arrival <= min_delay + spread + 1e-9


@RUNS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_accounting_identity(seed):
    """sent == delivered + lost + dropped_down + in-flight(0 at drain),
    modulo duplicates (which add deliveries without sends)."""
    config = NetworkConfig(loss_rate=0.3, duplicate_rate=0.2)
    sim, net, received = build(config, seed, n=3)
    rng = random.Random(seed)
    for _ in range(200):
        src = rng.randrange(3)
        dst = rng.randrange(3)
        net.send(src, dst, Ping(0))
    sim.run()
    metrics = net.metrics
    assert (metrics.delivered + metrics.lost + metrics.dropped_down
            == metrics.sent + metrics.duplicated)


def test_loss_rate_converges_statistically():
    sim, net, received = build(NetworkConfig(loss_rate=0.3), seed=42)
    for index in range(3000):
        net.send(0, 1, Ping(index))
    sim.run()
    observed = 1 - len(received[1]) / 3000
    assert 0.25 < observed < 0.35


def test_duplicate_rate_converges_statistically():
    sim, net, received = build(NetworkConfig(duplicate_rate=0.25), seed=43)
    for index in range(3000):
        net.send(0, 1, Ping(index))
    sim.run()
    extra = len(received[1]) - 3000
    assert 0.20 * 3000 < extra < 0.30 * 3000
