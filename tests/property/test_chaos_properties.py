"""Chaos-sweep property: uniform agreed-delivery order, 50 seeds.

Each seed fully determines one scenario — cluster size, protocol, base
loss, stubborn channels, nemesis subset, fault timeline and workload —
so this file is a seeded property test where the generator is the chaos
engine itself.  Two layers of checking:

* the sweep: 50 seeds run through :func:`repro.chaos.engine.run_seed`,
  whose ``finish`` phase hands every cluster to the omniscient verifier
  (Validity, Integrity, Uniform Total Order, Termination);
* an independent re-derivation: for a handful of seeds the raw delivery
  trace is re-examined here, without the verifier, by asserting that any
  two delivery sequences agree on the relative order of every message
  they share.  That is Uniform Total Order stated directly on the trace
  (Section 3.4) — crashed incarnations included, since the collector
  records deliveries per (node, incarnation).
"""

from __future__ import annotations

import pytest

from repro.chaos.controller import SimChaosController
from repro.chaos.engine import ChaosConfig, explore, plan_scenario
from repro.harness.cluster import Cluster, ClusterConfig
from repro.transport.network import NetworkConfig

N_SEEDS = 50
MASTER_SEED = 7


def test_fifty_chaos_seeds_all_verify():
    config = ChaosConfig(seeds=N_SEEDS, master_seed=MASTER_SEED)
    report = explore(config)
    failures = "\n".join(result.describe() + "\n" + (result.error or "")
                         for result in report.failures)
    assert report.ok, f"{len(report.failures)}/{N_SEEDS} seeds failed:\n" \
                      f"{failures}"
    # The sweep must not be vacuous: real faults and real deliveries.
    totals = report.totals()
    assert totals.get("delivered", 0) > 0
    assert totals.get("crash", 0) + totals.get("disk_crash", 0) > 0
    assert totals.get("partition", 0) > 0
    assert totals.get("loss", 0) > 0


def _orders_for_seed(seed: int):
    """Run one derived scenario and return every delivery sequence.

    Mirrors the engine's sim builder through public API only (no
    FaultyStorage: armed-disk events then no-op, which the controller's
    ``_apply_torn_write`` guard permits), so this check cannot silently
    depend on the engine's own verification path.
    """
    config = ChaosConfig(seeds=1, master_seed=MASTER_SEED)
    params, _, events = plan_scenario(config, seed)
    cluster = Cluster(ClusterConfig(
        n=params["n"], seed=params["cluster_seed"],
        protocol=params["protocol"],
        network=NetworkConfig(loss_rate=params["base_loss"]),
        stubborn=params["stubborn"]))
    controller = SimChaosController(cluster, params["base_loss"])
    cluster.start()
    controller.run_timeline(events, config.horizon)
    controller.finish(settle_limit=300.0)
    orders = []
    for node_id in cluster.nodes:
        for incarnation in cluster.collector.incarnations_of(node_id):
            sequence = cluster.collector.delivered_ids(node_id, incarnation)
            if sequence:
                orders.append(((node_id, incarnation), sequence))
    return orders


def _relative_order_conflicts(a, b):
    """Message pairs the two sequences deliver in opposite orders."""
    pos_a = {mid: i for i, mid in enumerate(a)}
    pos_b = {mid: i for i, mid in enumerate(b)}
    common = [mid for mid in a if mid in pos_b]
    conflicts = []
    for i, first in enumerate(common):
        for second in common[i + 1:]:
            if pos_b[first] > pos_b[second]:
                conflicts.append((first, second))
    return conflicts


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_uniform_order_rederived_from_raw_trace(seed):
    orders = _orders_for_seed(seed)
    assert orders, "scenario produced no deliveries at all"
    for i, (who_a, a) in enumerate(orders):
        for who_b, b in orders[i + 1:]:
            conflicts = _relative_order_conflicts(a, b)
            assert not conflicts, (
                f"{who_a} and {who_b} disagree on relative delivery "
                f"order of {conflicts[:3]}")
    # No incarnation ever delivers the same message twice (Integrity).
    for who, sequence in orders:
        assert len(sequence) == len(set(sequence)), \
            f"{who} delivered a message twice"
