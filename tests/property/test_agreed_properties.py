"""Property-based tests for the Agreed queue (the ⊕ operation)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.agreed import AgreedQueue, deterministic_order
from repro.core.ids import MessageId
from repro.core.messages import AppMessage

messages = st.builds(
    lambda s, i, q: AppMessage(MessageId(s, i, q), payload=("p", s, q)),
    s=st.integers(min_value=0, max_value=3),
    i=st.integers(min_value=1, max_value=2),
    q=st.integers(min_value=1, max_value=20),
)

batches = st.lists(st.frozensets(messages, max_size=8), max_size=12)


@given(batches)
def test_idempotence_appending_twice_changes_nothing(batch_list):
    """⊕ is idempotent (Section 4.1)."""
    queue = AgreedQueue()
    for batch in batch_list:
        queue.append_batch(batch)
    snapshot = [m.id for m in queue.sequence()]
    for batch in batch_list:
        assert queue.append_batch(batch) == []
    assert [m.id for m in queue.sequence()] == snapshot


@given(batches)
def test_same_batches_same_queue_everywhere(batch_list):
    """Two replicas applying the same decided batches in the same round
    order end with identical sequences — regardless of how the batch sets
    were constructed."""
    one, two = AgreedQueue(), AgreedQueue()
    for batch in batch_list:
        one.append_batch(batch)
        two.append_batch(frozenset(batch))  # same set, any iteration order
    assert [m.id for m in one.sequence()] == [m.id for m in two.sequence()]


@given(batches)
def test_no_duplicates_ever(batch_list):
    queue = AgreedQueue()
    for batch in batch_list:
        queue.append_batch(batch)
    ids = [m.id for m in queue.sequence()]
    assert len(ids) == len(set(ids))
    assert len(queue) == len(ids)


@given(batches)
def test_batch_internal_order_is_deterministic_rule(batch_list):
    queue = AgreedQueue()
    for batch in batch_list:
        appended = queue.append_batch(batch)
        assert appended == deterministic_order(appended)


@given(batches, st.integers(min_value=0, max_value=11))
def test_compact_preserves_membership_and_future_dedup(batch_list, cut):
    queue = AgreedQueue()
    for batch in batch_list[:cut]:
        queue.append_batch(batch)
    pre_compact_ids = {m.id for batch in batch_list[:cut] for m in batch}
    queue.compact(state={"n": len(queue)})
    for batch in batch_list[cut:]:
        queue.append_batch(batch)
    # Every pre-compact id is still a member (via the checkpoint tracker).
    for mid in pre_compact_ids:
        assert mid in queue
    # And nothing got double-delivered after compaction.
    suffix_ids = [m.id for m in queue.sequence()]
    assert len(suffix_ids) == len(set(suffix_ids))
    assert not (set(suffix_ids) & pre_compact_ids)


@given(batches)
def test_plain_round_trip(batch_list):
    queue = AgreedQueue()
    for index, batch in enumerate(batch_list):
        queue.append_batch(batch)
        if index == len(batch_list) // 2:
            queue.compact(state="midpoint")
    clone = AgreedQueue.from_plain(queue.to_plain())
    assert [m.id for m in clone.sequence()] == \
        [m.id for m in queue.sequence()]
    assert len(clone) == len(queue)
    assert clone.checkpoint_state == queue.checkpoint_state
