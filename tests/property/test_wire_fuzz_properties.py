"""Property suite for the wire codec, driven by the wirefuzz engine.

Fixed seeds keep the suite deterministic; a failure prints the
iteration sub-seed so the exact case replays via
``repro wirefuzz --seed``.
"""

from __future__ import annotations

import math

import pytest

from repro.runtime import wire, wirefuzz
from repro.runtime.wire import HEADER, MAGIC, TYPE_ID_TABLE, WireCodecError


def _describe(report):
    return "\n".join(f"{suite} seed={seed}: {detail}"
                     for suite, seed, detail in report.defects)


def test_every_registered_class_round_trips_across_versions():
    """encode -> decode under v1 and v2 must reproduce sender, class and
    field values for every importable message class."""
    report = wirefuzz.fuzz_roundtrip(iterations=150, seed=2024)
    assert report.ok, _describe(report)
    # Every registered class was actually exercised (round-robin).
    assert report.roundtrips >= len(wirefuzz.registered_classes())


def test_adversarial_bytes_raise_only_wirecodecerror():
    report = wirefuzz.fuzz_decode(iterations=600, seed=2025)
    assert report.ok, _describe(report)
    assert report.clean_rejections > 0  # the suite did reject things


def test_fuzz_universe_covers_type_id_table():
    """Every type-id-table tag must have a message class behind it; a
    tag with an id but no class would leave a binary encoder path
    untested.  (Other suites may define throwaway classes that collide
    on a real tag, making it *ambiguous* — that still counts as
    present, so this check is order-independent.)"""
    from repro.transport.message import WireMessage
    wirefuzz.registered_classes()  # imports the protocol stacks
    walked = {}
    wire._walk(WireMessage, walked)
    missing = set(TYPE_ID_TABLE) - set(walked)
    assert not missing, f"type-id tags with no message class: {missing}"


def test_nonfinite_floats_round_trip_on_the_wire():
    for version in (1, 2):
        message = wire.rebuild("stub.ack", {"seq": math.nan})
        _, got = wire.decode(wire.encode(0, message, version=version))
        assert isinstance(got.seq, float) and math.isnan(got.seq)
        for value in (math.inf, -math.inf):
            message = wire.rebuild("stub.ack", {"seq": value})
            _, got = wire.decode(wire.encode(0, message, version=version))
            assert got.seq == value
        message = wire.rebuild("stub.ack", {"seq": -0.0})
        _, got = wire.decode(wire.encode(0, message, version=version))
        assert got.seq == 0.0 and math.copysign(1.0, got.seq) == -1.0


def test_depth_bomb_is_cleanly_rejected():
    """A payload of 100 nested lists must hit the depth bound, not the
    interpreter's recursion limit."""
    payload = b"l\x01" * 100 + b"N"
    type_id = TYPE_ID_TABLE["stub.ack"]  # fields = ("seq",)
    frame = HEADER.pack(MAGIC, 2, 0, type_id, len(payload)) + payload
    with pytest.raises(WireCodecError):
        wire.decode_datagram(frame)


def test_equivalent_distinguishes_float_identity():
    assert wirefuzz.equivalent(math.nan, math.nan)
    assert not wirefuzz.equivalent(0.0, -0.0)
    assert wirefuzz.equivalent((1, (math.nan,)), (1, (math.nan,)))
    assert not wirefuzz.equivalent([1], (1,))
    assert not wirefuzz.equivalent(1, True)
