"""Property-based whole-protocol tests.

Hypothesis drives the *scenario*: seeds, fault timings and workload
shapes are all generated, and every generated run must satisfy the four
Atomic Broadcast properties (checked by the harness verifier).  This is
the closest thing to a model checker in the suite: any counterexample is
a minimal failing schedule.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario, run_scenario
from repro.sim.faults import FaultSchedule
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

# Keep runtimes civil: each example is a full simulated cluster run.
RUNS = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@RUNS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.sampled_from([0.0, 0.05, 0.15]),
    rate=st.sampled_from([0.5, 1.5]),
)
def test_basic_protocol_properties_hold_failure_free(seed, loss, rate):
    result = run_scenario(Scenario(
        cluster=ClusterConfig(n=3, seed=seed, protocol="basic",
                              network=NetworkConfig(loss_rate=loss)),
        workload=PoissonWorkload(rate, 8.0, seed=seed),
        duration=12.0, settle_limit=120.0))
    assert result.report is not None


@RUNS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_at=st.floats(min_value=1.0, max_value=8.0),
    down_for=st.floats(min_value=0.2, max_value=6.0),
    victim=st.integers(min_value=0, max_value=2),
)
def test_basic_protocol_survives_arbitrary_single_crash(
        seed, crash_at, down_for, victim):
    result = run_scenario(Scenario(
        cluster=ClusterConfig(n=3, seed=seed, protocol="basic",
                              network=NetworkConfig(loss_rate=0.05)),
        workload=PoissonWorkload(1.0, 10.0, seed=seed),
        faults=FaultSchedule().crash(crash_at, victim)
        .recover(crash_at + down_for, victim),
        duration=20.0, settle_limit=200.0))
    assert result.report is not None


@RUNS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    checkpoint_interval=st.sampled_from([0.5, 2.0, None]),
    delta=st.sampled_from([1, 3, None]),
    log_unordered=st.booleans(),
    crash_at=st.floats(min_value=1.0, max_value=6.0),
    down_for=st.floats(min_value=0.5, max_value=5.0),
)
def test_alternative_protocol_feature_matrix(
        seed, checkpoint_interval, delta, log_unordered, crash_at,
        down_for):
    """Every combination of Section 5 features preserves the properties
    under a generated crash."""
    alt = AlternativeConfig(checkpoint_interval=checkpoint_interval,
                            delta=delta, log_unordered=log_unordered)
    result = run_scenario(Scenario(
        cluster=ClusterConfig(n=3, seed=seed, protocol="alternative",
                              network=NetworkConfig(loss_rate=0.05),
                              alt=alt),
        workload=PoissonWorkload(1.0, 10.0, seed=seed),
        faults=FaultSchedule().crash(crash_at, 2)
        .recover(crash_at + down_for, 2),
        duration=20.0, settle_limit=200.0))
    assert result.report is not None
