"""Property-based tests for the storage codec and the size model."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.ids import MessageId
from repro.core.messages import AppMessage
from repro.sizing import estimate_size
from repro.storage import codec

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
)

json_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
        # tuples/sets only over hashable scalars
        st.lists(scalars, max_size=5).map(tuple),
        st.frozensets(scalars, max_size=5),
    ),
    max_leaves=20,
)

app_messages = st.builds(
    lambda s, i, q, p: AppMessage(MessageId(s, i, q), p),
    s=st.integers(min_value=0, max_value=9),
    i=st.integers(min_value=1, max_value=9),
    q=st.integers(min_value=1, max_value=999),
    p=st.one_of(st.none(), st.text(max_size=20),
                st.tuples(st.text(max_size=5), st.integers())),
)


@given(json_values)
def test_codec_round_trip(value):
    assert codec.decode(codec.encode(value)) == value


@given(json_values)
def test_codec_is_deterministic(value):
    assert codec.encode(value) == codec.encode(value)


@given(st.frozensets(app_messages, max_size=6))
def test_app_message_sets_round_trip(batch):
    decoded = codec.decode(codec.encode(batch))
    assert decoded == batch
    assert {m.id: m.payload for m in decoded} == \
        {m.id: m.payload for m in batch}


@given(json_values)
def test_estimate_size_total_and_positive(value):
    size = estimate_size(value)
    assert isinstance(size, int)
    assert size >= 1


@given(st.lists(scalars, max_size=10))
def test_size_monotone_in_content(items):
    """Adding an element never shrinks the estimated size."""
    for cut in range(len(items)):
        assert estimate_size(items[:cut + 1]) >= estimate_size(items[:cut])
