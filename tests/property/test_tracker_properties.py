"""Property-based tests for the delivered-message tracker.

The tracker is a compressed set; the properties compare it against a
reference ``set`` model under arbitrary insertion sequences.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import MessageId
from repro.core.tracker import DeliveredTracker

message_ids = st.builds(
    MessageId,
    sender=st.integers(min_value=0, max_value=4),
    incarnation=st.integers(min_value=1, max_value=3),
    seq=st.integers(min_value=1, max_value=30),
)

id_lists = st.lists(message_ids, max_size=120)


@given(id_lists)
def test_membership_matches_set_model(ids):
    tracker = DeliveredTracker()
    model = set()
    for mid in ids:
        added = tracker.add(mid)
        assert added == (mid not in model)
        model.add(mid)
    assert len(tracker) == len(model)
    for mid in model:
        assert mid in tracker
    # Nearby non-members are correctly excluded.
    for mid in model:
        probe = MessageId(mid.sender, mid.incarnation, mid.seq + 1000)
        assert probe not in tracker


@given(id_lists)
def test_plain_round_trip_preserves_membership(ids):
    tracker = DeliveredTracker()
    for mid in ids:
        tracker.add(mid)
    clone = DeliveredTracker.from_plain(tracker.to_plain())
    assert len(clone) == len(tracker)
    for mid in ids:
        assert (mid in clone) == (mid in tracker)


@given(id_lists)
def test_insertion_order_irrelevant(ids):
    forward, backward = DeliveredTracker(), DeliveredTracker()
    for mid in ids:
        forward.add(mid)
    for mid in reversed(ids):
        backward.add(mid)
    assert len(forward) == len(backward)
    assert forward.to_plain() == backward.to_plain()


@given(id_lists)
def test_prefix_plus_exceptions_partition_the_set(ids):
    """Every member is either <= prefix or in the exception set, and the
    exception set never overlaps the prefix."""
    tracker = DeliveredTracker()
    model = set()
    for mid in ids:
        tracker.add(mid)
        model.add(mid)
    streams = {(m.sender, m.incarnation) for m in model}
    total = 0
    for sender, incarnation in streams:
        prefix = tracker.prefix_of(sender, incarnation)
        exceptions = tracker.exceptions_of(sender, incarnation)
        assert all(seq > prefix for seq in exceptions)
        member_seqs = {m.seq for m in model
                       if (m.sender, m.incarnation) == (sender, incarnation)}
        assert member_seqs == set(range(1, prefix + 1)) | exceptions \
            or member_seqs == {s for s in member_seqs}  # defensive
        # Exact partition check:
        assert member_seqs == set(range(1, prefix + 1)) | exceptions
        total += prefix + len(exceptions)
    assert total == len(tracker)


@given(st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                max_size=50))
def test_fifo_delivery_degenerates_to_plain_vector(seqs):
    """When a stream is delivered in contiguous order the tracker is
    exactly the paper's vector clock (no exceptions)."""
    tracker = DeliveredTracker()
    for seq in range(1, max(seqs) + 1):
        tracker.add(MessageId(0, 1, seq))
    assert tracker.is_plain_vector()
    assert tracker.prefix_of(0, 1) == max(seqs)


@given(id_lists)
def test_copy_independence(ids):
    tracker = DeliveredTracker()
    for mid in ids:
        tracker.add(mid)
    clone = tracker.copy()
    clone.add(MessageId(9, 9, 9))
    assert MessageId(9, 9, 9) not in tracker
