"""Property-based tests for the consensus substrates.

Hypothesis generates seeds, crash times and proposal values; every
generated schedule must satisfy Uniform Agreement, Uniform Validity and
(for schedules that keep a majority alive) Termination.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consensus.paxos import PaxosConsensus
from repro.fdetect.heartbeat import HeartbeatDetector
from repro.fdetect.omega import OmegaOracle
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.network import Network, NetworkConfig

RUNS = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def build(n, seed, loss):
    sim = Simulator()
    net = Network(sim, random.Random(seed), NetworkConfig(loss_rate=loss))
    nodes, consensuses = {}, {}
    for i in range(n):
        node = Node(sim, i, MemoryStorage())
        endpoint = node.add_component(Endpoint(net))
        detector = node.add_component(HeartbeatDetector(endpoint))
        omega = node.add_component(OmegaOracle(detector))
        consensuses[i] = node.add_component(
            PaxosConsensus(endpoint, omega))
        net.register(node)
        nodes[i] = node
    for node in nodes.values():
        node.start()
    return sim, nodes, consensuses


@RUNS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.sampled_from([0.0, 0.1, 0.25]),
    values=st.lists(st.text(min_size=1, max_size=8), min_size=3,
                    max_size=3, unique=True),
)
def test_agreement_and_validity_failure_free(seed, loss, values):
    sim, nodes, consensuses = build(3, seed, loss)
    for i, value in enumerate(values):
        consensuses[i].propose(0, frozenset({value}))
    sim.run(until=60.0)
    decisions = [consensuses[i].decided_value(0) for i in range(3)]
    assert decisions[0] is not None, "termination violated"
    assert decisions.count(decisions[0]) == 3, "agreement violated"
    assert decisions[0] in [frozenset({v}) for v in values], \
        "validity violated"


@RUNS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_at=st.floats(min_value=0.1, max_value=3.0),
    victim=st.integers(min_value=0, max_value=2),
    recover_after=st.floats(min_value=0.5, max_value=5.0),
)
def test_decision_stability_across_crash(seed, crash_at, victim,
                                         recover_after):
    """Whatever the schedule, a decision, once made anywhere, is final:
    the recovered node re-proposing its logged value converges to it."""
    sim, nodes, consensuses = build(3, seed, 0.05)
    for i in range(3):
        consensuses[i].propose(0, frozenset({f"v{i}"}))
    sim.schedule(crash_at, nodes[victim].crash)
    sim.schedule(crash_at + recover_after, nodes[victim].recover)

    def rejoin():
        logged = consensuses[victim].proposal_of(0)
        if logged is not None:
            consensuses[victim].propose(0, logged)

    sim.schedule(crash_at + recover_after + 0.1, rejoin)
    sim.run(until=80.0)
    decisions = [consensuses[i].decided_value(0) for i in range(3)]
    known = [d for d in decisions if d is not None]
    assert known, "nobody decided despite a good majority"
    assert all(d == known[0] for d in known), "agreement violated"
    # The victim, being recovered and re-joined, must also have learned.
    assert decisions[victim] == known[0]


@RUNS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    instances=st.integers(min_value=1, max_value=4),
)
def test_instances_are_independent(seed, instances):
    sim, nodes, consensuses = build(3, seed, 0.05)
    for k in range(instances):
        for i in range(3):
            consensuses[i].propose(k, frozenset({(k, i)}))
    sim.run(until=30.0 + 20.0 * instances)
    for k in range(instances):
        decisions = [consensuses[i].decided_value(k) for i in range(3)]
        assert decisions[0] is not None
        assert decisions.count(decisions[0]) == 3
        # The decision for instance k was proposed *to instance k*.
        decided_pair = next(iter(decisions[0]))
        assert decided_pair[0] == k
