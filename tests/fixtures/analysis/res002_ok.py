"""RES002 near-miss fixture: async-safe equivalents and sync contexts.

The coroutine awaits ``asyncio.sleep`` and pushes the file read into an
executor; the sync helper may use ``open()`` freely because it only ever
runs *in* that executor thread, not on the loop.  RES002 stays silent.
"""

import asyncio


async def poll_disk(loop, path):
    await asyncio.sleep(0.1)
    return await loop.run_in_executor(None, read_file, path)


def read_file(path):
    with open(path) as handle:
        return handle.read()
