"""REC002 negative fixture: recovery reads a key nobody writes.

``on_start`` retrieves an epoch that no code path ever logs — the read
"works" only through the retrieve default, which usually means the
write side was renamed or deleted.  The finding anchors at the
``storage.retrieve`` call (line 14).
"""


class Proto:
    EPOCH_KEY = ("proto", "epoch")

    def on_start(self):
        self.epoch = self.node.storage.retrieve(self.EPOCH_KEY, 0)
