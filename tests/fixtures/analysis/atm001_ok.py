"""ATM001 near-miss fixture: structurally close, stays silent.

``drain`` re-reads the field after the boundary (the rebind kills the
stale fact), and ``other`` writes a *different* field from the
boundary-crossing local — neither is a lost-update hazard.
"""


class Proto:

    def drain(self):
        count = self.pending
        yield self.signal.wait()
        count = self.pending
        self.pending = count + 1

    def other(self):
        count = self.pending
        yield self.signal.wait()
        self.backlog = count + 1
