"""ALI001 negative fixture: mutable state shared across node boundaries.

``build_cluster`` passes the *same* storage object to every node stack
built in the loop — the finding anchors at the ``storage`` argument on
line 23.  ``Proto.gossip`` puts a live mutable field straight into a
message — the finding anchors at ``self.unordered`` on line 36.
"""


class MemoryStorage:

    def __init__(self):
        self.data = {}


def build_stack(node_id, storage):
    return (node_id, storage)


def build_cluster(count):
    stacks = []
    for node_id in range(count):
        stacks.append(build_stack(node_id, storage=shared_storage))
    return stacks


shared_storage = MemoryStorage()


class Proto:

    def __init__(self):
        self.unordered = {}

    def gossip(self):
        self.endpoint.multisend(("digest", self.unordered))
