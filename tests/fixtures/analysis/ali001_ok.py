"""ALI001 near-miss fixture: per-node construction and copied payloads.

The loop hands each stack a *fresh* ``MemoryStorage()`` (a call makes a
new object per iteration), and ``gossip`` snapshots the mutable field
with ``frozenset`` before it crosses the wire.  Both stay silent.
"""


class MemoryStorage:

    def __init__(self):
        self.data = {}


def build_stack(node_id, storage):
    return (node_id, storage)


def build_cluster(count):
    stacks = []
    for node_id in range(count):
        stacks.append(build_stack(node_id, storage=MemoryStorage()))
    return stacks


class Proto:

    def __init__(self):
        self.unordered = {}

    def gossip(self):
        self.endpoint.multisend(("digest", frozenset(self.unordered)))
