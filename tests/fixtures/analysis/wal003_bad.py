"""WAL003 negative fixture: the send is three calls deep.

``on_msg`` mutates a declared volatile field and then calls ``_reply``,
which calls ``_transmit``, which sends.  No single method both mutates
and sends, so the intraprocedural WAL001 stays silent — only the
interprocedural rule sees the path.  The finding anchors at the
``self._reply(sender)`` call in ``on_msg`` (line 16).
"""


class Proto:
    VOLATILE_FIELDS = ("state",)

    def on_msg(self, msg, sender):
        self.state = msg.value
        self._reply(sender)

    def _reply(self, sender):
        self._transmit(sender)

    def _transmit(self, sender):
        self.endpoint.send(sender, "ack")
