"""ATM002 negative fixture: a yield inside a write_barrier section.

The barrier is supposed to commit both logs atomically; the yield on
line 14 hands control to the scheduler mid-batch.  The finding anchors
at the yield, not the barrier.
"""


class Proto:

    def commit(self):
        with self.node.storage.write_barrier():
            self.node.storage.log(("proto", "k"), self.value)
            yield self.signal.wait()
            self.node.storage.log(("proto", "v"), self.value)
