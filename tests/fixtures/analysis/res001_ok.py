"""RES001 near-miss fixture: every accumulation is bounded somehow.

Four sanctioned shapes on the same receive path: a ``deque(maxlen=...)``
ring, a dict guarded by a reachable ``len() >= cap`` check, a peer-keyed
map (bounded by the membership, not a counter), and a list with an
eviction elsewhere in the class.  RES001 stays silent on all of them.
"""

from collections import deque


class Proto:

    def __init__(self):
        self.ring = deque(maxlen=64)
        self.backlog = {}
        self.last_seen = {}
        self.window = []
        self.max_backlog = 128

    def on_start(self):
        self.endpoint.register("fx.data", self._on_data)

    def _on_data(self, msg, sender):
        self.ring.append(msg)
        self.last_seen[sender] = msg.id
        if len(self.backlog) >= self.max_backlog:
            return
        self.backlog[msg.id] = msg
        self.window.append(msg.id)

    def drain(self):
        while self.window:
            self.window.pop()
