"""MSG002 near-miss fixture: the registered tag has a live send path.

Same string-literal registration as ``msg002_bad.py``, but ``Orphan``
(whose ``type`` is the registered tag) is constructed and sent, so the
receive path is reachable and MSG002 stays silent.
"""


class WireMessage:
    type = "wire.base"


class Orphan(WireMessage):
    type = "fx.orphan"
    fields = ("body",)

    def __init__(self, body):
        self.body = body


class Proto:

    def on_start(self):
        self.endpoint.register("fx.orphan", self._on_orphan)

    def _on_orphan(self, msg, sender):
        self.last = msg.body

    def emit(self):
        self.endpoint.send(2, Orphan("b"))
