"""REC003 near-miss fixture: recovery effects guarded into idempotence.

The generation counter is bumped only in volatile state (the durable
write is a constant first-boot marker), and ``_mark`` checks the
durable list before appending — re-running ``on_start`` leaves storage
byte-identical.  Everything stays silent.
"""


class Proto:
    GEN_KEY = ("proto", "gen")
    SEEN_KEY = ("proto", "seen")

    def on_start(self):
        self.generation = self.node.storage.retrieve(self.GEN_KEY, 0) + 1
        if self.generation == 1:
            self.node.storage.log(self.GEN_KEY, 1)
        self._mark("boot")

    def _mark(self, tag):
        seen = self.node.storage.retrieve_list(self.SEEN_KEY)
        if tag not in seen:
            self.node.storage.append(self.SEEN_KEY, tag)
