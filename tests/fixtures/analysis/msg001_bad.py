"""MSG001 negative fixture: a message type is shipped but nothing
handles it.

``Ping`` is constructed and sent through the transport, yet no
``register``/``register_handler`` call anywhere names its tag — every
delivery is dropped on the floor.  Flagged at the class definition.
"""


class WireMessage:
    type = "wire.base"


class Ping(WireMessage):
    type = "fx.ping"
    fields = ("payload",)

    def __init__(self, payload):
        self.payload = payload


class Proto:

    def poke(self):
        self.endpoint.send(1, Ping("x"))
