"""ALI002 near-miss fixture: copied or provably-immutable stashes.

The registration names the message class, so field annotations resolve:
``epoch`` is an ``int`` and may be stashed directly; ``members`` is
defensively copied with ``tuple`` and the derived epoch goes through
arithmetic (a fresh value).  All stay silent.
"""


class ViewMessage:

    def __init__(self, members: list, epoch: int):
        self.members = members
        self.epoch = epoch


class Proto:

    def on_start(self):
        self.endpoint.register(ViewMessage.type, self._on_view)

    def _on_view(self, msg, sender):
        self.view = tuple(msg.members)
        self.epoch = msg.epoch + 1
        self.last_epoch = msg.epoch
