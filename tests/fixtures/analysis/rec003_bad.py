"""REC003 negative fixture: recovery actions that compound per restart.

``on_start`` rebuilds state correctly (every key it writes is read
back, so REC001/REC002 stay quiet) but commits two non-idempotent
effects: the retrieve-derived increment logged on line 18, and the
unguarded append inside the ``_mark`` helper on line 22.  A crash
between ``on_start`` and the next checkpoint replays both.
"""


class Proto:
    GEN_KEY = ("proto", "gen")
    SEEN_KEY = ("proto", "seen")

    def on_start(self):
        self.seen = list(self.node.storage.retrieve_list(self.SEEN_KEY))
        self.generation = self.node.storage.retrieve(self.GEN_KEY, 0) + 1
        self.node.storage.log(self.GEN_KEY, self.generation)
        self._mark("boot")

    def _mark(self, tag):
        self.node.storage.append(self.SEEN_KEY, tag)
