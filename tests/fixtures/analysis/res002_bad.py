"""RES002 negative fixture: blocking calls inside async code.

Three loop-stalling shapes in one coroutine: ``time.sleep``, sync
``open()``, and ``subprocess.run``.  Each freezes every component
multiplexed on the LiveRuntime event loop.  Flagged at all three call
sites.
"""

import subprocess
import time


async def poll_disk(path):
    time.sleep(0.1)
    with open(path) as handle:
        data = handle.read()
    subprocess.run(["sync"], check=False)
    return data
