"""ALI002 negative fixture: handler stashes a received payload by
reference.

The handler is registered under a string message type, so the message
class (and any immutability annotations) cannot be resolved — the
stashed ``msg.members`` on line 17 must be assumed mutable and shared
with the sender's heap in simulation.
"""


class Proto:

    def on_start(self):
        self.endpoint.register("peer.view", self._on_view)

    def _on_view(self, msg, sender):
        self.view = msg.members
