"""RES001 negative fixture: receive-path growth with no bound anywhere.

``_on_data`` grows two containers per message — a dict keyed by message
id and a set of seen ids — and the class has no eviction, no ``maxlen``
and no bound check.  Memory scales with traffic.  Flagged at both
growth sites.
"""


class Proto:

    def __init__(self):
        self.backlog = {}
        self.seen = set()

    def on_start(self):
        self.endpoint.register("fx.data", self._on_data)

    def _on_data(self, msg, sender):
        self.backlog[msg.id] = msg
        self.seen.add(msg.id)
