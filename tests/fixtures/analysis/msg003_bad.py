"""MSG003 negative fixture: a handler reads a payload field no
constructor populates.

``Report`` carries ``count`` (declared wire field, ``__init__``
assignment); the handler also reads ``msg.weight``, which nothing ever
sets — an AttributeError on the first delivery.  Flagged at the
``msg.weight`` read.
"""


class WireMessage:
    type = "wire.base"


class Report(WireMessage):
    type = "fx.report"
    fields = ("count",)

    def __init__(self, count):
        self.count = count


class Proto:

    def on_start(self):
        self.endpoint.register(Report.type, self._on_report)

    def emit(self):
        self.endpoint.send(1, Report(3))

    def _on_report(self, msg, sender):
        self.total = msg.count + msg.weight
