"""REC001 near-miss fixture: the read-back is lazy, via a handler.

The view key is still never read *directly* in ``on_start`` — it is read
inside ``_on_view``, which ``on_start`` registers as a message handler.
The handler is reachable the moment recovery completes, so it belongs
to the recovery closure and the write is accounted for.  A rule that
only scanned ``on_start``'s own body would (wrongly) flag this.
"""


class Proto:
    EPOCH_KEY = ("proto", "epoch")
    VIEW_KEY = ("proto", "view")

    def on_start(self):
        self.epoch = self.node.storage.retrieve(self.EPOCH_KEY, 0)
        self.node.storage.log(self.EPOCH_KEY, self.epoch + 1)  # repro: noqa(REC003) -- deliberate epoch bump; this fixture targets REC001's closure
        self.endpoint.register("view", self._on_view)

    def _on_view(self, msg, sender):
        current = self.node.storage.retrieve(self.VIEW_KEY, None)
        self.view = current if current is not None else msg.view

    def on_view_change(self, view):
        self.view = view
        self.node.storage.log(self.VIEW_KEY, view)
