"""NOQ001 near-miss fixture: every suppression says why.

The same two suppression shapes as ``noq001_bad.py``, each with a
``-- <reason>`` tail recording the sanctioned boundary.  NOQ001 stays
silent (and the suppressions work as usual).
"""

import time


def stamp():
    return time.time()  # repro: noqa(DET001) -- wall-clock label for the report header, outside the sim

def stamp_again():
    return time.time()  # repro: noqa -- fixture: every rule sanctioned on this line
