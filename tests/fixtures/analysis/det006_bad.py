"""DET006 negative fixture: wall-clock taint reaches a message payload.

The chaos package may read the wall clock (it sits outside the DET001
scope), but the value must never *escape* into a message: the receiver's
behaviour then depends on host time and the trace cannot be replayed
from the seed.  The finding anchors at the ``endpoint.send`` call
(line 16), not at the clock read.
"""

import time


class Injector:
    def on_tick(self):
        jitter = time.monotonic()
        self.endpoint.send(0, ("probe", jitter))
