"""REC002 near-miss fixture: the write hides behind a key-forwarding
helper.

Nothing calls ``storage.log`` with the epoch key *textually* — the
write goes through ``_persist``, which forwards its ``key`` parameter
to storage.  Staying silent here requires the helper pass: the
``_persist(self.EPOCH_KEY, ...)`` call site supplies the concrete key
pattern that satisfies the read.
"""


class Proto:
    EPOCH_KEY = ("proto", "epoch")

    def on_start(self):
        self.epoch = self.node.storage.retrieve(self.EPOCH_KEY, 0)
        self._persist(self.EPOCH_KEY, self.epoch + 1)  # repro: noqa(REC003) -- deliberate epoch bump; this fixture targets REC002's helper forwarding

    def _persist(self, key, value):
        self.node.storage.log(key, value)
