"""ATM002 near-miss fixture: boundaries adjacent to, not inside, the
barrier.

``commit`` yields *after* the section closes; ``nested`` contains a
yield only inside a nested scope (another function's body).  Both stay
silent.
"""


class Proto:

    def commit(self):
        with self.node.storage.write_barrier():
            self.node.storage.log(("proto", "k"), self.value)
        yield self.signal.wait()

    def nested(self):
        with self.node.storage.write_barrier():
            def later():
                yield 1
            self.handler = later
