"""MSG002 negative fixture: a handler is registered for a tag that no
code ever sends or constructs.

``"fx.orphan"`` has a registration (the receive side) but no message
class construction or transport send anywhere: the handler is
unreachable.  Flagged at the registration line.
"""


class Proto:

    def on_start(self):
        self.endpoint.register("fx.orphan", self._on_orphan)

    def _on_orphan(self, msg, sender):
        self.last = msg
