"""WAL003 near-miss fixture: same call chain, but persisted first.

Identical shape to ``wal003_bad.py`` except ``on_msg`` routes through a
helper that writes the field to stable storage before the reply chain
runs.  The barrier lives in a *callee* (``_persist``), so staying silent
here requires the summary analysis to know that every path through
``_persist`` reaches a storage write.
"""


class Proto:
    VOLATILE_FIELDS = ("state",)

    def on_msg(self, msg, sender):
        self.state = msg.value
        self._persist()
        self._reply(sender)

    def _persist(self):
        self.node.storage.log(("proto", "state"), self.state)

    def _reply(self, sender):
        self._transmit(sender)

    def _transmit(self, sender):
        self.endpoint.send(sender, "ack")
