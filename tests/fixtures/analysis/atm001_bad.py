"""ATM001 negative fixture: read-modify-write across a yield.

``drain`` reads ``self.pending`` into a local, yields (a scheduling
boundary), then writes the field back from the stale local — the
finding anchors at the write (line 17).  ``note`` passes a
boundary-crossing local derived from ``self.queue_depth`` to a helper
that stores it back into the same field; the interprocedural finding
anchors at the ``self._note(depth)`` call (line 22).
"""


class Proto:

    def drain(self):
        count = self.pending
        yield self.signal.wait()
        self.pending = count + 1

    def note(self):
        depth = self.queue_depth
        yield self.signal.wait()
        self._note(depth)

    def _note(self, depth):
        self.queue_depth = depth - 1
