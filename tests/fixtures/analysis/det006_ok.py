"""DET006 near-miss fixture: the tainted name is re-bound before the
send.

The wall-clock value is observed (for logging) but the name is then
overwritten with a draw from a seeded stream; the payload that leaves
the node is a pure function of the seed.  Staying silent here requires
flow-sensitivity — a name-based grep would still see ``jitter`` born
from ``time.monotonic()``.
"""

import time


class Injector:
    def on_tick(self):
        jitter = time.monotonic()
        self.record_wallclock(jitter)
        jitter = self.rng.uniform(0.0, 1.0)
        self.endpoint.send(0, ("probe", jitter))

    def record_wallclock(self, value):
        self.last_wallclock = value
