"""NOQ001 negative fixture: suppressions with no justification.

A rule-specific noqa and a bare noqa, neither carrying the ``--
<reason>`` tail.  Both are flagged; neither silences NOQ001 itself.
"""

import time


def stamp():
    return time.time()  # repro: noqa(DET001)


def stamp_again():
    return time.time()  # repro: noqa
