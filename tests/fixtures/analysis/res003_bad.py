"""RES003 negative fixture: a loop of bare durable writes.

Each ``storage.log`` iteration is a separate durable commit — one
logical state change turned into O(n) disk round-trips.  Flagged at the
write call inside the loop.
"""


class Proto:

    def flush(self, entries):
        for key, value in entries:
            self.node.storage.log(key, value)
