"""REC001 negative fixture: a key written but never recovered.

``on_view_change`` logs the current view durably, but no path reachable
from ``on_start`` ever reads it back — after a crash the log entry is
dead weight and the view silently resets.  The finding anchors at the
``storage.log`` call (line 20).
"""


class Proto:
    EPOCH_KEY = ("proto", "epoch")
    VIEW_KEY = ("proto", "view")

    def on_start(self):
        self.epoch = self.node.storage.retrieve(self.EPOCH_KEY, 0)
        self.node.storage.log(self.EPOCH_KEY, self.epoch + 1)  # repro: noqa(REC003) -- deliberate epoch bump; this fixture targets REC001

    def on_view_change(self, view):
        self.view = view
        self.node.storage.log(self.VIEW_KEY, view)
