"""MSG001 near-miss fixture: the same send, but the tag is handled.

Identical send path to ``msg001_bad.py``; the one difference is the
``on_start`` registration for ``Ping.type``, which closes the flow
(sender → ``fx.ping`` → ``Proto._on_ping``) and keeps MSG001 silent.
"""


class WireMessage:
    type = "wire.base"


class Ping(WireMessage):
    type = "fx.ping"
    fields = ("payload",)

    def __init__(self, payload):
        self.payload = payload


class Proto:

    def on_start(self):
        self.endpoint.register(Ping.type, self._on_ping)

    def _on_ping(self, msg, sender):
        self.last = msg.payload

    def poke(self):
        self.endpoint.send(1, Ping("x"))
