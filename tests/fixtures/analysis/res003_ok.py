"""RES003 near-miss fixture: the loop is group-committed.

The same per-entry writes, but wrapped in ``write_barrier()`` — the
barrier turns the loop into one durable commit.  A single write outside
any loop is also fine.  RES003 stays silent.
"""


class Proto:

    def flush(self, entries):
        with self.node.storage.write_barrier():
            for key, value in entries:
                self.node.storage.log(key, value)

    def log_once(self, key, value):
        self.node.storage.log(key, value)
