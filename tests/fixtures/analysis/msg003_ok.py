"""MSG003 near-miss fixture: the handler reads only populated surface.

Every attribute the handler touches is sanctioned: a declared wire
field/``__init__`` assignment (``count``), an ``__init__`` keyword
parameter (``origin``), a class-body default (``priority``), and a
method (``scaled``).  MSG003 stays silent.
"""


class WireMessage:
    type = "wire.base"


class Report(WireMessage):
    type = "fx.report"
    fields = ("count",)
    priority = 0

    def __init__(self, count, origin=None):
        self.count = count
        self.origin = origin

    def scaled(self, factor):
        return self.count * factor


class Proto:

    def on_start(self):
        self.endpoint.register(Report.type, self._on_report)

    def emit(self):
        self.endpoint.send(1, Report(3, origin=0))

    def _on_report(self, msg, sender):
        self.total = msg.scaled(2) + msg.priority
        self.source = msg.origin
