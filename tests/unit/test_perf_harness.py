"""Unit tests for the perf-trajectory harness (repro.perf)."""

from __future__ import annotations

import json

from repro.perf.harness import (compare_determinism,
                                measure_storage_comparison, run_cell)
from repro.perf.matrix import (PerfCell, default_matrix, overload_cell,
                               smallest_cell, storage_comparison_cell)
from repro.perf.trajectory import (baseline_determinism, build_document,
                                   format_comparison_table,
                                   format_matrix_table,
                                   format_trajectory_table, load_documents,
                                   summarize_drift, write_document)


class TestMatrix:
    def test_matrix_shape_and_names_are_frozen(self):
        cells = default_matrix()
        assert len(cells) == 16
        names = [cell.name for cell in cells]
        assert len(set(names)) == 16
        assert names[0] == "basic-n3-l00-quiet"
        assert "alternative-n5-l20-chaos" in names
        # Seeds are distinct per cell: cells must be independent draws.
        assert len({cell.seed for cell in cells}) == 16

    def test_smallest_cell_is_cheapest_axis_corner(self):
        cell = smallest_cell()
        assert (cell.protocol, cell.n, cell.loss_rate, cell.chaos) == \
            ("basic", 3, 0.0, False)

    def test_comparison_cell_is_the_e6_batching_shape(self):
        cell = storage_comparison_cell()
        assert cell.protocol == "alternative"
        assert cell.rate_per_node >= 20  # high offered load: batching


class TestOverloadCell:
    def test_overload_cell_is_additive_not_an_edit(self):
        # The 16 legacy cells are frozen: the overload cell must be a
        # new name with flow set, and no legacy cell may carry flow.
        cell = overload_cell()
        assert cell.flow is not None
        assert cell.name == "basic-n3-l00-overload"
        legacy = default_matrix()
        assert cell.name not in {c.name for c in legacy}
        assert all(c.flow is None for c in legacy)
        assert all("flow" not in c.params() for c in legacy)
        assert cell.params()["flow"] == {"rate": 6.0, "burst": 6,
                                         "max_unordered": 24}

    def test_overload_cell_runs_deterministically_with_flow_metrics(self):
        cell = overload_cell()
        first = run_cell(cell)
        second = run_cell(cell)
        assert first.determinism == second.determinism
        # The offered load exceeds the bucket: rejections must appear,
        # and the flow keys must exist only on this cell.
        assert first.determinism["flow_rejected"] > 0
        assert first.determinism["flow_accepted"] > 0
        assert first.determinism["messages_delivered"] == \
            first.determinism["flow_accepted"]
        legacy = run_cell(smallest_cell())
        assert "flow_accepted" not in legacy.determinism
        assert "flow_rejected" not in legacy.determinism
        assert "unordered_high_water" not in legacy.determinism


class TestDeterminism:
    def test_smallest_cell_bit_identical_across_runs(self):
        cell = smallest_cell()
        first = run_cell(cell)
        second = run_cell(cell)
        assert first.determinism == second.determinism
        assert first.determinism["messages_delivered"] > 0
        assert first.determinism["log_ops"] > 0
        assert compare_determinism(
            {cell.name: first.determinism}, [second]) == []

    def test_isolation_mode_does_not_change_determinism(self):
        cell = smallest_cell()
        snapshot = run_cell(cell, isolation="snapshot")
        deepcopy = run_cell(cell, isolation="deepcopy")
        assert snapshot.determinism == deepcopy.determinism

    def test_compare_reports_drift_and_missing_cells(self):
        cell = smallest_cell()
        result = run_cell(cell)
        tampered = dict(result.determinism)
        tampered["log_ops"] += 1
        drifts = compare_determinism({cell.name: tampered}, [result])
        assert len(drifts) == 1 and "log_ops" in drifts[0]
        ok, verdict = summarize_drift(drifts)
        assert not ok and "DRIFT" in verdict
        assert summarize_drift([]) == (
            True, "determinism check: OK (bit-identical to baseline)")
        assert compare_determinism({}, [result]) == \
            [f"{cell.name}: not present in baseline"]


class TestDocuments:
    def test_build_write_load_roundtrip(self, tmp_path, monkeypatch):
        result = run_cell(smallest_cell())
        document = build_document("PRX", [result])
        assert document["schema"] == 1
        path = tmp_path / "BENCH_PRX.json"
        write_document(document, str(path))
        monkeypatch.chdir(tmp_path)
        loaded = load_documents()
        assert len(loaded) == 1
        assert baseline_determinism(loaded[0]) == \
            {result.cell.name: result.determinism}
        # Stable serialisation: a rewrite is byte-identical.
        text = path.read_text()
        write_document(json.loads(text), str(path))
        assert path.read_text() == text

    def test_tables_render(self):
        result = run_cell(smallest_cell())
        table = format_matrix_table([result])
        assert result.cell.name in table
        document = build_document("PRX", [result])
        trajectory = format_trajectory_table([document], result.cell.name)
        assert "PRX" in trajectory


class TestStorageComparison:
    def test_before_after_agree_on_determinism(self):
        comparison = measure_storage_comparison(repeats=1)
        assert comparison["before"]["deliveries_per_sec"] > 0
        assert comparison["after"]["deliveries_per_sec"] > 0
        assert comparison["speedup_deliveries_per_sec"] > 0
        assert comparison["determinism"]["messages_delivered"] > 0
        table = format_comparison_table(comparison)
        assert "before" in table and "after" in table


class TestFrozenCells:
    def test_cell_params_cover_the_scenario_inputs(self):
        cell = PerfCell("basic", 3, 0.1, chaos=True, seed=7)
        params = cell.params()
        assert params["loss_rate"] == 0.1 and params["chaos"] is True
        scenario = cell.scenario()
        assert scenario.cluster.n == 3
        assert scenario.cluster.network.loss_rate == 0.1
        assert scenario.faults is not None
        quiet = PerfCell("basic", 3, 0.1, chaos=False, seed=7).scenario()
        assert quiet.faults is None
