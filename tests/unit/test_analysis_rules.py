"""Unit tests for the protocol-aware static analyzer (repro.analysis).

Every rule gets at least one true-positive fixture and one
negative/suppressed fixture; a self-check asserts the real tree lints
clean, so CI fails the moment a violation lands in ``src/repro``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import (analyze_paths, analyze_source, default_registry,
                            format_json, format_text, module_name_for_path)
from repro.analysis.engine import Report
from repro.analysis.registry import Rule, RuleRegistry
from repro.cli import main as cli_main
from repro.errors import AnalysisError

SIM_MODULE = "repro.sim.fixture"
CORE_MODULE = "repro.core.fixture"
UNSCOPED_MODULE = "myapp.utils"


def check(source: str, module: str = SIM_MODULE):
    return analyze_source(textwrap.dedent(source), module=module,
                          path="fixture.py")


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# -- DET001: wall clock -----------------------------------------------------

def test_wall_clock_call_flagged():
    findings = check("""
        import time

        def stamp():
            return time.time()
    """)
    assert rule_ids(findings) == ["DET001"]
    assert findings[0].line == 5


def test_wall_clock_datetime_flagged():
    findings = check("""
        import datetime

        def stamp():
            return datetime.datetime.now()
    """)
    assert rule_ids(findings) == ["DET001"]


def test_wall_clock_suppressed():
    findings = check("""
        import time

        def stamp():
            return time.monotonic()  # repro: noqa(DET001) -- pacing only
    """)
    assert findings == []


def test_wall_clock_ignored_outside_scope():
    findings = check("""
        import time

        def stamp():
            return time.time()
    """, module=UNSCOPED_MODULE)
    assert findings == []


# -- DET002 / DET003: uuid and OS entropy -----------------------------------

def test_uuid4_flagged():
    findings = check("""
        import uuid

        def mint():
            return uuid.uuid4()
    """)
    assert "DET002" in rule_ids(findings)


def test_uuid_import_from_flagged():
    findings = check("""
        from uuid import uuid4
    """)
    assert "DET002" in rule_ids(findings)


def test_os_urandom_flagged():
    findings = check("""
        import os

        def entropy():
            return os.urandom(8)
    """)
    assert rule_ids(findings) == ["DET003"]


def test_system_random_flagged():
    findings = check("""
        import random

        def entropy():
            return random.SystemRandom().random()
    """)
    assert "DET003" in rule_ids(findings)


# -- DET004: global random module -------------------------------------------

def test_global_random_call_flagged():
    findings = check("""
        import random

        def draw():
            return random.random()
    """)
    assert rule_ids(findings) == ["DET004"]


def test_global_random_import_from_flagged():
    findings = check("""
        from random import randint
    """)
    assert rule_ids(findings) == ["DET004"]


def test_seeded_instance_draw_is_clean():
    findings = check("""
        def draw(rng):
            return rng.random() + rng.expovariate(2.0)
    """)
    assert findings == []


def test_random_annotation_is_clean():
    findings = check("""
        import random
        from typing import Callable

        def delays(fn: Callable[[random.Random], float]) -> float:
            return 0.0
    """)
    assert findings == []


def test_random_construction_suppressed_with_justification():
    findings = check("""
        import random

        def stream(seed):
            return random.Random(seed)  # repro: noqa(DET004) -- boundary
    """)
    assert findings == []


# -- DET005: unordered set iteration ----------------------------------------

def test_set_literal_iteration_flagged():
    findings = check("""
        def fanout(send):
            for peer in {3, 1, 2}:
                send(peer)
    """)
    assert rule_ids(findings) == ["DET005"]


def test_set_call_comprehension_flagged():
    findings = check("""
        def fanout(items):
            return [x for x in set(items)]
    """)
    assert rule_ids(findings) == ["DET005"]


def test_sorted_set_iteration_is_clean():
    findings = check("""
        def fanout(items, send):
            for peer in sorted(set(items)):
                send(peer)
    """)
    assert findings == []


# -- WAL001: log before send -------------------------------------------------

WAL_BAD = """
    class Acceptor:
        VOLATILE_FIELDS = ("promised",)

        def on_prepare(self, msg, sender):
            self.promised = msg.ballot
            self.endpoint.send(sender, ("promise", msg.ballot))
"""

WAL_GOOD = """
    class Acceptor:
        VOLATILE_FIELDS = ("promised",)

        def on_prepare(self, msg, sender):
            self.promised = msg.ballot
            self.node.storage.log(("acceptor", msg.k), self.promised)
            self.endpoint.send(sender, ("promise", msg.ballot))
"""


def test_wal_unlogged_mutation_before_send_flagged():
    findings = check(WAL_BAD, module=CORE_MODULE)
    assert rule_ids(findings) == ["WAL001"]
    assert "promised" in findings[0].message
    assert findings[0].line == 7


def test_wal_log_between_mutation_and_send_is_clean():
    assert check(WAL_GOOD, module=CORE_MODULE) == []


def test_wal_requires_declaration():
    undeclared = WAL_BAD.replace('VOLATILE_FIELDS = ("promised",)',
                                 "pass")
    assert check(undeclared, module=CORE_MODULE) == []


def test_wal_branch_merge_catches_one_armed_log():
    findings = check("""
        class Proto:
            VOLATILE_FIELDS = ("state",)

            def handle(self, msg, sender):
                self.state = msg.value
                if msg.urgent:
                    self.node.storage.log("state", self.state)
                self.endpoint.multisend(("update", msg.value))
    """, module=CORE_MODULE)
    assert rule_ids(findings) == ["WAL001"]


def test_wal_loop_carries_dirt_to_loop_head_send():
    findings = check("""
        class Proto:
            VOLATILE_FIELDS = ("state",)

            def pump(self, peers):
                for peer in peers:
                    self.endpoint.send(peer, self.state)
                    self.state = peer
    """, module=CORE_MODULE)
    assert rule_ids(findings) == ["WAL001"]


def test_wal_helper_barrier_and_mutator_calls():
    findings = check("""
        class Proto:
            VOLATILE_FIELDS = ("tally",)

            def good(self, msg, sender):
                self.tally.add(sender)
                self._store(("tally",), self.tally)
                self.endpoint.send(sender, "ack")

            def bad(self, msg, sender):
                self.tally.add(sender)
                self.endpoint.send(sender, "ack")
    """, module=CORE_MODULE)
    assert rule_ids(findings) == ["WAL001"]
    assert "Proto.bad" in findings[0].message


def test_wal_suppression():
    suppressed = WAL_BAD.replace(
        "self.endpoint.send(sender, (\"promise\", msg.ballot))",
        "self.endpoint.send(sender, msg.ballot)"
        "  # repro: noqa(WAL001) -- suppression syntax under test")
    assert check(suppressed, module=CORE_MODULE) == []


def test_wal_out_of_scope_package():
    assert check(WAL_BAD, module="repro.harness.fixture") == []


# -- WAL002: raw transport sends ---------------------------------------------

RAW_SEND = """
    class Proto:
        def gossip(self):
            self.node.network.send(self.node.node_id, 2, "msg")
"""


def test_raw_network_send_flagged():
    findings = check(RAW_SEND, module=CORE_MODULE)
    assert rule_ids(findings) == ["WAL002"]
    assert "endpoint" in findings[0].message


def test_raw_medium_multisend_flagged():
    findings = check("""
        class Proto:
            def flood(self):
                self._medium.multisend(0, "msg")
    """, module="repro.consensus.fixture")
    assert rule_ids(findings) == ["WAL002"]


def test_endpoint_send_is_clean():
    findings = check("""
        class Proto:
            def reply(self, sender):
                self.endpoint.send(sender, "ack")
                self.endpoint.multisend("all")
    """, module=CORE_MODULE)
    assert findings == []


def test_generator_send_is_clean():
    # Generators also have .send(); the rule keys on transport-shaped
    # receiver names, not the method name alone.
    findings = check("""
        class Proto:
            def resume(self):
                self.task.gen.send(None)
    """, module=CORE_MODULE)
    assert findings == []


def test_raw_send_out_of_scope_package():
    # The transport package itself is the sanctioned caller of the
    # medium (the stubborn layer, the endpoint); harnesses wire media.
    assert check(RAW_SEND, module="repro.transport.fixture") == []
    assert check(RAW_SEND, module="repro.harness.fixture") == []


def test_raw_send_suppressed():
    suppressed = RAW_SEND.replace(
        '"msg")',
        '"msg")  # repro: noqa(WAL002) -- suppression syntax under test')
    assert check(suppressed, module=CORE_MODULE) == []


# -- SIM001: lost tasks -------------------------------------------------------

def test_lost_module_level_task_flagged():
    findings = check("""
        def ticker():
            while True:
                yield 1.0

        def install():
            ticker()
    """, module=UNSCOPED_MODULE)
    assert rule_ids(findings) == ["SIM001"]


def test_lost_method_task_flagged():
    findings = check("""
        class Component:
            def _gossip(self):
                while True:
                    yield 0.25

            def on_start(self):
                self._gossip()
    """, module=UNSCOPED_MODULE)
    assert rule_ids(findings) == ["SIM001"]
    assert "_gossip" in findings[0].message


def test_spawned_and_delegated_tasks_are_clean():
    findings = check("""
        class Component:
            def _gossip(self):
                while True:
                    yield 0.25

            def _once(self):
                yield 1.0
                return 42

            def on_start(self, node):
                node.spawn(self._gossip(), "gossip")

            def run(self):
                result = yield from self._once()
                return result
    """, module=UNSCOPED_MODULE)
    assert findings == []


def test_lost_task_suppressed():
    findings = check("""
        def ticker():
            yield 1.0

        def install():
            ticker()  # repro: noqa(SIM001) -- exercised for side effects
    """, module=UNSCOPED_MODULE)
    assert findings == []


def test_non_generator_bare_call_is_clean():
    findings = check("""
        def plain():
            return 3

        def install():
            plain()
    """, module=UNSCOPED_MODULE)
    assert findings == []


# -- SIM002: raw mutable yields ----------------------------------------------

def test_yield_of_list_flagged():
    findings = check("""
        def waiter(e1, e2):
            yield [e1, e2]
    """, module=UNSCOPED_MODULE)
    assert rule_ids(findings) == ["SIM002"]
    assert "AnyOf" in findings[0].message


def test_yield_of_dict_call_flagged():
    findings = check("""
        def waiter():
            yield dict(a=1)
    """, module=UNSCOPED_MODULE)
    assert rule_ids(findings) == ["SIM002"]


def test_yield_of_wait_request_is_clean():
    findings = check("""
        def waiter(event, task):
            yield 1.5
            yield event
            yield task
            yield None
    """, module=UNSCOPED_MODULE)
    assert findings == []


# -- suppression syntax -------------------------------------------------------

def test_bare_noqa_suppresses_everything_but_the_hygiene_rule():
    findings = check("""
        import time

        def stamp():
            return time.time()  # repro: noqa
    """)
    assert rule_ids(findings) == ["NOQ001"]


def test_justified_bare_noqa_suppresses_everything():
    findings = check("""
        import time

        def stamp():
            return time.time()  # repro: noqa -- fixture: wall clock wanted
    """)
    assert findings == []


def test_noqa_for_other_rule_does_not_suppress():
    findings = check("""
        import time

        def stamp():
            return time.time()  # repro: noqa(DET004) -- wrong-rule fixture
    """)
    assert rule_ids(findings) == ["DET001"]


def test_noqa_multiple_rules():
    findings = check("""
        import time
        import random

        def stamp():
            return time.time() + random.random()  # repro: noqa(DET001, DET004) -- fixture: both rules sanctioned
    """)
    assert findings == []


# -- engine / registry plumbing ----------------------------------------------

def test_module_name_for_path():
    assert module_name_for_path("/x/src/repro/sim/kernel.py") \
        == "repro.sim.kernel"
    assert module_name_for_path("/x/src/repro/core/__init__.py") \
        == "repro.core"
    assert module_name_for_path("/x/elsewhere/script.py") == "script"


def test_syntax_error_raises_analysis_error():
    with pytest.raises(AnalysisError):
        analyze_source("def broken(:\n", module=SIM_MODULE)


def test_unknown_path_raises_analysis_error():
    with pytest.raises(AnalysisError):
        analyze_paths(["/no/such/dir-for-repro-analysis"])


def test_duplicate_rule_id_rejected():
    class Dup(Rule):
        id = "DET001"

    registry = RuleRegistry()
    registry.register(Dup())
    with pytest.raises(AnalysisError):
        registry.register(Dup())


def test_registry_has_all_families():
    ids = default_registry().ids()
    assert {"DET001", "DET002", "DET003", "DET004", "DET005",
            "WAL001", "SIM001", "SIM002"} <= set(ids)


def test_reporters(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    # Out of scope by module name, so force the module via analyze_source:
    findings = analyze_source(bad.read_text(), module=SIM_MODULE,
                              path=str(bad))
    report = Report(findings, 1)
    text = format_text(report)
    assert f"{bad}:2:5: DET001" in text
    assert "1 violation(s)" in text
    payload = json.loads(format_json(report))
    assert payload["version"] == 1
    assert payload["violations"] == 1
    assert payload["findings"][0]["rule"] == "DET001"


# -- CLI ----------------------------------------------------------------------

def _write_bad_module(tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    bad = pkg / "clocky.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    return bad


def test_cli_lint_reports_and_exits_nonzero(tmp_path, capsys):
    bad = _write_bad_module(tmp_path)
    status = cli_main(["lint", str(bad)])
    out = capsys.readouterr().out
    assert status == 1
    assert f"{bad}:5:12: DET001" in out


def test_cli_lint_clean_exits_zero(tmp_path, capsys):
    bad = _write_bad_module(tmp_path)
    bad.write_text(bad.read_text().replace(
        "return time.time()", "return 0.0"))
    status = cli_main(["lint", str(bad)])
    assert status == 0
    assert "✓ clean" in capsys.readouterr().out


def test_cli_lint_bad_path_clean_error(tmp_path, capsys):
    status = cli_main(["lint", str(tmp_path / "missing")])
    captured = capsys.readouterr()
    assert status == 2
    assert "error:" in captured.err
    assert "Traceback" not in captured.err


def test_cli_lint_json_format(tmp_path, capsys):
    bad = _write_bad_module(tmp_path)
    status = cli_main(["lint", str(bad), "--format", "json"])
    assert status == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"] == 1


def test_runtime_sim_inside_det_scope():
    findings = check("""
        import time

        def stamp():
            return time.time()
    """, module="repro.runtime.sim")
    assert rule_ids(findings) == ["DET001"]


def test_runtime_primitives_inside_det_scope():
    findings = check("""
        import os

        def token():
            return os.urandom(8)
    """, module="repro.runtime.primitives")
    assert rule_ids(findings) == ["DET003"]


@pytest.mark.parametrize("module", ["repro.runtime.live",
                                    "repro.runtime.live_net"])
def test_live_runtime_excluded_from_det_rules(module):
    # The exclusion is scope configuration (LIVE_RUNTIME_EXCLUDE), not a
    # noqa comment: the live runtime legitimately reads the wall clock.
    findings = check("""
        import time
        import os

        def now():
            return time.monotonic() + len(os.urandom(4))
    """, module=module)
    assert findings == []


def test_exclude_glob_matches_prefix_only():
    class GlobRule(Rule):
        id = "TST1"
        scope = ("repro.runtime",)
        exclude = ("repro.runtime.live*",)

    rule = GlobRule()
    assert rule.applies_to("repro.runtime.sim")
    assert rule.applies_to("repro.runtime.primitives")
    assert not rule.applies_to("repro.runtime.live")
    assert not rule.applies_to("repro.runtime.live_net")
    assert not rule.applies_to("repro.runtime.live.sub")
    assert rule.applies_to("repro.runtime")  # the package root itself


def test_exclude_plain_name_covers_submodules_not_siblings():
    class PlainRule(Rule):
        id = "TST2"
        exclude = ("repro.runtime.live",)

    rule = PlainRule()  # scope None: applies everywhere except excluded
    assert not rule.applies_to("repro.runtime.live")
    assert not rule.applies_to("repro.runtime.live.sub")
    assert rule.applies_to("repro.runtime.live_net")  # sibling, not child
    assert rule.applies_to("repro.runtime.sim")


def test_cli_list_rules(capsys):
    status = cli_main(["lint", "--list-rules"])
    assert status == 0
    out = capsys.readouterr().out
    assert "WAL001" in out and "DET004" in out and "SIM001" in out


# -- self-check: the real tree is clean ---------------------------------------

def repo_src():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(here, os.pardir, os.pardir, "src", "repro")


def test_repo_lints_clean():
    report = analyze_paths([repo_src()])
    assert report.files_analyzed > 60
    assert report.findings == [], format_text(report)


def test_module_entry_point_runs_clean():
    env = dict(os.environ)
    src_root = os.path.dirname(repo_src())
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", repo_src()],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 violations" in proc.stdout
