"""Unit tests for seeded RNG streams and the size model."""

from __future__ import annotations

from repro.sim.rng import SeedSequence
from repro.sizing import estimate_size
from repro.transport.message import WireMessage


class TestSeedSequence:
    def test_streams_are_memoised(self):
        seeds = SeedSequence(1)
        assert seeds.stream("a") is seeds.stream("a")

    def test_streams_are_independent(self):
        seeds = SeedSequence(1)
        a_first = seeds.stream("a").random()
        # Drawing from "b" must not perturb "a".
        seeds2 = SeedSequence(1)
        seeds2.stream("b").random()
        assert seeds2.stream("a").random() == a_first

    def test_same_seed_same_draws(self):
        assert SeedSequence(5).stream("x").random() == \
            SeedSequence(5).stream("x").random()

    def test_different_names_differ(self):
        seeds = SeedSequence(5)
        assert seeds.stream("x").random() != seeds.stream("y").random()

    def test_different_seeds_differ(self):
        assert SeedSequence(1).stream("x").random() != \
            SeedSequence(2).stream("x").random()

    def test_child_sequences_derive(self):
        child = SeedSequence(1).child("node-3")
        assert child.stream("net").random() == \
            SeedSequence(1).child("node-3").stream("net").random()


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(0) >= 1
        assert estimate_size(3.14) == 10
        assert estimate_size("abc") == 5
        assert estimate_size(b"abcd") == 6

    def test_big_ints_cost_more(self):
        assert estimate_size(2 ** 64) > estimate_size(7)

    def test_containers_sum_members(self):
        assert estimate_size([1, 2]) == 2 + 2 * estimate_size(1)
        assert estimate_size((1, 2)) == estimate_size([1, 2])
        assert estimate_size({1, 2}) == estimate_size([1, 2])

    def test_dict_counts_keys_and_values(self):
        d = {"k": "v"}
        assert estimate_size(d) == 2 + estimate_size("k") + estimate_size("v")

    def test_wire_message_uses_declared_fields(self):
        class M(WireMessage):
            type = "m"
            fields = ("a", "b")

            def __init__(self):
                self.a = "xx"
                self.b = 7
                self.hidden = "not counted" * 100

        small = M()
        assert estimate_size(small) == 2 + 1 + \
            estimate_size("xx") + estimate_size(7)

    def test_unknown_object_falls_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "w" * 10

        assert estimate_size(Weird()) == 12

    def test_nested_structures(self):
        nested = {"list": [1, (2, 3)], "set": frozenset({"a"})}
        assert estimate_size(nested) > 0
