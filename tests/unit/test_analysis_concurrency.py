"""Tests for the concurrency-analysis rule families (ATM, ALI, REC003).

Each rule gets a negative fixture (flagged at an exact line) and a
near-miss positive fixture (structurally close, stays silent) under
``tests/fixtures/analysis/``, mirroring the whole-program rule tests in
``test_analysis_project.py``.
"""

from __future__ import annotations

import os

from repro.analysis import analyze_source

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "fixtures", "analysis")


def check_fixture(name: str, module: str):
    path = os.path.join(FIXTURES, name)
    with open(path, encoding="utf-8") as handle:
        return analyze_source(handle.read(), module=module, path=path)


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# -- ATM001: interrupted read-modify-write ------------------------------------

def test_atm001_flags_stale_write_after_yield():
    findings = check_fixture("atm001_bad.py", "repro.core.fixture")
    assert rule_ids(findings) == ["ATM001", "ATM001"]
    direct, interproc = findings
    assert direct.line == 17  # self.pending = count + 1
    assert "self.pending" in direct.message
    assert "'count'" in direct.message
    assert interproc.line == 22  # the self._note(depth) call site
    assert "Proto._note" in interproc.message
    assert "self.queue_depth" in interproc.message


def test_atm001_counts_await_and_gather_as_boundaries():
    findings = analyze_source(
        "class Proto:\n"
        "    async def drain(self):\n"
        "        count = self.pending\n"
        "        await asyncio.gather(self.flush(), self.sync())\n"
        "        self.pending = count + 1\n",
        module="repro.core.fixture", path="fixture.py")
    atm = [f for f in findings if f.rule_id == "ATM001"]
    assert len(atm) == 1
    assert atm[0].line == 5


def test_atm001_near_miss_reread_and_other_field_stay_silent():
    assert check_fixture("atm001_ok.py", "repro.core.fixture") == []


def test_atm001_out_of_scope_module_stays_silent():
    assert check_fixture("atm001_bad.py", "repro.analysis.fixture") == []


def test_atm001_suppressible_with_justification():
    findings = analyze_source(
        "class Proto:\n"
        "    def drain(self):\n"
        "        count = self.pending\n"
        "        yield self.signal.wait()\n"
        "        self.pending = count + 1"
        "  # repro: noqa(ATM001) -- single-writer task by design\n",
        module="repro.core.fixture", path="fixture.py")
    assert findings == []


# -- ATM002: scheduling boundary inside a write barrier -----------------------

def test_atm002_flags_yield_inside_barrier():
    findings = check_fixture("atm002_bad.py", "repro.core.fixture")
    assert rule_ids(findings) == ["ATM002"]
    assert findings[0].line == 14  # the yield, not the with statement
    assert "write_barrier" in findings[0].message


def test_atm002_near_miss_adjacent_and_nested_scopes_stay_silent():
    assert check_fixture("atm002_ok.py", "repro.core.fixture") == []


# -- ALI001: cross-node mutable escape ----------------------------------------

def test_ali001_flags_shared_storage_and_escaping_field():
    findings = check_fixture("ali001_bad.py", "repro.harness.fixture")
    assert rule_ids(findings) == ["ALI001", "ALI001"]
    loop, send = findings
    assert loop.line == 23  # the storage= argument in the build loop
    assert "storage" in loop.message and "loop" in loop.message
    assert send.line == 36  # self.unordered inside the multisend tuple
    assert "self.unordered" in send.message


def test_ali001_near_miss_factory_and_copied_send_stay_silent():
    assert check_fixture("ali001_ok.py", "repro.harness.fixture") == []


# -- ALI002: stashed message payload ------------------------------------------

def test_ali002_flags_uncopied_stash_of_unknown_payload():
    # The fixture's "peer.view" handler has (by design) no matching send,
    # so MSG002 also fires on it; this test owns the ALI family only.
    findings = [f for f in check_fixture("ali002_bad.py",
                                         "repro.core.fixture")
                if f.rule_id.startswith("ALI")]
    assert rule_ids(findings) == ["ALI002"]
    assert findings[0].line == 17  # self.view = msg.members
    assert ".members" in findings[0].message
    assert "self.view" in findings[0].message


def test_ali002_near_miss_copies_and_immutable_annotations_stay_silent():
    # The registration names the message class, so the int-annotated
    # attribute may be stashed directly; the rest are copied/derived.
    assert check_fixture("ali002_ok.py", "repro.core.fixture") == []


# -- REC003: non-idempotent recovery ------------------------------------------

def test_rec003_flags_increment_and_unguarded_append():
    findings = check_fixture("rec003_bad.py", "repro.core.fixture")
    assert rule_ids(findings) == ["REC003", "REC003"]
    increment, append = findings
    assert increment.line == 18  # log of the retrieve-derived +1
    assert "'proto', 'gen'" in increment.message
    assert append.line == 22  # bare append in the _mark helper
    assert "'proto', 'seen'" in append.message
    assert "append" in append.message


def test_rec003_near_miss_guarded_effects_stay_silent():
    assert check_fixture("rec003_ok.py", "repro.core.fixture") == []


def test_rec003_inactive_without_recovery_surface():
    # No on_start in scope -> recovery actions cannot replay, so a lone
    # unguarded append is not a REC003 (and not a REC001 either: the
    # closure rules stand down together).
    findings = analyze_source(
        "class Proto:\n"
        "    def save(self, tag):\n"
        "        self.node.storage.append(('proto', 'seen'), tag)\n",
        module="repro.core.fixture", path="fixture.py")
    assert findings == []
