"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import AnyOf, Event, Signal, Simulator


class TestClockAndTimers:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_advances_clock_to_fire_time(self, sim):
        fired = []
        sim.schedule(2.5, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 2.5

    def test_callbacks_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_ties_break_by_insertion_order(self, sim):
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_cancelled_timer_does_not_fire(self, sim):
        fired = []
        timer = sim.schedule(1.0, fired.append, "x")
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_harmless(self, sim):
        fired = []
        timer = sim.schedule(1.0, fired.append, "x")
        sim.run()
        timer.cancel()
        assert fired == ["x"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0  # clock advanced to the boundary

    def test_run_until_resumes_where_it_left(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=3.0)
        sim.run(until=10.0)
        assert fired == [5]

    def test_call_soon_runs_at_current_time(self, sim):
        times = []
        sim.schedule(2.0, lambda: sim.call_soon(
            lambda: times.append(sim.now)))
        sim.run()
        assert times == [2.0]

    def test_max_events_limits_work(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=4)
        assert len(fired) == 4

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_pending_counts_live_timers(self, sim):
        t1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        t1.cancel()
        assert sim.pending() == 1


class TestTasks:
    def test_task_sleeps_and_resumes(self, sim):
        trace = []

        def body():
            trace.append(sim.now)
            yield 1.5
            trace.append(sim.now)

        sim.spawn(body(), "t")
        sim.run()
        assert trace == [0.0, 1.5]

    def test_task_result_returned_via_join(self, sim):
        results = []

        def worker():
            yield 1.0
            return 42

        def joiner():
            task = sim.spawn(worker(), "w")
            value = yield task
            results.append(value)

        sim.spawn(joiner(), "j")
        sim.run()
        assert results == [42]

    def test_join_already_finished_task(self, sim):
        results = []

        def worker():
            return "done"
            yield  # pragma: no cover

        def joiner(task):
            value = yield task
            results.append(value)

        task = sim.spawn(worker(), "w")
        sim.run()
        sim.spawn(joiner(task), "j")
        sim.run()
        assert results == ["done"]

    def test_yield_none_reschedules_same_time(self, sim):
        times = []

        def body():
            times.append(sim.now)
            yield None
            times.append(sim.now)

        sim.spawn(body(), "t")
        sim.run()
        assert times == [0.0, 0.0]

    def test_kill_stops_task(self, sim):
        trace = []

        def body():
            trace.append("start")
            yield 10.0
            trace.append("never")

        task = sim.spawn(body(), "t")
        sim.run(until=1.0)
        task.kill()
        sim.run()
        assert trace == ["start"]
        assert task.dead
        assert not task.finished

    def test_kill_runs_finally_blocks(self, sim):
        cleaned = []

        def body():
            try:
                yield 10.0
            finally:
                cleaned.append(True)

        task = sim.spawn(body(), "t")
        sim.run(until=1.0)
        task.kill()
        assert cleaned == [True]

    def test_kill_idempotent(self, sim):
        def body():
            yield 10.0

        task = sim.spawn(body(), "t")
        sim.run(until=1.0)
        task.kill()
        task.kill()
        assert task.dead

    def test_killed_sleeping_task_timer_cancelled(self, sim):
        def body():
            yield 100.0

        task = sim.spawn(body(), "t")
        sim.run(until=1.0)
        task.kill()
        assert sim.pending() == 0

    def test_bad_yield_raises(self, sim):
        def body():
            yield "nonsense"

        sim.spawn(body(), "t")
        with pytest.raises(SimulationError):
            sim.run()

    def test_finished_task_flags(self, sim):
        def body():
            yield 0.5
            return "r"

        task = sim.spawn(body(), "t")
        sim.run()
        assert task.finished and task.dead and task.result == "r"


class TestEvents:
    def test_event_wakes_waiter_with_value(self, sim):
        got = []

        def waiter(event):
            value = yield event
            got.append(value)

        event = sim.event("e")
        sim.spawn(waiter(event), "w")
        sim.schedule(2.0, event.fire, "payload")
        sim.run()
        assert got == ["payload"]

    def test_event_fire_twice_raises(self, sim):
        event = sim.event("e")
        event.fire()
        with pytest.raises(SimulationError):
            event.fire()

    def test_wait_on_already_fired_event(self, sim):
        got = []
        event = sim.event("e")
        event.fire("v")

        def waiter():
            value = yield event
            got.append(value)

        sim.spawn(waiter(), "w")
        sim.run()
        assert got == ["v"]

    def test_multiple_waiters_all_woken(self, sim):
        got = []
        event = sim.event("e")

        def waiter(tag):
            value = yield event
            got.append((tag, value))

        for tag in range(3):
            sim.spawn(waiter(tag), f"w{tag}")
        sim.schedule(1.0, event.fire, "x")
        sim.run()
        assert sorted(got) == [(0, "x"), (1, "x"), (2, "x")]

    def test_dead_waiter_not_resumed(self, sim):
        got = []
        event = sim.event("e")

        def waiter():
            value = yield event
            got.append(value)

        task = sim.spawn(waiter(), "w")
        sim.run(until=0.5)
        task.kill()
        event.fire("x")
        sim.run()
        assert got == []

    def test_run_until_event_returns_value(self, sim):
        event = sim.event("e")
        sim.schedule(3.0, event.fire, 99)
        assert sim.run_until_event(event) == 99

    def test_run_until_event_detects_deadlock(self, sim):
        event = sim.event("never")
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_event(event)

    def test_run_until_event_timeout(self, sim):
        event = sim.event("late")
        sim.schedule(100.0, event.fire)
        with pytest.raises(SimulationError, match="timeout"):
            sim.run_until_event(event, limit=10.0)


class TestSignals:
    def test_signal_wakes_current_waiters_only(self, sim):
        got = []
        signal = sim.signal("s")

        def waiter():
            value = yield signal.wait()
            got.append(value)

        sim.spawn(waiter(), "w1")
        sim.schedule(1.0, signal.notify, "first")
        sim.run()
        assert got == ["first"]
        # A new notify with no waiters is a no-op.
        signal.notify("second")
        sim.run()
        assert got == ["first"]

    def test_signal_multiple_rounds(self, sim):
        got = []
        signal = sim.signal("s")

        def waiter():
            for _ in range(3):
                value = yield signal.wait()
                got.append(value)

        sim.spawn(waiter(), "w")
        for i in range(3):
            sim.schedule(float(i + 1), signal.notify, i)
        sim.run()
        assert got == [0, 1, 2]

    def test_predicate_loop_pattern(self, sim):
        """The paper's 'wait until <cond>' idiom built from a Signal."""
        state = {"value": 0}
        done = []
        signal = sim.signal("s")

        def waiter():
            while state["value"] < 3:
                yield signal.wait()
            done.append(sim.now)

        def incrementer():
            for _ in range(5):
                yield 1.0
                state["value"] += 1
                signal.notify()

        sim.spawn(waiter(), "w")
        sim.spawn(incrementer(), "i")
        sim.run()
        assert done == [3.0]


class TestAnyOf:
    def test_first_event_wins(self, sim):
        got = []
        e1, e2 = sim.event("e1"), sim.event("e2")

        def waiter():
            fired, value = yield AnyOf([e1, e2])
            got.append((fired is e2, value))

        sim.spawn(waiter(), "w")
        sim.schedule(2.0, e2.fire, "fast")
        sim.schedule(5.0, e1.fire, "slow")
        sim.run()
        assert got == [(True, "fast")]

    def test_later_event_ignored_by_same_waiter(self, sim):
        wakes = []
        e1, e2 = sim.event("e1"), sim.event("e2")

        def waiter():
            yield AnyOf([e1, e2])
            wakes.append(sim.now)
            yield 10.0

        sim.spawn(waiter(), "w")
        sim.schedule(1.0, e1.fire)
        sim.schedule(2.0, e2.fire)
        sim.run()
        assert wakes == [1.0]

    def test_empty_anyof_rejected(self, sim):
        with pytest.raises(SimulationError):
            AnyOf([])

    def test_anyof_with_already_fired_event(self, sim):
        got = []
        e1, e2 = sim.event("e1"), sim.event("e2")
        e1.fire("pre")

        def waiter():
            fired, value = yield AnyOf([e1, e2])
            got.append(value)

        sim.spawn(waiter(), "w")
        sim.run()
        assert got == ["pre"]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []

            def noisy(tag, period):
                while sim.now < 10:
                    trace.append((sim.now, tag))
                    yield period

            sim.spawn(noisy("a", 0.7), "a")
            sim.spawn(noisy("b", 1.1), "b")
            sim.run(until=10)
            return trace

        assert run_once() == run_once()


class TestTimerCompaction:
    """Cancelled timers are lazily compacted out of the heap."""

    def test_dead_timers_are_compacted(self):
        sim = Simulator()
        timers = [sim.schedule(10.0 + i, lambda: None) for i in range(500)]
        for timer in timers[:400]:
            timer.cancel()
        # The heap shed the dead entries without waiting for pops.
        assert sim.compactions >= 1
        assert len(sim._heap) < 500
        assert sim.pending() == 100

    def test_pending_is_exact_after_cancel_and_fire(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        dead = sim.schedule(2.0, fired.append, "dead")
        dead.cancel()
        dead.cancel()  # double-cancel must not double-count
        assert sim.pending() == 1
        sim.run()
        assert fired == ["keep"]
        assert sim.pending() == 0
        keep.cancel()  # cancelling a fired timer is a no-op
        assert sim.pending() == 0

    def test_firing_order_unchanged_by_compaction(self):
        # Same schedule, one run with enough cancellations to trigger
        # compaction and one replayed without — the survivors must fire
        # in exactly the same order.
        def build(cancel):
            sim = Simulator()
            order = []
            timers = [sim.schedule((i * 7919 % 97) / 10.0, order.append, i)
                      for i in range(300)]
            if cancel:
                for index in range(300):
                    if index % 3 != 0:
                        timers[index].cancel()
            sim.run()
            return order, sim

        with_cancel, sim = build(cancel=True)
        without_cancel, _ = build(cancel=False)
        assert sim.compactions >= 1
        survivors = [i for i in without_cancel if i % 3 == 0]
        assert with_cancel == survivors

    def test_events_processed_ignores_cancelled(self):
        sim = Simulator()
        for i in range(10):
            timer = sim.schedule(1.0 + i, lambda: None)
            if i % 2:
                timer.cancel()
        sim.run()
        assert sim.events_processed == 5
