"""Unit tests for fault injection."""

from __future__ import annotations

import pytest

from repro.sim.faults import FaultEvent, FaultSchedule, RandomFaults
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage


def build_nodes(sim, n):
    nodes = {}
    for i in range(n):
        node = Node(sim, i, MemoryStorage())
        node.start()
        nodes[i] = node
    return nodes


class TestFaultSchedule:
    def test_explicit_timeline(self, sim):
        nodes = build_nodes(sim, 2)
        FaultSchedule([(1.0, 0, "crash"), (2.0, 0, "recover")]) \
            .install(sim, nodes)
        sim.run(until=1.5)
        assert not nodes[0].up
        sim.run(until=2.5)
        assert nodes[0].up
        assert nodes[1].crash_count == 0

    def test_chained_builder(self, sim):
        nodes = build_nodes(sim, 1)
        schedule = FaultSchedule().crash(1.0, 0).recover(3.0, 0)
        schedule.install(sim, nodes)
        sim.run(until=2.0)
        assert not nodes[0].up
        sim.run(until=4.0)
        assert nodes[0].up

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, 0, "explode")


class TestRandomFaults:
    def test_good_nodes_stabilize(self, sim):
        nodes = build_nodes(sim, 3)
        faults = RandomFaults(mttf=2.0, mttr=0.5, stabilize_at=20.0, seed=1)
        faults.install(sim, nodes)
        sim.run(until=100.0)
        # After stabilisation every good node must be up and stay up.
        assert all(node.up for node in nodes.values())
        crashes_at_end = sum(n.crash_count for n in nodes.values())
        sim.run(until=200.0)
        assert sum(n.crash_count for n in nodes.values()) == crashes_at_end

    def test_faults_do_occur_before_stabilization(self, sim):
        nodes = build_nodes(sim, 3)
        RandomFaults(mttf=2.0, mttr=0.5, stabilize_at=50.0, seed=2) \
            .install(sim, nodes)
        sim.run(until=50.0)
        assert sum(n.crash_count for n in nodes.values()) > 0

    def test_bad_node_keeps_oscillating(self, sim):
        nodes = build_nodes(sim, 2)
        RandomFaults(mttf=1.0, mttr=0.5, stabilize_at=10.0, seed=3,
                     bad_nodes=[1]).install(sim, nodes)
        sim.run(until=10.0)
        mid_crashes = nodes[1].crash_count
        sim.run(until=100.0)
        assert nodes[1].crash_count > mid_crashes  # still failing
        assert nodes[0].up

    def test_bad_node_die_mode_stays_down(self, sim):
        nodes = build_nodes(sim, 2)
        RandomFaults(mttf=1.0, mttr=0.5, stabilize_at=5.0, seed=4,
                     bad_nodes=[1], bad_mode="die").install(sim, nodes)
        sim.run(until=100.0)
        assert not nodes[1].up
        assert nodes[1].crash_count == 1

    def test_max_faults_budget_respected(self, sim):
        nodes = build_nodes(sim, 1)
        RandomFaults(mttf=0.5, mttr=0.1, stabilize_at=1000.0, seed=5,
                     max_faults_per_node=3).install(sim, nodes)
        sim.run(until=500.0)
        assert nodes[0].crash_count == 3

    def test_bad_mode_validation(self):
        with pytest.raises(ValueError):
            RandomFaults(1.0, 1.0, 1.0, bad_mode="nope")

    def test_deterministic_given_seed(self):
        def crash_times(seed):
            sim = Simulator()
            nodes = build_nodes(sim, 3)
            RandomFaults(mttf=2.0, mttr=0.5, stabilize_at=30.0,
                         seed=seed).install(sim, nodes)
            sim.run(until=30.0)
            return [tuple(n.crash_times) for n in nodes.values()]

        assert crash_times(7) == crash_times(7)
        assert crash_times(7) != crash_times(8)
