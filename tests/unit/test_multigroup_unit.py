"""Unit-level tests for the multi-group multicast internals."""

from __future__ import annotations

import pytest

from repro.multigroup import MultiGroupCluster
from repro.multigroup.multicast import TimestampAnnounce
from repro.transport.network import NetworkConfig


def build(groups=None, seed=0):
    cluster = MultiGroupCluster(
        groups or {"g1": [0, 1, 2], "g2": [2, 3, 4]}, seed=seed,
        network=NetworkConfig(loss_rate=0.0))
    cluster.start()
    return cluster


class TestClockDeterminism:
    def test_group_clocks_agree_across_members(self):
        cluster = build(seed=1)
        for j in range(6):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.multicast,
                                 2, f"x{j}", ["g1", "g2"])
        cluster.run(until=40.0)
        clocks_g1 = {cluster.layers[i].clock["g1"] for i in (0, 1, 2)}
        clocks_g2 = {cluster.layers[i].clock["g2"] for i in (2, 3, 4)}
        assert len(clocks_g1) == 1
        assert len(clocks_g2) == 1

    def test_final_timestamps_identical_everywhere(self):
        cluster = build(seed=2)
        mids = []
        cluster.sim.schedule(
            0.5, lambda: mids.append(
                cluster.multicast(2, "x", ["g1", "g2"])))
        cluster.run(until=30.0)
        finals = set()
        for node_id in range(5):
            entry = cluster.layers[node_id].pending.get(mids[0])
            if entry is not None and entry.final is not None:
                finals.add(entry.final)
        assert len(finals) == 1

    def test_announce_cannot_poison_own_group_proposal(self):
        """A forged announcement must not pre-assign a proposal for a
        group the receiver belongs to (the clock-determinism guard)."""
        cluster = build(seed=3)
        cluster.run(until=0.5)
        layer = cluster.layers[0]  # member of g1
        forged = TimestampAnnounce([[[9, 1, 1], ["g1", "g2"], "evil",
                                     {"g1": 42, "g2": 7}]])
        layer._on_announce(forged, sender=3)
        entry = layer.pending[(9, 1, 1)]
        assert "g1" not in entry.proposed      # own group: AB order only
        assert entry.proposed.get("g2") == 7   # foreign group: accepted


class TestDeliveryRule:
    def test_single_group_fast_path_needs_no_exchange(self):
        cluster = build({"g": [0, 1, 2]}, seed=4)
        cluster.sim.schedule(0.5, cluster.multicast, 0, "solo", ["g"])
        cluster.run(until=15.0)
        layer = cluster.layers[1]
        assert [p for _, p in layer.delivered_in("g")] == ["solo"]
        # No cross-group announcements were ever needed.
        assert cluster.network.metrics.by_type.get(
            TimestampAnnounce.type, 0) == 0

    def test_holdback_blocks_until_finalized(self):
        """A cross-group message proposed earlier must be delivered
        before later single-group messages once its final arrives, if
        its final timestamp is smaller."""
        cluster = build(seed=5)
        cluster.sim.schedule(0.5, cluster.multicast, 2, "cross",
                             ["g1", "g2"])
        cluster.sim.schedule(0.6, cluster.multicast, 0, "local", ["g1"])
        cluster.run(until=30.0)
        order = [p for _, p in cluster.layers[1].delivered_in("g1")]
        assert set(order) == {"cross", "local"}
        # Whatever the order, it is the same at every member.
        for member in (0, 2):
            assert [p for _, p in
                    cluster.layers[member].delivered_in("g1")] == order

    def test_mdelivered_count(self):
        cluster = build(seed=6)
        cluster.sim.schedule(0.5, cluster.multicast, 2, "x",
                             ["g1", "g2"])
        cluster.run(until=30.0)
        # Node 2 is in both groups: it delivers the message twice (once
        # per group), the pure members once each.
        assert cluster.layers[2].mdelivered_count == 2
        assert cluster.layers[0].mdelivered_count == 1


class TestListener:
    def test_listener_upcalls(self):
        from repro.multigroup.multicast import MulticastListener

        class Recorder(MulticastListener):
            def __init__(self):
                self.events = []

            def on_mdeliver(self, group, mid, payload):
                self.events.append((group, payload))

        cluster = build(seed=7)
        recorder = Recorder()
        cluster.layers[2].add_listener(recorder)
        cluster.sim.schedule(0.5, cluster.multicast, 2, "x",
                             ["g1", "g2"])
        cluster.run(until=30.0)
        assert sorted(recorder.events) == [("g1", "x"), ("g2", "x")]
