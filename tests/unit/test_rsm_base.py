"""Unit tests for the ReplicatedStateMachine glue component."""

from __future__ import annotations

import pytest

from repro.apps.base import Application, ReplicatedStateMachine
from repro.apps.counter import SequenceRecorder
from repro.harness.cluster import Cluster, ClusterConfig
from repro.transport.network import NetworkConfig


def build(protocol="basic", seed=0):
    cluster = Cluster(ClusterConfig(
        n=3, seed=seed, protocol=protocol,
        network=NetworkConfig(loss_rate=0.02)))
    cluster.start()
    return cluster


class TestWiring:
    def test_app_factory_called_per_start(self):
        cluster = build(seed=81)
        rsm = cluster.rsms[0]
        first_app = rsm.app
        cluster.nodes[0].crash()
        cluster.nodes[0].recover()
        assert rsm.app is not first_app  # fresh volatile state

    def test_incarnation_and_stream_counters(self):
        cluster = build(seed=82)
        rsm = cluster.rsms[1]
        assert rsm.incarnation == 1
        assert rsm.stream == 1
        cluster.nodes[1].crash()
        cluster.nodes[1].recover()
        assert rsm.incarnation == 2
        assert rsm.stream == 2
        rsm.on_restore(None)
        assert rsm.stream == 3  # restores open a new delivery stream

    def test_applied_count_tracks_deliveries(self):
        cluster = build(seed=83)
        for j in range(5):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.submit, 0, j)
        cluster.run(until=12.0)
        assert cluster.rsms[2].applied_count == 5

    def test_submit_records_broadcast_with_collector(self):
        cluster = build(seed=84)
        cluster.run(until=0.5)
        message = cluster.rsms[0].submit("tracked")
        assert message.id in cluster.collector.broadcast_times
        assert cluster.collector.broadcast_payloads[message.id] == \
            "tracked"

    def test_blocking_broadcast_generator(self):
        cluster = build(seed=85)
        done = []

        def client():
            yield 0.5
            message = yield from cluster.rsms[1].broadcast("blocking")
            done.append(message.payload)

        cluster.nodes[1].spawn(client(), "client")
        cluster.run(until=12.0)
        assert done == ["blocking"]

    def test_checkpoint_provider_registered_on_alternative(self):
        cluster = build(protocol="alternative", seed=86)
        abcast = cluster.abcasts[0]
        assert abcast._app_checkpoint is not None
        # The provider is the live app's snapshot method.
        snapshot = abcast._app_checkpoint()
        assert snapshot == cluster.rsms[0].app.snapshot()

    def test_abstract_application_contract(self):
        app = Application()
        from repro.core.ids import MessageId
        from repro.core.messages import AppMessage
        with pytest.raises(NotImplementedError):
            app.apply(AppMessage(MessageId(0, 1, 1), None))
        with pytest.raises(NotImplementedError):
            app.snapshot()
        with pytest.raises(NotImplementedError):
            app.restore(None)
