"""Unit tests for the simulated network (Section 3.1 assumptions)."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.message import WireMessage
from repro.transport.network import Network, NetworkConfig


class Ping(WireMessage):
    type = "test.ping"
    fields = ("value",)

    def __init__(self, value):
        self.value = value


def build(sim, n=2, config=None, seed=0):
    net = Network(sim, random.Random(seed), config or NetworkConfig())
    nodes, received = {}, {i: [] for i in range(n)}
    for i in range(n):
        node = Node(sim, i, MemoryStorage())
        node.start()
        node.register_handler(
            "test.ping",
            lambda m, s, i=i: received[i].append((s, m.value, sim.now)))
        net.register(node)
        nodes[i] = node
    return net, nodes, received


class TestDelivery:
    def test_basic_delivery_with_delay(self, sim):
        net, nodes, received = build(sim)
        net.send(0, 1, Ping("hello"))
        sim.run()
        assert received[1] == [(0, "hello", pytest.approx(sim.now))]
        assert 0.01 <= sim.now <= 0.1  # within the configured delay bounds

    def test_unknown_destination_rejected(self, sim):
        net, _, _ = build(sim)
        with pytest.raises(SimulationError):
            net.send(0, 99, Ping(1))

    def test_channels_are_not_fifo(self, sim):
        """Two messages may be reordered (independent delay draws)."""
        config = NetworkConfig(min_delay=0.01, max_delay=1.0)
        net, nodes, received = build(sim, config=config, seed=3)
        for i in range(20):
            net.send(0, 1, Ping(i))
        sim.run()
        values = [v for _, v, _ in received[1]]
        assert sorted(values) == list(range(20))
        assert values != list(range(20))  # reordering happened

    def test_loopback_is_reliable_and_immediate(self, sim):
        config = NetworkConfig(loss_rate=0.9)
        net, nodes, received = build(sim, config=config, seed=1)
        for _ in range(50):
            net.send(0, 0, Ping("self"))
        sim.run()
        assert len(received[0]) == 50
        assert sim.now == 0.0

    def test_multisend_reaches_all_including_self(self, sim):
        net, nodes, received = build(sim, n=4)
        net.multisend(2, Ping("all"))
        sim.run()
        assert all(len(received[i]) == 1 for i in range(4))

    def test_down_destination_loses_message(self, sim):
        net, nodes, received = build(sim)
        nodes[1].crash()
        net.send(0, 1, Ping(1))
        sim.run()
        assert received[1] == []
        assert net.metrics.dropped_down == 1


class TestLossDuplication:
    def test_loss_rate_drops_messages(self, sim):
        config = NetworkConfig(loss_rate=0.5)
        net, nodes, received = build(sim, config=config, seed=2)
        for i in range(200):
            net.send(0, 1, Ping(i))
        sim.run()
        assert 40 < len(received[1]) < 160
        assert net.metrics.lost + net.metrics.delivered == 200

    def test_fair_loss_retransmission_gets_through(self, sim):
        """A message sent repeatedly is eventually received (fairness)."""
        config = NetworkConfig(loss_rate=0.8)
        net, nodes, received = build(sim, config=config, seed=4)
        for _ in range(100):
            net.send(0, 1, Ping("retry"))
        sim.run()
        assert len(received[1]) >= 1

    def test_loss_rate_one_rejected(self):
        with pytest.raises(SimulationError):
            NetworkConfig(loss_rate=1.0)

    def test_duplication(self, sim):
        config = NetworkConfig(duplicate_rate=1.0)
        net, nodes, received = build(sim, config=config, seed=5)
        net.send(0, 1, Ping("dup"))
        sim.run()
        assert len(received[1]) == 2
        assert net.metrics.duplicated == 1

    def test_bad_delay_bounds_rejected(self):
        with pytest.raises(SimulationError):
            NetworkConfig(min_delay=0.5, max_delay=0.1)

    def test_custom_delay_fn(self, sim):
        config = NetworkConfig(delay_fn=lambda rng: 7.0)
        net, nodes, received = build(sim, config=config)
        net.send(0, 1, Ping(1))
        sim.run()
        assert sim.now == 7.0


class TestPartitions:
    def test_partition_blocks_both_directions(self, sim):
        net, nodes, received = build(sim)
        net.partition(0, 1)
        net.send(0, 1, Ping(1))
        net.send(1, 0, Ping(2))
        sim.run()
        assert received[0] == [] and received[1] == []
        assert net.metrics.lost == 2

    def test_heal_restores_link(self, sim):
        net, nodes, received = build(sim)
        net.partition(0, 1)
        net.heal(0, 1)
        net.send(0, 1, Ping(1))
        sim.run()
        assert len(received[1]) == 1

    def test_heal_all(self, sim):
        net, nodes, received = build(sim, n=3)
        net.partition(0, 1)
        net.partition(0, 2)
        net.heal_all()
        assert not net.is_partitioned(0, 1)
        assert not net.is_partitioned(0, 2)

    def test_partition_is_symmetric_key(self, sim):
        net, _, _ = build(sim)
        net.partition(1, 0)
        assert net.is_partitioned(0, 1)


class TestMetrics:
    def test_bytes_accounted(self, sim):
        net, nodes, received = build(sim)
        net.send(0, 1, Ping("x" * 100))
        assert net.metrics.bytes_sent >= 100

    def test_by_type_counter(self, sim):
        net, nodes, received = build(sim)
        net.send(0, 1, Ping(1))
        net.send(0, 1, Ping(2))
        assert net.metrics.by_type["test.ping"] == 2

    def test_duplicate_registration_rejected(self, sim):
        net, nodes, _ = build(sim)
        with pytest.raises(SimulationError):
            net.register(nodes[0])
