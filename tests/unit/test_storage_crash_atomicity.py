"""Crash-atomicity and self-healing tests for file-backed stable storage.

The crash-recovery model assumes ``log`` is atomic: a crash during a
write must leave either the old value or the new one, never a torn
file.  FileStorage implements this with write-to-temp + fsync + rename +
directory fsync, and defends in depth with per-record CRC32 framing: a
record that is torn or bit-rotted anyway (non-atomic filesystem, media
fault) is detected and quarantined instead of being served.  These tests
simulate crashes at each step and corruption of each kind and check the
invariants.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.storage.faulty import FaultyStorage, InjectedCrashFault
from repro.storage.file import FileStorage
from repro.storage.memory import MemoryStorage


class TestCrashDuringWrite:
    def test_crash_before_rename_preserves_old_value(self, tmp_path,
                                                      monkeypatch):
        storage = FileStorage(str(tmp_path / "store"))
        storage.log("key", "old")

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            storage.log("key", "new")
        monkeypatch.undo()
        # A fresh incarnation over the same directory sees the old value.
        reopened = FileStorage(str(tmp_path / "store"))
        assert reopened.retrieve("key") == "old"

    def test_no_temp_file_litter_after_crash(self, tmp_path,
                                             monkeypatch):
        storage = FileStorage(str(tmp_path / "store"))
        storage.log("key", "old")

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            storage.log("key", "new")
        monkeypatch.undo()
        leftovers = [name for name in os.listdir(str(tmp_path / "store"))
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_crash_on_first_write_leaves_key_absent(self, tmp_path,
                                                    monkeypatch):
        storage = FileStorage(str(tmp_path / "store"))

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            storage.log("never", "written")
        monkeypatch.undo()
        assert FileStorage(str(tmp_path / "store")) \
            .retrieve("never") is None

    def test_successful_write_is_complete_json(self, tmp_path):
        storage = FileStorage(str(tmp_path / "store"))
        storage.log(("consensus", 0, "proposal"), {"complex": [1, (2,)]})
        # Read the raw file: the frame must verify and the payload parse
        # standalone (no torn writes).
        from repro.storage import codec
        from repro.storage.file import unframe_record
        directory = str(tmp_path / "store")
        (filename,) = os.listdir(directory)
        with open(os.path.join(directory, filename), "rb") as handle:
            text = unframe_record(handle.read())
        assert codec.decode(text) == {"complex": [1, (2,)]}

    def test_kill_halfway_through_the_write_keeps_old_value(self, tmp_path,
                                                            monkeypatch):
        # Regression: kill the write mid-payload (the fsync never runs)
        # and confirm neither the old record nor the directory is harmed.
        storage = FileStorage(str(tmp_path / "store"))
        storage.log("key", {"v": "old"})

        real_fsync = os.fsync
        write_count = {"n": 0}

        def exploding_fsync(fd):
            write_count["n"] += 1
            raise OSError("simulated power cut mid-write")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            storage.log("key", {"v": "new"})
        monkeypatch.setattr(os, "fsync", real_fsync)
        assert write_count["n"] == 1
        reopened = FileStorage(str(tmp_path / "store"))
        assert reopened.retrieve("key") == {"v": "old"}
        assert reopened.recovery_report == []


def _record_file(directory):
    names = [n for n in os.listdir(directory) if n.endswith(".json")]
    assert len(names) == 1
    return os.path.join(directory, names[0])


class TestSelfHealing:
    """Detection and quarantine of records that got corrupt anyway."""

    def test_torn_tail_is_detected_and_recovered_from(self, tmp_path):
        directory = str(tmp_path / "store")
        storage = FileStorage(directory)
        storage.log("round", {"proposal": list(range(50))})
        target = _record_file(directory)
        with open(target, "rb") as handle:
            raw = handle.read()
        with open(target, "wb") as handle:
            handle.write(raw[:len(raw) // 2])  # torn tail

        recovered = FileStorage(directory)
        assert recovered.retrieve("round") is None  # never durably logged
        assert recovered.metrics.quarantined == 1
        assert [key for key, _ in recovered.recovery_report] == ["round"]
        # The record can be re-logged and read back cleanly.
        recovered.log("round", {"proposal": [1]})
        assert recovered.retrieve("round") == {"proposal": [1]}

    def test_bit_flip_is_detected_and_recovered_from(self, tmp_path):
        directory = str(tmp_path / "store")
        storage = FileStorage(directory)
        storage.log("epoch", 41)
        target = _record_file(directory)
        with open(target, "rb") as handle:
            raw = bytearray(handle.read())
        raw[-2] ^= 0x10  # flip one payload bit
        with open(target, "wb") as handle:
            handle.write(raw)

        recovered = FileStorage(directory)
        assert recovered.retrieve("epoch") is None
        assert recovered.metrics.quarantined == 1
        assert "checksum" in recovered.recovery_report[0][1]

    def test_lazy_detection_without_reopen(self, tmp_path):
        # Corruption after the open-time scan is caught at read time.
        directory = str(tmp_path / "store")
        storage = FileStorage(directory)
        storage.log("k", "value")
        target = _record_file(directory)
        with open(target, "wb") as handle:
            handle.write(b"garbage, no frame header at all")
        assert storage.retrieve("k", default="fallback") == "fallback"
        assert storage.metrics.quarantined == 1
        assert "k" not in list(storage.keys())

    def test_quarantined_records_are_preserved_for_forensics(self, tmp_path):
        directory = str(tmp_path / "store")
        storage = FileStorage(directory)
        storage.log("k", "value")
        target = _record_file(directory)
        with open(target, "wb") as handle:
            handle.write(b"xx")
        FileStorage(directory)
        pen = os.path.join(directory, "quarantine")
        assert os.path.isdir(pen)
        assert len(os.listdir(pen)) == 1

    def test_stale_temp_files_are_swept_on_open(self, tmp_path):
        directory = str(tmp_path / "store")
        FileStorage(directory)
        with open(os.path.join(directory, "dead.tmp"), "w") as handle:
            handle.write("half a rec")
        reopened = FileStorage(directory)
        assert not any(n.endswith(".tmp") for n in os.listdir(directory))
        assert ("dead.tmp", "stale temp file") in reopened.recovery_report

    def test_healthy_records_survive_the_scan(self, tmp_path):
        directory = str(tmp_path / "store")
        storage = FileStorage(directory)
        for k in range(5):
            storage.log(("key", k), {"n": k})
        reopened = FileStorage(directory)
        assert reopened.recovery_report == []
        assert reopened.metrics.quarantined == 0
        for k in range(5):
            assert reopened.retrieve(("key", k)) == {"n": k}


class TestFaultyStorage:
    """The seeded disk-fault injector used by the chaos engine."""

    def test_armed_fail_crashes_before_the_write(self, tmp_path):
        inner = FileStorage(str(tmp_path / "store"))
        faulty = FaultyStorage(inner, random.Random(3), node_hint=2)
        faulty.log("k", "old")
        faulty.arm_crash_write("fail")
        with pytest.raises(InjectedCrashFault) as excinfo:
            faulty.log("k", "new")
        assert excinfo.value.node_hint == 2
        assert faulty.injected["write_crash"] == 1
        # Old value untouched; fault is one-shot.
        assert faulty.retrieve("k") == "old"
        faulty.log("k", "newer")
        assert faulty.retrieve("k") == "newer"

    def test_armed_torn_write_lands_corrupt_and_heals(self, tmp_path):
        directory = str(tmp_path / "store")
        inner = FileStorage(directory)
        faulty = FaultyStorage(inner, random.Random(5))
        faulty.log("k", {"payload": list(range(40))})
        faulty.arm_crash_write("torn")
        with pytest.raises(InjectedCrashFault):
            faulty.log("k", {"payload": list(range(80))})
        assert faulty.injected["torn_write"] == 1
        # The torn record is on disk; a recovering incarnation heals it.
        recovered = FileStorage(directory)
        assert recovered.retrieve("k") is None
        assert recovered.metrics.quarantined == 1

    def test_torn_degrades_to_fail_on_memory_backend(self):
        faulty = FaultyStorage(MemoryStorage(), random.Random(1))
        faulty.arm_crash_write("torn")
        with pytest.raises(InjectedCrashFault) as excinfo:
            faulty.log("k", "v")
        assert excinfo.value.mode == "write-crash"
        assert faulty.injected["write_crash"] == 1
        assert faulty.retrieve("k") is None

    def test_bit_flip_corrupts_then_reader_heals(self, tmp_path):
        directory = str(tmp_path / "store")
        inner = FileStorage(directory)
        faulty = FaultyStorage(inner, random.Random(9))
        faulty.log("k", {"stable": "data"})
        assert faulty.flip_bit("k") is True
        assert faulty.injected["bit_flip"] == 1
        # The shared metrics object records the quarantine on read.
        assert faulty.retrieve("k") is None
        assert inner.metrics.quarantined == 1
        assert faulty.metrics is inner.metrics

    def test_probabilistic_faults_are_seed_deterministic(self, tmp_path):
        def run(seed):
            inner = MemoryStorage()
            faulty = FaultyStorage(inner, random.Random(seed),
                                   fail_rate=0.3)
            outcomes = []
            for k in range(30):
                try:
                    faulty.log(("key", k), k)
                    outcomes.append("ok")
                except InjectedCrashFault:
                    outcomes.append("fault")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert "fault" in run(7) and "ok" in run(7)

    def test_disarm_stops_all_faults(self):
        faulty = FaultyStorage(MemoryStorage(), random.Random(2),
                               fail_rate=1.0)
        faulty.arm_crash_write("fail")
        faulty.disarm()
        faulty.log("k", "v")
        assert faulty.retrieve("k") == "v"
