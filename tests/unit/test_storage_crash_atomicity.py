"""Crash-atomicity tests for the file-backed stable storage.

The crash-recovery model assumes ``log`` is atomic: a crash during a
write must leave either the old value or the new one, never a torn
file.  FileStorage implements this with write-to-temp + fsync + rename;
these tests simulate crashes at each step and check the invariant.
"""

from __future__ import annotations

import os

import pytest

from repro.storage.file import FileStorage


class TestCrashDuringWrite:
    def test_crash_before_rename_preserves_old_value(self, tmp_path,
                                                      monkeypatch):
        storage = FileStorage(str(tmp_path / "store"))
        storage.log("key", "old")

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            storage.log("key", "new")
        monkeypatch.undo()
        # A fresh incarnation over the same directory sees the old value.
        reopened = FileStorage(str(tmp_path / "store"))
        assert reopened.retrieve("key") == "old"

    def test_no_temp_file_litter_after_crash(self, tmp_path,
                                             monkeypatch):
        storage = FileStorage(str(tmp_path / "store"))
        storage.log("key", "old")

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            storage.log("key", "new")
        monkeypatch.undo()
        leftovers = [name for name in os.listdir(str(tmp_path / "store"))
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_crash_on_first_write_leaves_key_absent(self, tmp_path,
                                                    monkeypatch):
        storage = FileStorage(str(tmp_path / "store"))

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            storage.log("never", "written")
        monkeypatch.undo()
        assert FileStorage(str(tmp_path / "store")) \
            .retrieve("never") is None

    def test_successful_write_is_complete_json(self, tmp_path):
        storage = FileStorage(str(tmp_path / "store"))
        storage.log(("consensus", 0, "proposal"), {"complex": [1, (2,)]})
        # Read the raw file: it must parse standalone (no torn writes).
        from repro.storage import codec
        directory = str(tmp_path / "store")
        (filename,) = os.listdir(directory)
        with open(os.path.join(directory, filename)) as handle:
            assert codec.decode(handle.read()) == {"complex": [1, (2,)]}
