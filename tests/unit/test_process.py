"""Unit tests for the crash-recovery process (node) model."""

from __future__ import annotations

import pytest

from repro.errors import ProcessDown, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Node, NodeComponent
from repro.storage.memory import MemoryStorage
from repro.transport.message import WireMessage


class Probe(NodeComponent):
    """Records lifecycle hook invocations."""

    def __init__(self):
        super().__init__()
        self.starts = 0
        self.crashes = 0

    def on_start(self):
        self.starts += 1

    def on_crash(self):
        self.crashes += 1


class Ping(WireMessage):
    type = "test.ping"
    fields = ("value",)

    def __init__(self, value):
        self.value = value


def make_node(sim, node_id=0):
    return Node(sim, node_id, MemoryStorage())


class TestLifecycle:
    def test_starts_up_and_runs_hooks(self, sim):
        node = make_node(sim)
        probe = node.add_component(Probe())
        node.start()
        assert node.up
        assert probe.starts == 1

    def test_double_start_rejected(self, sim):
        node = make_node(sim)
        node.start()
        with pytest.raises(SimulationError):
            node.start()

    def test_crash_marks_down_and_runs_hooks(self, sim):
        node = make_node(sim)
        probe = node.add_component(Probe())
        node.start()
        node.crash()
        assert not node.up
        assert probe.crashes == 1

    def test_crash_when_down_is_noop(self, sim):
        node = make_node(sim)
        probe = node.add_component(Probe())
        node.start()
        node.crash()
        node.crash()
        assert probe.crashes == 1

    def test_recover_reruns_start_hooks(self, sim):
        node = make_node(sim)
        probe = node.add_component(Probe())
        node.start()
        node.crash()
        node.recover()
        assert node.up
        assert probe.starts == 2  # initialisation + recovery share one path

    def test_recover_without_start_rejected(self, sim):
        node = make_node(sim)
        with pytest.raises(SimulationError):
            node.recover()

    def test_recover_when_up_is_noop(self, sim):
        node = make_node(sim)
        probe = node.add_component(Probe())
        node.start()
        node.recover()
        assert probe.starts == 1

    def test_component_after_start_rejected(self, sim):
        node = make_node(sim)
        node.start()
        with pytest.raises(SimulationError):
            node.add_component(Probe())

    def test_get_component_by_class(self, sim):
        node = make_node(sim)
        probe = node.add_component(Probe())
        assert node.get_component(Probe) is probe
        with pytest.raises(KeyError):
            node.get_component(Node)

    def test_crash_recover_counters(self, sim):
        node = make_node(sim)
        node.start()
        sim.run(until=1.0)
        node.crash()
        sim.run(until=2.0)
        node.recover()
        assert node.crash_count == 1
        assert node.recovery_count == 1
        assert node.crash_times == [1.0]
        assert node.recovery_times == [2.0]


class TestVolatility:
    def test_crash_kills_node_tasks(self, sim):
        node = make_node(sim)
        node.start()
        trace = []

        def body():
            while True:
                trace.append(sim.now)
                yield 1.0

        node.spawn(body(), "loop")
        sim.run(until=2.5)
        node.crash()
        sim.run(until=10.0)
        assert trace == [0.0, 1.0, 2.0]

    def test_spawn_on_down_node_rejected(self, sim):
        node = make_node(sim)
        node.start()
        node.crash()
        with pytest.raises(ProcessDown):
            node.spawn(iter(()), "t")

    def test_crash_clears_handlers(self, sim):
        node = make_node(sim)
        node.start()
        got = []
        node.register_handler("test.ping", lambda m, s: got.append(m.value))
        assert node.deliver(Ping(1), sender=9)
        node.crash()
        node.recover()
        assert not node.deliver(Ping(2), sender=9)  # handler gone
        assert got == [1]

    def test_delivery_to_down_node_lost(self, sim):
        node = make_node(sim)
        node.start()
        node.register_handler("test.ping", lambda m, s: None)
        node.crash()
        assert not node.deliver(Ping(1), sender=0)

    def test_storage_survives_crash(self, sim):
        node = make_node(sim)
        node.start()
        node.storage.log("key", "durable")
        node.crash()
        node.recover()
        assert node.storage.retrieve("key") == "durable"


class TestUptimeAccounting:
    def test_uptime_excludes_down_periods(self, sim):
        node = make_node(sim)
        node.start()
        sim.run(until=3.0)
        node.crash()
        sim.run(until=5.0)
        node.recover()
        sim.run(until=6.0)
        assert node.uptime() == pytest.approx(4.0)

    def test_recovery_duration_via_mark(self, sim):
        node = make_node(sim)
        node.start()
        node.crash()
        sim.run(until=2.0)
        node.recover()
        sim.run(until=2.5)
        # Simulate an asynchronous replay finishing later.
        node._recovering_since = 2.0
        sim.run(until=3.0)
        node.mark_recovery_complete()
        assert node.recovery_durations[-1] == pytest.approx(1.0)
