"""Unit tests for the replicated applications (state machines)."""

from __future__ import annotations

import pytest

from repro.apps.bank import Bank
from repro.apps.certifier import CertifyingDatabase, make_transaction
from repro.apps.counter import SequenceRecorder
from repro.apps.kvstore import KeyValueStore
from repro.core.ids import MessageId
from repro.core.messages import AppMessage


def msg(payload, seq=1, sender=0):
    return AppMessage(MessageId(sender, 1, seq), payload)


class TestKeyValueStore:
    def test_put_get(self):
        store = KeyValueStore()
        store.apply(msg(("put", "a", 1)))
        assert store.get("a") == 1
        assert store.get("missing", "dflt") == "dflt"

    def test_delete(self):
        store = KeyValueStore()
        store.apply(msg(("put", "a", 1), seq=1))
        store.apply(msg(("del", "a"), seq=2))
        assert store.get("a") is None
        assert len(store) == 0

    def test_append_is_order_sensitive(self):
        one, two = KeyValueStore(), KeyValueStore()
        ops = [msg(("append", "log", "x"), seq=1),
               msg(("append", "log", "y"), seq=2)]
        for op in ops:
            one.apply(op)
        for op in reversed(ops):
            two.apply(op)
        assert one.get("log") == ("x", "y")
        assert two.get("log") == ("y", "x")
        assert one.get("log") != two.get("log")

    def test_snapshot_restore_round_trip(self):
        store = KeyValueStore()
        store.apply(msg(("put", "a", 1)))
        clone = KeyValueStore()
        clone.restore(store.snapshot())
        assert clone.get("a") == 1
        assert clone.version == store.version

    def test_snapshot_is_isolated(self):
        store = KeyValueStore()
        store.apply(msg(("put", "a", 1)))
        snap = store.snapshot()
        store.apply(msg(("put", "a", 2), seq=2))
        assert snap["data"]["a"] == 1

    def test_restore_none_resets(self):
        store = KeyValueStore()
        store.apply(msg(("put", "a", 1)))
        store.restore(None)
        assert len(store) == 0 and store.version == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            KeyValueStore().apply(msg(("fly", "away")))


class TestBank:
    def test_open_deposit_transfer(self):
        bank = Bank()
        bank.apply(msg(("open", "alice", 100), seq=1))
        bank.apply(msg(("open", "bob", 0), seq=2))
        assert bank.apply(msg(("transfer", "alice", "bob", 30), seq=3))
        assert bank.balances == {"alice": 70, "bob": 30}

    def test_insufficient_funds_rejected_deterministically(self):
        bank = Bank()
        bank.apply(msg(("open", "alice", 10), seq=1))
        assert not bank.apply(msg(("transfer", "alice", "bob", 30), seq=2))
        assert bank.rejected == 1
        assert bank.balances["alice"] == 10

    def test_money_conserved(self):
        bank = Bank()
        bank.apply(msg(("open", "a", 50), seq=1))
        bank.apply(msg(("open", "b", 50), seq=2))
        bank.apply(msg(("deposit", "a", 25), seq=3))
        bank.apply(msg(("transfer", "a", "b", 60), seq=4))
        assert bank.total() == 125

    def test_reopen_is_idempotent(self):
        bank = Bank()
        bank.apply(msg(("open", "a", 50), seq=1))
        bank.apply(msg(("open", "a", 999), seq=2))
        assert bank.balances["a"] == 50

    def test_snapshot_restore(self):
        bank = Bank()
        bank.apply(msg(("open", "a", 50), seq=1))
        clone = Bank()
        clone.restore(bank.snapshot())
        assert clone.balances == {"a": 50}
        assert clone.applied == 1
        clone.restore(None)
        assert clone.balances == {}

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError):
            Bank().apply(msg(("rob", "the-bank")))


class TestSequenceRecorder:
    def test_records_in_order(self):
        recorder = SequenceRecorder()
        recorder.apply(msg("a", seq=1))
        recorder.apply(msg("b", seq=2))
        assert recorder.payloads() == ["a", "b"]
        assert recorder.ids() == [(0, 1, 1), (0, 1, 2)]

    def test_digest_is_order_sensitive(self):
        one, two = SequenceRecorder(), SequenceRecorder()
        a, b = msg("a", seq=1), msg("b", seq=2)
        one.apply(a)
        one.apply(b)
        two.apply(b)
        two.apply(a)
        assert one.digest != two.digest

    def test_snapshot_restore_preserves_digest(self):
        recorder = SequenceRecorder()
        for i in range(5):
            recorder.apply(msg(f"m{i}", seq=i + 1))
        clone = SequenceRecorder()
        clone.restore(recorder.snapshot())
        assert clone.digest == recorder.digest
        assert clone.payloads() == recorder.payloads()
        clone.apply(msg("more", seq=6))
        recorder.apply(msg("more", seq=6))
        assert clone.digest == recorder.digest


class TestCertifyingDatabase:
    def test_commit_on_fresh_reads(self):
        db = CertifyingDatabase()
        txn = make_transaction("t1", reads=[("x", 0)], writes=[("x", 5)])
        assert db.apply(msg(txn))
        assert db.values["x"] == 5
        assert db.verdicts["t1"] is True

    def test_stale_read_aborts(self):
        db = CertifyingDatabase()
        db.apply(msg(make_transaction("t1", [("x", 0)], [("x", 5)]), seq=1))
        # t2 read x at version 0 but t1 committed version 1 meanwhile.
        stale = make_transaction("t2", [("x", 0)], [("x", 9)])
        assert not db.apply(msg(stale, seq=2))
        assert db.values["x"] == 5
        assert db.abort_rate == 0.5

    def test_disjoint_transactions_both_commit(self):
        db = CertifyingDatabase()
        db.apply(msg(make_transaction("t1", [("x", 0)], [("x", 1)]), seq=1))
        db.apply(msg(make_transaction("t2", [("y", 0)], [("y", 2)]), seq=2))
        assert db.committed == 2 and db.aborted == 0

    def test_read_returns_value_and_version(self):
        db = CertifyingDatabase()
        assert db.read("x") == (None, 0)
        db.apply(msg(make_transaction("t1", [], [("x", 7)])))
        value, version = db.read("x")
        assert value == 7 and version == 1

    def test_snapshot_restore(self):
        db = CertifyingDatabase()
        db.apply(msg(make_transaction("t1", [("x", 0)], [("x", 1)])))
        clone = CertifyingDatabase()
        clone.restore(db.snapshot())
        assert clone.values == db.values
        assert clone.verdicts == db.verdicts
        clone.restore(None)
        assert clone.committed == 0

    def test_same_order_same_verdicts(self):
        """The Section 6.2 argument: identical order ⇒ identical verdicts."""
        txns = [msg(make_transaction(f"t{i}", [("x", i % 2)],
                                     [("x", i)]), seq=i + 1)
                for i in range(6)]
        one, two = CertifyingDatabase(), CertifyingDatabase()
        for txn in txns:
            one.apply(txn)
        for txn in txns:
            two.apply(txn)
        assert one.verdicts == two.verdicts
        assert one.values == two.values
