"""Unit tests for the quorum-replicated register (Section 6.3 substrate)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ProcessDown
from repro.quorum.register import QuorumRegister
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.network import Network, NetworkConfig


def build(n=3, seed=0, loss=0.0):
    sim = Simulator()
    net = Network(sim, random.Random(seed),
                  NetworkConfig(loss_rate=loss))
    nodes, registers = {}, {}
    for i in range(n):
        node = Node(sim, i, MemoryStorage())
        endpoint = node.add_component(Endpoint(net))
        registers[i] = node.add_component(QuorumRegister(endpoint))
        net.register(node)
        nodes[i] = node
    for node in nodes.values():
        node.start()
    return sim, nodes, registers


def run_op(sim, node, generator, limit=60.0):
    box = []

    def wrapper():
        result = yield from generator
        box.append(result)

    node.spawn(wrapper(), "op")
    sim.run(until=sim.now + limit)
    assert box, "operation did not complete"
    return box[0]


class TestBasicOperation:
    def test_read_initial_value(self):
        sim, nodes, registers = build()
        value, ts = run_op(sim, nodes[0], registers[0].read())
        assert value is None and ts == (0, -1)

    def test_write_then_read_from_another_node(self):
        sim, nodes, registers = build()
        run_op(sim, nodes[0], registers[0].write("hello"))
        value, ts = run_op(sim, nodes[1], registers[1].read())
        assert value == "hello"
        assert ts == (1, 0)

    def test_writes_get_increasing_timestamps(self):
        sim, nodes, registers = build()
        ts1 = run_op(sim, nodes[0], registers[0].write("a"))
        ts2 = run_op(sim, nodes[1], registers[1].write("b"))
        assert ts2 > ts1
        value, _ = run_op(sim, nodes[2], registers[2].read())
        assert value == "b"

    def test_monotonic_reads_after_read(self):
        """Atomicity via read-repair: once read, never unread."""
        sim, nodes, registers = build(n=5, seed=3)
        run_op(sim, nodes[0], registers[0].write("x"))
        first, _ = run_op(sim, nodes[1], registers[1].read())
        second, _ = run_op(sim, nodes[2], registers[2].read())
        assert first == second == "x"

    def test_operation_on_down_node_rejected(self):
        sim, nodes, registers = build()
        nodes[0].crash()
        with pytest.raises(ProcessDown):
            registers[0]._new_op()


class TestFaultTolerance:
    def test_progress_with_minority_down(self):
        sim, nodes, registers = build(n=5, seed=4)
        nodes[3].crash()
        nodes[4].crash()
        run_op(sim, nodes[0], registers[0].write("majority"))
        value, _ = run_op(sim, nodes[1], registers[1].read())
        assert value == "majority"

    def test_works_over_lossy_network(self):
        sim, nodes, registers = build(seed=5, loss=0.25)
        run_op(sim, nodes[0], registers[0].write("lossy"))
        value, _ = run_op(sim, nodes[2], registers[2].read())
        assert value == "lossy"

    def test_replica_state_survives_crash_recovery(self):
        sim, nodes, registers = build(seed=6)
        run_op(sim, nodes[0], registers[0].write("durable"))
        # Crash every replica; recover; the value must survive (it was
        # logged at a majority before the write returned).
        for node in nodes.values():
            node.crash()
        sim.run(until=sim.now + 1.0)
        for node in nodes.values():
            node.recover()
        value, ts = run_op(sim, nodes[1], registers[1].read())
        assert value == "durable"
        assert ts >= (1, 0)

    def test_recovered_replica_does_not_regress(self):
        """A replica that acked a write must still hold it (or newer)
        after recovery — the logged-before-ack rule."""
        sim, nodes, registers = build(seed=7)
        run_op(sim, nodes[0], registers[0].write("v1"))
        sim.run(until=sim.now + 2.0)  # let the store reach all replicas
        before = registers[2].local_state
        nodes[2].crash()
        nodes[2].recover()
        assert registers[2].local_state == before

    def test_interleaved_writers_converge(self):
        sim, nodes, registers = build(n=5, seed=8, loss=0.1)
        for round_no in range(3):
            for writer in range(3):
                run_op(sim, nodes[writer],
                       registers[writer].write(f"w{writer}-r{round_no}"))
        values = {run_op(sim, nodes[i], registers[i].read())[0]
                  for i in range(5)}
        assert len(values) == 1  # all readers agree on the latest write
