"""Deep tests for the property verifier: it must catch what it claims to.

The verifier is the suite's oracle, so these tests inject synthetic
violations of each Atomic Broadcast property into otherwise-healthy runs
and assert the right failure fires — guarding against a verifier that
silently passes everything.
"""

from __future__ import annotations

import pytest

from repro.core.agreed import AgreedQueue
from repro.core.ids import MessageId
from repro.core.messages import AppMessage
from repro.errors import VerificationError
from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario, run_scenario
from repro.harness.verify import (_is_contiguous_slice,
                                  _node_delivered_set, verify_run)
from repro.workloads.generators import PoissonWorkload


def healthy_cluster(seed=70):
    result = run_scenario(Scenario(
        cluster=ClusterConfig(n=3, seed=seed, protocol="basic"),
        workload=PoissonWorkload(1.5, 6.0, seed=seed),
        duration=10.0))
    return result.cluster


class TestHelpers:
    def test_contiguous_slice_positive(self):
        canonical = [MessageId(0, 1, i) for i in range(1, 6)]
        assert _is_contiguous_slice(canonical[1:4], canonical)
        assert _is_contiguous_slice([], canonical)
        assert _is_contiguous_slice(canonical, canonical)

    def test_contiguous_slice_negative(self):
        canonical = [MessageId(0, 1, i) for i in range(1, 6)]
        gap = [canonical[0], canonical[2]]
        assert not _is_contiguous_slice(gap, canonical)
        foreign = [MessageId(9, 9, 9)]
        assert not _is_contiguous_slice(foreign, canonical)
        swapped = [canonical[1], canonical[0]]
        assert not _is_contiguous_slice(swapped, canonical)

    def test_node_delivered_set_covers_checkpointed_prefix(self):
        queue = AgreedQueue()
        queue.append_batch([AppMessage(MessageId(0, 1, 1), "a"),
                            AppMessage(MessageId(1, 1, 1), "b")])
        queue.compact("state")
        queue.append_batch([AppMessage(MessageId(0, 1, 2), "c")])

        class Stub:
            agreed = queue

        ids = _node_delivered_set(Stub())
        assert ids == {MessageId(0, 1, 1), MessageId(1, 1, 1),
                       MessageId(0, 1, 2)}


class TestInjectedViolations:
    def test_clean_run_passes(self):
        verify_run(healthy_cluster())

    def test_validity_spurious_message(self):
        cluster = healthy_cluster(seed=71)
        ghost = AppMessage(MessageId(7, 7, 7), "ghost")
        # Inject into the decision archive: it never was broadcast.
        highest = max(cluster.collector.decisions)
        cluster.collector.decisions[highest + 1] = frozenset({ghost})
        for abcast in cluster.abcasts.values():
            abcast.agreed.append_batch([ghost])
        with pytest.raises(VerificationError, match="validity"):
            verify_run(cluster)

    def test_total_order_non_prefix_set(self):
        cluster = healthy_cluster(seed=72)
        # Remove a mid-sequence message from one node's queue (keep its
        # later ones): the delivered set is no longer a canonical prefix.
        abcast = cluster.abcasts[0]
        sequence = abcast.agreed.sequence()
        assert len(sequence) >= 3
        rebuilt = AgreedQueue()
        rebuilt.append_batch([sequence[0]])
        rebuilt.append_batch([sequence[2]])
        abcast.agreed = rebuilt
        with pytest.raises(VerificationError, match="total order"):
            verify_run(cluster, check_termination=False)

    def test_suffix_out_of_canonical_order(self):
        cluster = healthy_cluster(seed=73)
        abcast = cluster.abcasts[1]
        assert len(abcast.agreed.suffix) >= 2
        abcast.agreed.suffix.reverse()
        with pytest.raises(VerificationError, match="total order"):
            verify_run(cluster, check_termination=False)

    def test_duplicate_in_suffix(self):
        cluster = healthy_cluster(seed=74)
        abcast = cluster.abcasts[2]
        abcast.agreed.suffix.append(abcast.agreed.suffix[0])
        with pytest.raises(VerificationError):
            verify_run(cluster, check_termination=False)

    def test_incarnation_stream_duplicate(self):
        cluster = healthy_cluster(seed=75)
        deliveries = cluster.collector.deliveries
        node, inc, mid, when = deliveries[0]
        deliveries.append((node, inc, mid, when + 1.0))
        with pytest.raises(VerificationError, match="integrity"):
            verify_run(cluster, check_termination=False)

    def test_termination_missing_at_good_node(self):
        cluster = healthy_cluster(seed=76)
        cluster.abcasts[1].agreed = AgreedQueue()
        with pytest.raises(VerificationError, match="termination"):
            verify_run(cluster)
        # Restricting good nodes excludes the gutted one: passes again.
        verify_run(cluster, good_nodes=[0, 2])

    def test_decision_disagreement_between_nodes(self):
        cluster = healthy_cluster(seed=77)
        # Rewrite one node's logged decision for instance 0.
        consensus = cluster.consensuses[0]
        other = AppMessage(MessageId(8, 8, 8), "evil")
        cluster.nodes[0].storage.log(
            (consensus.PROPOSAL_KEY, 0, "decision"), frozenset({other}))
        consensus._decisions.pop(0, None)
        with pytest.raises(VerificationError, match="uniform agreement"):
            verify_run(cluster, check_termination=False)


class TestReportContents:
    def test_report_counts_match_run(self):
        cluster = healthy_cluster(seed=78)
        report = verify_run(cluster)
        assert len(report.canonical) == \
            len(cluster.collector.first_delivery)
        assert report.rounds == max(ab.k for ab in
                                    cluster.abcasts.values())
        assert set(report.good_nodes) == {0, 1, 2}
        assert report.undeliverable == set()
