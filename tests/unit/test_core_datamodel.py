"""Unit tests for message ids, the delivered tracker and the Agreed queue."""

from __future__ import annotations

import pytest

from repro.core.agreed import AgreedQueue, deterministic_order
from repro.core.ids import MessageId
from repro.core.messages import AppMessage
from repro.core.tracker import DeliveredTracker


def msg(sender, seq, incarnation=1, payload=None):
    return AppMessage(MessageId(sender, incarnation, seq), payload)


class TestMessageId:
    def test_ordering_is_lexicographic(self):
        assert MessageId(0, 1, 2) < MessageId(0, 1, 3)
        assert MessageId(0, 2, 1) < MessageId(1, 1, 1)
        assert MessageId(0, 1, 9) < MessageId(0, 2, 1)

    def test_label(self):
        assert MessageId(2, 1, 15).label() == "2.1.15"


class TestAppMessage:
    def test_equality_by_identity_only(self):
        a = msg(0, 1, payload="x")
        b = msg(0, 1, payload="completely different")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_inequality_across_ids(self):
        assert msg(0, 1) != msg(0, 2)
        assert msg(0, 1, incarnation=1) != msg(0, 1, incarnation=2)

    def test_sort_key_matches_id(self):
        assert msg(3, 7).sort_key() == (3, 1, 7)

    def test_deterministic_order_sorts_by_id(self):
        batch = [msg(2, 1), msg(0, 5), msg(0, 2), msg(1, 9)]
        ordered = deterministic_order(batch)
        assert [m.id for m in ordered] == sorted(m.id for m in batch)


class TestDeliveredTracker:
    def test_add_and_membership(self):
        tracker = DeliveredTracker()
        assert tracker.add(MessageId(0, 1, 1))
        assert MessageId(0, 1, 1) in tracker
        assert MessageId(0, 1, 2) not in tracker

    def test_add_duplicate_returns_false(self):
        tracker = DeliveredTracker()
        tracker.add(MessageId(0, 1, 1))
        assert not tracker.add(MessageId(0, 1, 1))
        assert len(tracker) == 1

    def test_contiguous_prefix_advances(self):
        tracker = DeliveredTracker()
        for seq in (1, 2, 3):
            tracker.add(MessageId(0, 1, seq))
        assert tracker.prefix_of(0, 1) == 3
        assert tracker.exceptions_of(0, 1) == set()
        assert tracker.is_plain_vector()

    def test_out_of_order_becomes_exception(self):
        tracker = DeliveredTracker()
        tracker.add(MessageId(0, 1, 3))
        assert tracker.prefix_of(0, 1) == 0
        assert tracker.exceptions_of(0, 1) == {3}
        assert not tracker.is_plain_vector()

    def test_gap_fill_absorbs_exceptions(self):
        tracker = DeliveredTracker()
        for seq in (3, 2, 5):
            tracker.add(MessageId(0, 1, seq))
        tracker.add(MessageId(0, 1, 1))  # fills the gap: 1,2,3 contiguous
        assert tracker.prefix_of(0, 1) == 3
        assert tracker.exceptions_of(0, 1) == {5}
        tracker.add(MessageId(0, 1, 4))
        assert tracker.prefix_of(0, 1) == 5
        assert tracker.is_plain_vector()

    def test_streams_are_independent(self):
        tracker = DeliveredTracker()
        tracker.add(MessageId(0, 1, 1))
        tracker.add(MessageId(1, 1, 7))
        assert tracker.prefix_of(0, 1) == 1
        assert tracker.prefix_of(1, 1) == 0
        assert tracker.exceptions_of(1, 1) == {7}

    def test_incarnations_are_separate_streams(self):
        tracker = DeliveredTracker()
        tracker.add(MessageId(0, 1, 1))
        tracker.add(MessageId(0, 2, 1))
        assert tracker.prefix_of(0, 1) == 1
        assert tracker.prefix_of(0, 2) == 1
        assert len(tracker) == 2

    def test_plain_round_trip(self):
        tracker = DeliveredTracker()
        for sender, seq in ((0, 1), (0, 3), (1, 1), (1, 2), (2, 9)):
            tracker.add(MessageId(sender, 1, seq))
        clone = DeliveredTracker.from_plain(tracker.to_plain())
        assert len(clone) == len(tracker)
        for sender, seq in ((0, 1), (0, 3), (1, 1), (1, 2), (2, 9)):
            assert MessageId(sender, 1, seq) in clone
        assert MessageId(0, 1, 2) not in clone

    def test_copy_is_independent(self):
        tracker = DeliveredTracker()
        tracker.add(MessageId(0, 1, 1))
        clone = tracker.copy()
        clone.add(MessageId(0, 1, 2))
        assert MessageId(0, 1, 2) not in tracker
        assert MessageId(0, 1, 2) in clone

    def test_add_all_counts_new(self):
        tracker = DeliveredTracker()
        added = tracker.add_all([MessageId(0, 1, 1), MessageId(0, 1, 1),
                                 MessageId(0, 1, 2)])
        assert added == 2


class TestAgreedQueue:
    def test_append_batch_deterministic_order(self):
        queue = AgreedQueue()
        batch = {msg(2, 1), msg(0, 1), msg(1, 1)}
        appended = queue.append_batch(batch)
        assert [m.id.sender for m in appended] == [0, 1, 2]
        assert [m.id.sender for m in queue.sequence()] == [0, 1, 2]

    def test_append_is_idempotent(self):
        """The ⊕ operation: adding twice equals adding once (Section 4.1)."""
        queue = AgreedQueue()
        queue.append_batch([msg(0, 1), msg(0, 2)])
        again = queue.append_batch([msg(0, 1), msg(0, 2)])
        assert again == []
        assert len(queue.sequence()) == 2
        assert len(queue) == 2

    def test_partial_overlap_appends_only_new(self):
        queue = AgreedQueue()
        queue.append_batch([msg(0, 1)])
        appended = queue.append_batch([msg(0, 1), msg(0, 2)])
        assert [m.id.seq for m in appended] == [2]

    def test_membership(self):
        queue = AgreedQueue()
        queue.append_batch([msg(0, 1)])
        assert msg(0, 1) in queue
        assert MessageId(0, 1, 1) in queue
        assert (0, 1, 1) in queue
        assert msg(0, 2) not in queue

    def test_compact_absorbs_prefix(self):
        queue = AgreedQueue()
        queue.append_batch([msg(0, 1), msg(0, 2)])
        absorbed = queue.compact({"state": "s1"})
        assert absorbed == 2
        assert queue.sequence() == []
        assert queue.checkpointed_count == 2
        assert len(queue) == 2
        assert msg(0, 1) in queue  # still a member, via the checkpoint

    def test_append_after_compact(self):
        queue = AgreedQueue()
        queue.append_batch([msg(0, 1)])
        queue.compact("ckpt")
        queue.append_batch([msg(0, 2)])
        assert [m.id.seq for m in queue.sequence()] == [2]
        assert len(queue) == 2
        # Re-appending a checkpointed message is still a no-op.
        assert queue.append_batch([msg(0, 1)]) == []

    def test_plain_round_trip(self):
        queue = AgreedQueue()
        queue.append_batch([msg(0, 1), msg(1, 1)])
        queue.compact({"v": 1})
        queue.append_batch([msg(0, 2)])
        clone = AgreedQueue.from_plain(queue.to_plain())
        assert clone.checkpoint_state == {"v": 1}
        assert [m.id for m in clone.sequence()] == \
            [m.id for m in queue.sequence()]
        assert len(clone) == len(queue)
        assert msg(1, 1) in clone

    def test_round_trip_without_checkpoint(self):
        queue = AgreedQueue()
        queue.append_batch([msg(0, 1)])
        clone = AgreedQueue.from_plain(queue.to_plain())
        assert clone.checkpoint_state is None
        assert clone.checkpoint_tracker is None
        assert len(clone) == 1

    def test_estimated_size_grows_with_content(self):
        queue = AgreedQueue()
        empty = queue.estimated_size()
        queue.append_batch([msg(0, 1, payload="x" * 200)])
        assert queue.estimated_size() > empty + 200
