"""Unit tests for the live runtime substrate.

The integration contract (same totally-ordered stream as the simulator,
crash/recovery over real files) lives in
tests/integration/test_runtime_conformance.py; here we pin down the
building blocks in isolation: the UDP wire codec, the asyncio-backed
implementation of the ``Runtime`` interface, and error capture.
"""

from __future__ import annotations

import pytest

from repro.core.ids import MessageId
from repro.core.messages import AppMessage, GossipMessage, StateMessage
from repro.errors import SimulationError
from repro.runtime import AnyOf
from repro.runtime.live import LiveRuntime
from repro.runtime.wire import WireCodecError, decode, encode


@pytest.fixture
def runtime():
    rt = LiveRuntime(seed=3)
    yield rt
    rt.close()


# ---------------------------------------------------------------- wire codec

def test_wire_roundtrip_gossip():
    unordered = frozenset({
        AppMessage(MessageId(0, 1, 4), "alpha"),
        AppMessage(MessageId(2, 1, 9), ("tuple", 7)),
    })
    sender, message = decode(encode(1, GossipMessage(5, unordered, ckpt_k=2)))
    assert sender == 1
    assert isinstance(message, GossipMessage)
    assert (message.k, message.ckpt_k) == (5, 2)
    assert message.unordered == unordered
    assert isinstance(message.unordered, frozenset)
    by_id = {m.id: m.payload for m in message.unordered}
    assert by_id[MessageId(2, 1, 9)] == ("tuple", 7)


def test_wire_roundtrip_state():
    plain = [3, [[[0, 1, 2], "x"], [[1, 1, 5], "y"]]]
    sender, message = decode(encode(0, StateMessage(3, plain)))
    assert sender == 0
    assert isinstance(message, StateMessage)
    assert message.agreed_plain == plain


def test_wire_rejects_garbage_and_unknown_tags():
    with pytest.raises(WireCodecError):
        decode(b"\xff\x00 not json")
    with pytest.raises(WireCodecError):
        decode(b'{"s": 0, "t": "no.such.tag", "f": {}}')


def test_wire_duplicate_tag_is_ambiguous_not_fatal():
    """Throwaway test message classes elsewhere in the suite may collide
    on a tag; that must only poison *that* tag, not the whole registry."""
    from repro.transport.message import WireMessage

    class DupA(WireMessage):
        type = "test.wire.dup"
        fields = ()

    class DupB(WireMessage):
        type = "test.wire.dup"
        fields = ()

    with pytest.raises(WireCodecError, match="ambiguous"):
        decode(b'{"s": 0, "t": "test.wire.dup", "f": {}}')
    # Protocol tags keep working despite the collision.
    sender, message = decode(encode(4, StateMessage(1, [])))
    assert (sender, message.k) == (4, 1)


# --------------------------------------------------------------- LiveRuntime

def test_timers_fire_in_delay_order(runtime):
    fired = []
    runtime.schedule(0.02, fired.append, "late")
    runtime.schedule(0.0, fired.append, "soon")
    runtime.call_soon(fired.append, "first")
    runtime.run_for(0.1)
    assert fired == ["first", "soon", "late"]
    assert runtime.events_processed >= 3


def test_negative_delay_rejected(runtime):
    with pytest.raises(SimulationError):
        runtime.schedule(-0.5, lambda: None)


def test_cancelled_timer_does_not_fire(runtime):
    fired = []
    handle = runtime.schedule(0.01, fired.append, "cancelled")
    handle.cancel()
    runtime.run_for(0.05)
    assert fired == []


def test_generator_tasks_run_on_asyncio(runtime):
    """sleep / event-wait / AnyOf / join — the whole yield protocol."""
    log = []
    gate = runtime.event("gate")

    def helper():
        yield 0.01
        log.append("helper-slept")
        yield gate
        log.append("helper-gated")

    def main():
        child = runtime.spawn(helper(), name="helper")
        winner = yield AnyOf([runtime.event("never"), child.done_event()])
        del winner
        log.append("helper-joined")

    runtime.call_soon(gate.fire)
    runtime.spawn(main(), name="main")
    runtime.run_for(0.1)
    runtime.check_errors()
    assert log == ["helper-slept", "helper-gated", "helper-joined"]


def test_rng_streams_are_seed_deterministic():
    a = LiveRuntime(seed=9)
    b = LiveRuntime(seed=9)
    try:
        draws_a = [a.rng("net.loss").random() for _ in range(5)]
        draws_b = [b.rng("net.loss").random() for _ in range(5)]
        assert draws_a == draws_b
    finally:
        a.close()
        b.close()


def test_callback_errors_are_captured_and_reraised(runtime):
    def boom():
        raise ValueError("kaput")

    runtime.call_soon(boom)
    runtime.run_for(0.02)
    assert runtime.errors
    with pytest.raises(SimulationError, match="kaput"):
        runtime.check_errors()
