"""Unit tests for the flow-control layer (admission + backoff)."""

from __future__ import annotations

import random

import pytest

from repro.errors import OverloadError
from repro.flow.controller import BackoffPolicy, FlowConfig, FlowController
from repro.harness.cluster import Cluster, ClusterConfig


class TestFlowConfig:
    def test_default_config_is_inert(self):
        config = FlowConfig()
        assert not config.enabled

    def test_rate_enables(self):
        assert FlowConfig(rate=5.0).enabled
        assert FlowConfig(max_unordered=8).enabled

    def test_burst_defaults_to_rate(self):
        assert FlowConfig(rate=8.0).burst == 8.0
        assert FlowConfig(rate=0.5).burst == 1.0  # floor: one token

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowConfig(rate=0.0)
        with pytest.raises(ValueError):
            FlowConfig(burst=4)  # burst without a rate is meaningless
        with pytest.raises(ValueError):
            FlowConfig(rate=1.0, burst=0)
        with pytest.raises(ValueError):
            FlowConfig(max_unordered=0)
        with pytest.raises(ValueError):
            FlowConfig(queue_bound=0)
        with pytest.raises(ValueError):
            FlowConfig(max_send_buffer=0)


class TestFlowController:
    def test_inert_controller_admits_everything(self):
        controller = FlowController(0, FlowConfig())
        for i in range(1000):
            assert controller.try_admit(float(i) * 0.001) is None
        assert controller.accepted == 1000
        assert controller.rejected == 0

    def test_token_bucket_depletes_and_refills(self):
        controller = FlowController(0, FlowConfig(rate=2.0, burst=2))
        assert controller.try_admit(0.0) is None
        assert controller.try_admit(0.0) is None
        assert controller.try_admit(0.0) == "rate"  # bucket empty
        # Half a second refills one token at rate 2/s.
        assert controller.try_admit(0.5) is None
        assert controller.try_admit(0.5) == "rate"

    def test_burst_caps_accumulation(self):
        controller = FlowController(0, FlowConfig(rate=10.0, burst=3))
        # A long idle period must not bank more than ``burst`` tokens.
        for _ in range(3):
            assert controller.try_admit(100.0) is None
        assert controller.try_admit(100.0) == "rate"

    def test_credit_bound_rejects_on_outstanding(self):
        controller = FlowController(0, FlowConfig(max_unordered=4))
        assert controller.try_admit(0.0, outstanding=3) is None
        assert controller.try_admit(0.0, outstanding=4) == "credit"
        assert controller.rejected_by_reason == {"credit": 1}

    def test_admission_is_a_pure_function_of_times(self):
        times = [0.0, 0.1, 0.1, 0.4, 1.0, 1.05, 2.5, 2.5, 2.5, 9.0]

        def run():
            controller = FlowController(0, FlowConfig(rate=2.0, burst=2))
            return [controller.try_admit(t) for t in times]

        assert run() == run()

    def test_snapshot_shape(self):
        controller = FlowController(0, FlowConfig(rate=1.0, burst=1,
                                                  max_unordered=1))
        controller.try_admit(0.0)
        controller.try_admit(0.0)
        controller.try_admit(0.0, outstanding=5)
        snap = controller.snapshot()
        assert snap == {"accepted": 1, "rejected": 2,
                        "rejected_by_reason": {"credit": 1, "rate": 1}}
        assert controller.offered == 3


class TestBackoffPolicy:
    def test_schedule_is_deterministic_and_bounded(self):
        policy = BackoffPolicy(base=0.05, factor=2.0, max_delay=2.0,
                               jitter=0.5, max_retries=8)
        delays = [policy.delay(a, random.Random(42)) for a in range(8)]
        again = [policy.delay(a, random.Random(42)) for a in range(8)]
        assert delays == again
        assert all(d is not None for d in delays)
        # Jitter 0.5 bounds every delay within +/-50% of the nominal.
        for attempt, delay in enumerate(delays):
            nominal = min(2.0, 0.05 * 2.0 ** attempt)
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_retry_budget_exhausts(self):
        policy = BackoffPolicy(max_retries=3)
        rng = random.Random(0)
        assert policy.delay(2, rng) is not None
        assert policy.delay(3, rng) is None
        assert policy.delay(99, rng) is None

    def test_no_jitter_is_exact_exponential(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=1.0,
                               jitter=0.0, max_retries=10)
        rng = random.Random(0)
        assert policy.delay(0, rng) == pytest.approx(0.1)
        assert policy.delay(1, rng) == pytest.approx(0.2)
        assert policy.delay(5, rng) == pytest.approx(1.0)  # capped


class TestClusterGating:
    def test_unthrottled_cluster_has_no_flow_state(self):
        cluster = Cluster(ClusterConfig(n=3, seed=0))
        cluster.start()
        for i in range(20):
            cluster.submit(i % 3, f"free-{i}")
        assert cluster.flows == {}
        assert cluster.sim is not None

    def test_throttled_cluster_rejects_beyond_burst(self):
        cluster = Cluster(ClusterConfig(
            n=3, seed=0, flow=FlowConfig(rate=2.0, burst=2)))
        cluster.start()
        accepted, rejected = 0, 0
        for i in range(10):
            try:
                cluster.submit(0, f"hot-{i}")
                accepted += 1
            except OverloadError as busy:
                assert busy.reason == "rate"
                rejected += 1
        assert accepted == 2  # the burst, all at t=0
        assert rejected == 8
        controller = cluster.flows[0]
        assert controller.accepted == accepted
        assert controller.rejected == rejected
        assert controller.offered == 10

    def test_rejection_leaves_no_protocol_trace(self):
        cluster = Cluster(ClusterConfig(
            n=3, seed=0, flow=FlowConfig(rate=1.0, burst=1)))
        cluster.start()
        cluster.submit(0, "in")
        abcast = cluster.abcasts[0]
        seq_after_accept = abcast._seq
        unordered_after_accept = len(abcast.unordered)
        with pytest.raises(OverloadError):
            cluster.submit(0, "bounced")
        # A rejected submission consumes no sequence number and leaves
        # no buffer entry: it never happened, protocol-wise.
        assert abcast._seq == seq_after_accept
        assert len(abcast.unordered) == unordered_after_accept

    def test_throttled_run_still_verifies(self):
        from repro.harness.verify import verify_overload_safety, verify_run
        cluster = Cluster(ClusterConfig(
            n=3, seed=3, flow=FlowConfig(rate=4.0, burst=4)))
        cluster.start()
        offered = rejected = 0
        for i in range(12):
            offered += 1
            try:
                cluster.submit(i % 3, f"load-{i}")
            except OverloadError:
                rejected += 1
        assert cluster.settle(limit=240.0)
        verify_run(cluster)
        verify_overload_safety(cluster, offered=offered, rejected=rejected)
