"""Failure semantics of the simulation kernel: fail fast and loud.

A protocol bug that raises inside a task or handler must surface as an
exception from ``Simulator.run`` — never be swallowed — so that every
test and experiment fails at the faulty event, with the virtual time on
the stack.
"""

from __future__ import annotations

import pytest

from repro.sim.kernel import Simulator


class TestExceptionPropagation:
    def test_callback_exception_propagates(self, sim):
        def boom():
            raise RuntimeError("callback bug")

        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError, match="callback bug"):
            sim.run()
        # The clock stopped at the faulty event.
        assert sim.now == 1.0

    def test_task_exception_propagates(self, sim):
        def body():
            yield 2.0
            raise ValueError("task bug")

        sim.spawn(body(), "buggy")
        with pytest.raises(ValueError, match="task bug"):
            sim.run()
        assert sim.now == 2.0

    def test_queue_survives_exception_for_postmortem(self, sim):
        """Events after the fault remain queued — a debugger can inspect
        (or even resume) the simulation."""
        fired = []

        def boom():
            raise RuntimeError("bug")

        sim.schedule(1.0, boom)
        sim.schedule(2.0, fired.append, "later")
        with pytest.raises(RuntimeError):
            sim.run()
        assert sim.pending() == 1
        sim.run()  # resume past the fault
        assert fired == ["later"]

    def test_exception_in_one_task_does_not_corrupt_others(self, sim):
        progress = []

        def healthy():
            while sim.now < 5.0:
                progress.append(sim.now)
                yield 1.0

        def buggy():
            yield 1.5
            raise RuntimeError("bug")

        sim.spawn(healthy(), "healthy")
        sim.spawn(buggy(), "buggy")
        with pytest.raises(RuntimeError):
            sim.run()
        sim.run()  # the healthy task continues to completion
        assert progress == [0.0, 1.0, 2.0, 3.0, 4.0]
