"""Unit tests for the v2 binary wire format.

The cross-version fuzz properties live in
tests/property/test_wire_fuzz_properties.py; here we pin the frame
layout itself (header fields, type-id table, JSON tunnel, datagram
concatenation, version negotiation) and the registry-cache fix that
makes unknown-tag lookups O(1).
"""

from __future__ import annotations

import pytest

from repro.core.ids import MessageId
from repro.core.messages import AppMessage, GossipMessage
from repro.runtime import wire
from repro.runtime.wire import (HEADER, MAGIC, TYPE_ID_TABLE, WireCodecError,
                                WireConfig, decode, decode_datagram, encode,
                                encode_frame, register_type_id, type_id_for)
from repro.transport.message import WireMessage


class Tunnelled(WireMessage):
    """A message class with no registered type-id: v2 must tunnel it."""

    type = "test.wirev2.tunnelled"
    fields = ("blob",)

    def __init__(self, blob):
        self.blob = blob


def gossip():
    unordered = frozenset({
        AppMessage(MessageId(0, 1, 4), "alpha"),
        AppMessage(MessageId(2, 1, 9), ("tuple", 7)),
    })
    return GossipMessage(5, unordered, ckpt_k=2)


class TestFrameLayout:
    def test_header_fields(self):
        frame = encode_frame(7, gossip())
        magic, version, sender, type_id, length = HEADER.unpack_from(frame)
        assert magic == MAGIC
        assert version == 2
        assert sender == 7
        assert type_id == TYPE_ID_TABLE["ab.gossip"]
        assert length == len(frame) - HEADER.size

    def test_version_negotiation_by_first_byte(self):
        """v1 datagrams start with ``{``; v2 with the magic's first byte.
        The decoder accepts both regardless of the local default."""
        v1 = encode(3, gossip(), version=1)
        v2 = encode(3, gossip(), version=2)
        assert v1[0] == ord("{")
        assert v2[0] == (MAGIC >> 8)
        for data in (v1, v2):
            sender, message = decode(data)
            assert sender == 3
            assert isinstance(message, GossipMessage)

    def test_both_versions_decode_identically(self):
        message = gossip()
        for version in (1, 2):
            sender, got = decode(encode(9, message, version=version))
            assert sender == 9
            assert (got.k, got.ckpt_k) == (message.k, message.ckpt_k)
            assert got.unordered == message.unordered

    def test_frames_concatenate_into_one_datagram(self):
        datagram = encode_frame(0, gossip()) + encode_frame(1, gossip())
        arrivals = decode_datagram(datagram)
        assert [sender for sender, _ in arrivals] == [0, 1]
        assert all(isinstance(m, GossipMessage) for _, m in arrivals)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireCodecError):
            decode_datagram(encode_frame(0, gossip()) + b"\x00\x01junk")

    def test_truncated_header_rejected(self):
        frame = encode_frame(0, gossip())
        for cut in range(1, HEADER.size):
            with pytest.raises(WireCodecError):
                decode_datagram(frame[:cut])

    def test_length_field_lie_rejected(self):
        frame = bytearray(encode_frame(0, gossip()))
        with pytest.raises(WireCodecError):
            decode_datagram(bytes(frame[:-3]))  # shorter than declared


class TestJsonTunnel:
    def test_unregistered_class_tunnels_and_round_trips(self):
        assert type_id_for(Tunnelled.type) is None
        frame = encode_frame(6, Tunnelled({"k": [1, 2]}))
        _, _, sender, type_id, _ = HEADER.unpack_from(frame)
        # Tunnel frames zero the header sender; the real sender rides in
        # the JSON payload (it may exceed the header's u32 field).
        assert (sender, type_id) == (0, 0)
        got_sender, got = decode(frame)
        assert got_sender == 6
        assert isinstance(got, Tunnelled)
        assert got.blob == {"k": [1, 2]}

    def test_tunnelled_frame_coalesces_with_typed_frames(self):
        datagram = encode_frame(1, gossip()) + \
            encode_frame(2, Tunnelled("x")) + encode_frame(3, gossip())
        kinds = [type(m).__name__ for _, m in decode_datagram(datagram)]
        assert kinds == ["GossipMessage", "Tunnelled", "GossipMessage"]


class TestTypeIdTable:
    def test_ids_unique_positive_16bit(self):
        ids = list(TYPE_ID_TABLE.values())
        assert len(ids) == len(set(ids))
        assert all(0 < i < 0x10000 for i in ids)  # 0 = JSON tunnel

    def test_register_rejects_conflicts(self):
        with pytest.raises(WireCodecError):
            register_type_id("test.wirev2.new", 1)  # id taken by ab.gossip
        with pytest.raises(WireCodecError):
            register_type_id("ab.gossip", 999)  # tag already assigned
        with pytest.raises(WireCodecError):
            register_type_id("test.wirev2.new", 0)  # reserved
        with pytest.raises(WireCodecError):
            register_type_id("test.wirev2.new", 0x10000)

    def test_reregistering_same_pair_is_noop(self):
        register_type_id("ab.gossip", TYPE_ID_TABLE["ab.gossip"])


class TestWireConfigValidation:
    def test_bad_version_rejected(self):
        with pytest.raises(WireCodecError):
            WireConfig(version=3)

    def test_frame_bound_must_fit_datagram_bound(self):
        with pytest.raises(WireCodecError):
            WireConfig(max_frame_bytes=70000, max_datagram_bytes=65507)
        with pytest.raises(WireCodecError):
            WireConfig(max_frame_bytes=0)
        with pytest.raises(WireCodecError):
            WireConfig(flush_delay=-0.5)

    def test_coalesce_defaults_follow_version(self):
        assert WireConfig(version=2).coalesce is True
        assert WireConfig(version=1).coalesce is False
        assert WireConfig(version=2, coalesce=False).coalesce is False


class TestRegistryCache:
    """Unknown-tag lookups must not re-walk the class tree (the original
    defect: every miss rebuilt the registry, so a flood of garbage tags
    cost a full subclass walk per datagram)."""

    @staticmethod
    def _count_rebuilds(monkeypatch):
        """Patch ``wire._walk`` to count registry *rebuilds* (top-level
        walks from WireMessage; the walk recurses through the module
        global, so inner frames must not count)."""
        real_walk = wire._walk
        calls = {"n": 0}

        def counting_walk(cls, into):
            if cls is WireMessage:
                calls["n"] += 1
            return real_walk(cls, into)

        monkeypatch.setattr(wire, "_walk", counting_walk)
        return calls

    def test_unknown_tag_flood_walks_at_most_once(self, monkeypatch):
        calls = self._count_rebuilds(monkeypatch)
        # One rebuild is legitimate here iff another test defined a
        # subclass since the last lookup; what matters is the flood.
        with pytest.raises(WireCodecError):
            wire._lookup("test.wirev2.no-such-tag")
        primed = calls["n"]
        assert primed <= 1
        for index in range(300):
            with pytest.raises(WireCodecError):
                wire._lookup(f"test.wirev2.miss.{index}")
        assert calls["n"] == primed

    def test_new_subclass_triggers_exactly_one_rebuild(self, monkeypatch):
        with pytest.raises(WireCodecError):
            wire._lookup("test.wirev2.prime")  # settle any pending rebuild
        calls = self._count_rebuilds(monkeypatch)

        class Fresh(WireMessage):
            type = "test.wirev2.fresh"
            fields = ()

        assert wire._lookup("test.wirev2.fresh") is Fresh
        assert calls["n"] == 1
        with pytest.raises(WireCodecError):
            wire._lookup("test.wirev2.still-missing")
        assert calls["n"] == 1
