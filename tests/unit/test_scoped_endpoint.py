"""Unit tests for scoped (group-restricted, namespaced) endpoints."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.message import WireMessage
from repro.transport.network import Network, NetworkConfig
from repro.transport.scoped import ScopedEndpoint, ScopedMessage


class Note(WireMessage):
    type = "test.note"
    fields = ("text",)

    def __init__(self, text):
        self.text = text


def build(sim, n=4):
    net = Network(sim, random.Random(0), NetworkConfig())
    nodes, endpoints = {}, {}
    for i in range(n):
        node = Node(sim, i, MemoryStorage())
        endpoints[i] = node.add_component(Endpoint(net))
        net.register(node)
        nodes[i] = node
    for node in nodes.values():
        node.start()
    return net, nodes, endpoints


class TestScoping:
    def test_peers_restricted_to_members(self, sim):
        net, nodes, endpoints = build(sim)
        scoped = ScopedEndpoint(endpoints[1], "g", [0, 1, 2])
        assert scoped.peers() == (0, 1, 2)
        assert scoped.node_id == 1
        assert scoped.node is nodes[1]

    def test_non_member_construction_rejected(self, sim):
        net, nodes, endpoints = build(sim)
        with pytest.raises(SimulationError):
            ScopedEndpoint(endpoints[3], "g", [0, 1, 2])

    def test_empty_scope_name_rejected(self, sim):
        net, nodes, endpoints = build(sim)
        with pytest.raises(SimulationError):
            ScopedEndpoint(endpoints[0], "", [0, 1])

    def test_send_outside_scope_rejected(self, sim):
        net, nodes, endpoints = build(sim)
        scoped = ScopedEndpoint(endpoints[0], "g", [0, 1, 2])
        with pytest.raises(SimulationError):
            scoped.send(3, Note("x"))

    def test_multisend_reaches_members_only(self, sim):
        net, nodes, endpoints = build(sim)
        received = {i: [] for i in range(4)}
        for i in (0, 1, 2):
            member = ScopedEndpoint(endpoints[i], "g", [0, 1, 2])
            member.register("test.note",
                            lambda m, s, i=i: received[i].append(m.text))
        # Node 3 registers the raw type AND would see envelopes only if
        # it registered the scoped type; it gets nothing either way.
        endpoints[3].register("test.note",
                              lambda m, s: received[3].append(m.text))
        sender = ScopedEndpoint(endpoints[0], "g", [0, 1, 2])
        sender.multisend(Note("hi"))
        sim.run()
        assert received[0] == received[1] == received[2] == ["hi"]
        assert received[3] == []


class TestNamespacing:
    def test_two_scopes_do_not_collide(self, sim):
        net, nodes, endpoints = build(sim)
        got = {"a": [], "b": []}
        for scope in ("a", "b"):
            member = ScopedEndpoint(endpoints[1], scope, [0, 1])
            member.register(
                "test.note",
                lambda m, s, scope=scope: got[scope].append(m.text))
        ScopedEndpoint(endpoints[0], "a", [0, 1]).multisend(Note("for-a"))
        ScopedEndpoint(endpoints[0], "b", [0, 1]).multisend(Note("for-b"))
        sim.run()
        assert got == {"a": ["for-a"], "b": ["for-b"]}

    def test_envelope_type_and_size(self, sim):
        inner = Note("payload")
        envelope = ScopedMessage("grp", inner)
        assert envelope.type == "grp::test.note"
        assert envelope.estimated_size() > inner.estimated_size()

    def test_unscoped_traffic_unaffected(self, sim):
        net, nodes, endpoints = build(sim)
        raw, scoped_got = [], []
        endpoints[1].register("test.note", lambda m, s: raw.append(m.text))
        member = ScopedEndpoint(endpoints[1], "g", [0, 1])
        member.register("test.note", lambda m, s: scoped_got.append(m.text))
        endpoints[0].send(1, Note("raw"))
        ScopedEndpoint(endpoints[0], "g", [0, 1]).send(1, Note("scoped"))
        sim.run()
        assert raw == ["raw"]
        assert scoped_got == ["scoped"]
