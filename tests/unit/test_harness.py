"""Unit tests for the harness: cluster building, scenarios, verification."""

from __future__ import annotations

import pytest

from repro.core.ids import MessageId
from repro.core.messages import AppMessage
from repro.errors import SimulationError, VerificationError
from repro.harness.cluster import Cluster, ClusterConfig, PROTOCOLS
from repro.harness.report import fmt, format_table
from repro.harness.scenario import Scenario, run_scenario
from repro.harness.verify import canonical_sequence, verify_run
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload, ScheduledWorkload


class TestClusterConfig:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(SimulationError):
            ClusterConfig(protocol="raft")

    def test_all_known_protocols_build(self):
        for protocol in PROTOCOLS:
            cluster = Cluster(ClusterConfig(n=3, protocol=protocol))
            cluster.start()
            assert len(cluster.nodes) == 3

    def test_zero_nodes_rejected(self):
        with pytest.raises(SimulationError):
            ClusterConfig(n=0)

    def test_custom_storage_factory(self, tmp_path):
        from repro.storage.file import FileStorage
        config = ClusterConfig(
            n=2, protocol="basic",
            storage_factory=lambda i: FileStorage(str(tmp_path / f"n{i}")))
        cluster = Cluster(config)
        cluster.start()
        assert (tmp_path / "n0").exists()


class TestScenario:
    def test_basic_run_verifies(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=1, protocol="basic"),
            workload=PoissonWorkload(1.0, 5.0, seed=1),
            duration=10.0))
        assert result.settled
        assert result.report is not None
        assert result.metrics.messages_delivered == \
            len(result.report.canonical)

    def test_verify_can_be_disabled(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=1, protocol="basic"),
            duration=2.0, verify=False))
        assert result.report is None

    def test_deterministic_metrics_for_same_seed(self):
        def run():
            return run_scenario(Scenario(
                cluster=ClusterConfig(n=3, seed=9, protocol="basic"),
                workload=PoissonWorkload(2.0, 5.0, seed=9),
                duration=10.0)).metrics

        first, second = run(), run()
        assert first.messages_delivered == second.messages_delivered
        assert first.total_log_ops() == second.total_log_ops()
        assert first.collector.delivery_latencies == \
            second.collector.delivery_latencies

    def test_settle_flag_false_when_unfinished(self):
        # A cluster where the only proposer majority is missing: the
        # run cannot settle.
        cluster_config = ClusterConfig(n=3, seed=2, protocol="basic")
        scenario = Scenario(
            cluster=cluster_config,
            workload=ScheduledWorkload([(4.0, 0, "m")]),
            faults=None, duration=5.0, settle_limit=8.0, verify=False)
        result = run_scenario(scenario)
        assert result.settled  # sanity: it does settle normally


class TestVerification:
    def build_clean(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=3, protocol="basic"),
            workload=PoissonWorkload(1.5, 5.0, seed=3),
            duration=10.0))
        return result.cluster

    def test_canonical_sequence_dedups_across_rounds(self):
        message = AppMessage(MessageId(0, 1, 1), "x")
        other = AppMessage(MessageId(1, 1, 1), "y")
        decisions = {0: frozenset({message}),
                     1: frozenset({message, other})}
        assert canonical_sequence(decisions) == [message.id, other.id]

    def test_verify_detects_forged_delivery(self):
        cluster = self.build_clean()
        # Forge: a node "delivers" a message nobody broadcast.
        forged = AppMessage(MessageId(9, 9, 9), "forged")
        cluster.abcasts[0].agreed.append_batch([forged])
        with pytest.raises(VerificationError):
            verify_run(cluster)

    def test_verify_detects_decision_conflict(self):
        cluster = self.build_clean()
        cluster.collector.note_decision(
            0, frozenset({AppMessage(MessageId(5, 5, 5), "z")}))
        with pytest.raises(VerificationError, match="uniform agreement"):
            verify_run(cluster)

    def test_verify_detects_reordered_stream(self):
        cluster = self.build_clean()
        deliveries = cluster.collector.deliveries
        assert len(deliveries) > 3
        # Swap two delivery records at one node to simulate a violation.
        node_records = [i for i, d in enumerate(deliveries) if d[0] == 0]
        i, j = node_records[0], node_records[1]
        deliveries[i], deliveries[j] = deliveries[j], deliveries[i]
        with pytest.raises(VerificationError, match="total order"):
            verify_run(cluster)

    def test_verify_detects_missing_delivery_at_good_node(self):
        cluster = self.build_clean()
        # Pretend node 1 delivered nothing: wipe its queue.
        from repro.core.agreed import AgreedQueue
        cluster.abcasts[1].agreed = AgreedQueue()
        with pytest.raises(VerificationError, match="termination"):
            verify_run(cluster)

    def test_termination_check_skippable(self):
        cluster = self.build_clean()
        from repro.core.agreed import AgreedQueue
        cluster.abcasts[1].agreed = AgreedQueue()
        report = verify_run(cluster, check_termination=False)
        assert report is not None


class TestReportFormatting:
    def test_fmt_variants(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"
        assert fmt(0.0) == "0"
        assert fmt(123.4) == "123"
        assert fmt(1.234) == "1.23"
        assert fmt(0.01234) == "0.0123"
        assert fmt("s") == "s"

    def test_format_table_aligns(self):
        table = format_table("T", ["col", "x"],
                             [["a", 1], ["bbbb", 22]], note="n")
        lines = table.strip().splitlines()
        assert lines[0] == "== T =="
        assert "note: n" in lines[-1]
        header, rule, row1, row2 = lines[1:5]
        assert len(row1) == len(row2) == len(header)


class TestStackSettledEdgeCases:
    def _cluster(self, protocol="basic", n=3):
        cluster = Cluster(ClusterConfig(n=n, seed=0, protocol=protocol))
        cluster.start()
        cluster.run(until=1.0)
        return cluster

    def test_sender_crash_before_dissemination_settles(self):
        # The message dies with its sender's volatile Unordered set: no
        # up node holds it, so nothing blocks settling even though the
        # broadcast count exceeds the delivery count.
        cluster = self._cluster()
        cluster.submit(2, "doomed")
        cluster.crash(2)  # before any gossip interval elapses
        assert cluster.settle(limit=30.0)
        assert len(cluster.collector.first_delivery) == 0

    def test_disseminated_backlog_blocks_until_ordered(self):
        # Control for the test above: once another node holds the
        # message, settling must wait for it to be ordered everywhere.
        cluster = self._cluster()
        cluster.submit(2, "survives")
        cluster.run(until=2.0)  # gossip spreads the Unordered set
        cluster.crash(2)
        assert cluster.settle(limit=60.0)
        assert len(cluster.collector.first_delivery) == 1

    def test_node_recovering_mid_settle_catches_up(self):
        # With two of three nodes down there is no quorum, so the
        # survivor cannot order anything and settle must keep looping.
        # A recovery scheduled mid-settle restores the majority; settle
        # may only report success once the recovered node delivered too.
        cluster = self._cluster(protocol="alternative")
        cluster.crash(1)
        cluster.crash(2)
        for i in range(3):
            cluster.submit(0, f"m{i}")
        cluster.run(until=4.0)
        assert len(cluster.collector.first_delivery) == 0  # no quorum
        cluster.sim.schedule(6.0, cluster.recover, 1)
        assert cluster.settle(limit=120.0)
        assert cluster.sim.now > 6.0  # recovery happened inside settle
        assert cluster.abcasts[1].delivered_count() == \
            len(cluster.collector.first_delivery) == 3

    def test_evicted_node_backlog_does_not_block_settling(self):
        # An evicted node never learns its backlog was ordered (members
        # stop sending it decisions), so settling grants non-members the
        # already-ordered leniency instead of waiting forever.
        cluster = self._cluster(protocol="alternative")
        cluster.submit(2, "from-the-doomed")
        cluster.submit_reconfig("evict", 2)
        assert cluster.settle(limit=60.0)
        assert cluster.current_view().members == (0, 1)
        assert cluster.nodes[2].up
        assert cluster.abcasts[2].has_backlog()  # stranded but ordered
        assert not cluster.abcasts[2].has_backlog(
            ordered=cluster.collector.first_delivery)

    def test_down_node_never_blocks_settling(self):
        cluster = self._cluster()
        cluster.submit(0, "only-for-the-living")
        cluster.crash(2)
        assert cluster.settle(limit=30.0)
        assert cluster.abcasts[0].delivered_count() == 1
