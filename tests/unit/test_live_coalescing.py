"""Unit tests for LiveNetwork's datagram coalescing and oversize guard.

The end-to-end live contract (full clusters over localhost UDP) lives in
tests/integration/; here the medium is exercised directly: a handful of
nodes with real sockets on one loop, so the datagram/frame counters can
be asserted exactly.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.runtime import Node
from repro.runtime.live import LiveRuntime
from repro.runtime.live_net import LiveNetwork, OversizeDatagramError
from repro.runtime.wire import WireConfig
from repro.storage.memory import MemoryStorage
from repro.transport.message import WireMessage


class Ping(WireMessage):
    type = "test.coalesce.ping"
    fields = ("tag",)

    def __init__(self, tag):
        self.tag = tag


def build(wire_config=None, n=2):
    runtime = LiveRuntime(seed=5)
    network = LiveNetwork(runtime, wire_config=wire_config)
    got = []
    for node_id in range(n):
        node = Node(runtime, node_id, MemoryStorage())
        network.register(node)
        node.register_handler(
            Ping.type, lambda m, s, i=node_id: got.append((i, s, m.tag)))
        node.start()
    runtime.loop.run_until_complete(network.open_all())
    return runtime, network, got


class TestCoalescing:
    def test_same_turn_sends_share_one_datagram(self):
        runtime, network, got = build()
        try:
            for index in range(5):
                network.send(0, 1, Ping(index))
            runtime.run_for(0.2)
            runtime.check_errors()
            assert sorted(tag for _, _, tag in got) == list(range(5))
            assert network.frames_sent == 5
            assert network.datagrams_sent == 1
            assert network.frames_coalesced == 4
        finally:
            network.close_all()
            runtime.close()

    def test_flush_by_size_bound(self):
        config = WireConfig(max_frame_bytes=64)
        runtime, network, got = build(config)
        try:
            for index in range(8):
                network.send(0, 1, Ping("x" * 40))
            runtime.run_for(0.2)
            runtime.check_errors()
            assert len(got) == 8
            # Each frame is ~60 bytes, so no datagram packed them all.
            assert network.datagrams_sent > 1
        finally:
            network.close_all()
            runtime.close()

    def test_coalescing_off_sends_one_datagram_per_message(self):
        config = WireConfig(version=2, coalesce=False)
        runtime, network, got = build(config)
        try:
            for index in range(4):
                network.send(0, 1, Ping(index))
            runtime.run_for(0.2)
            runtime.check_errors()
            assert len(got) == 4
            assert network.datagrams_sent == 4
            assert network.frames_coalesced == 0
        finally:
            network.close_all()
            runtime.close()

    def test_close_drops_buffered_frames(self):
        """Buffered frames are volatile sender state: a crash between
        enqueue and flush must lose them, not leak them to the wire."""
        runtime, network, got = build()
        try:
            network.send(0, 1, Ping("doomed"))
            network.close(0)  # crash before the flush callback runs
            runtime.run_for(0.2)
            runtime.check_errors()
            assert got == []
            assert network.datagrams_sent == 0
        finally:
            network.close_all()
            runtime.close()


class TestOversizeGuard:
    def test_oversize_message_raises_typed_error_and_counts(self):
        config = WireConfig(max_datagram_bytes=512, max_frame_bytes=512)
        runtime, network, got = build(config)
        try:
            lost_before = network.metrics.lost
            with pytest.raises(OversizeDatagramError) as info:
                network.send(0, 1, Ping("y" * 2000))
            assert network.oversize_drops == 1
            assert network.metrics.lost == lost_before + 1
            error = info.value
            assert isinstance(error, ReproError)
            assert error.message_type == Ping.type
            assert error.size > error.limit == 512
            # The medium stays usable after the drop.
            network.send(0, 1, Ping("small"))
            runtime.run_for(0.2)
            runtime.check_errors()
            assert got == [(1, 0, "small")]
        finally:
            network.close_all()
            runtime.close()

    def test_guard_applies_without_coalescing_too(self):
        config = WireConfig(version=1, max_datagram_bytes=512,
                            max_frame_bytes=512)
        runtime, network, _ = build(config)
        try:
            with pytest.raises(OversizeDatagramError):
                network.send(0, 1, Ping("z" * 2000))
            assert network.oversize_drops == 1
            assert network.datagrams_sent == 0
        finally:
            network.close_all()
            runtime.close()
