"""Unit tests for the alternative protocol (Figures 3–4, Section 5)."""

from __future__ import annotations

import pytest

from repro.apps.kvstore import KeyValueStore
from repro.core.alternative import AlternativeConfig
from repro.harness.cluster import Cluster, ClusterConfig
from repro.transport.network import NetworkConfig


def build(n=3, seed=0, loss=0.0, alt=None, app_factory=None, **kwargs):
    extra = {"app_factory": app_factory} if app_factory else {}
    cluster = Cluster(ClusterConfig(
        n=n, seed=seed, protocol="alternative",
        network=NetworkConfig(loss_rate=loss),
        alt=alt or AlternativeConfig(), **extra, **kwargs))
    cluster.start()
    return cluster


def sequences(cluster):
    return {i: [m.payload for m in ab.deliver_sequence()]
            for i, ab in cluster.abcasts.items()}


def pump(cluster, count, node=0, start=0.5, gap=0.25, prefix="m"):
    for j in range(count):
        cluster.sim.schedule(start + gap * j, cluster.submit, node,
                             f"{prefix}{j}")


class TestConfigValidation:
    def test_bad_delta_rejected(self):
        with pytest.raises(ValueError):
            AlternativeConfig(delta=0)

    def test_bad_checkpoint_interval_rejected(self):
        with pytest.raises(ValueError):
            AlternativeConfig(checkpoint_interval=0)

    def test_features_can_be_disabled(self):
        config = AlternativeConfig(checkpoint_interval=None, delta=None,
                                   log_unordered=False)
        assert config.checkpoint_interval is None
        assert config.delta is None


class TestCheckpointing:
    def test_checkpoints_taken_periodically(self):
        cluster = build(alt=AlternativeConfig(checkpoint_interval=1.0))
        pump(cluster, 6)
        cluster.run(until=10.0)
        assert all(ab.checkpoints_taken >= 5
                   for ab in cluster.abcasts.values())

    def test_recovery_resumes_from_checkpoint_not_round_zero(self):
        cluster = build(seed=1, alt=AlternativeConfig(
            checkpoint_interval=1.0))
        pump(cluster, 8)
        cluster.run(until=10.0)
        rounds_before = cluster.abcasts[1].k
        assert rounds_before > 0
        cluster.nodes[1].crash()
        cluster.run(until=11.0)
        cluster.nodes[1].recover()
        cluster.run(until=30.0)
        ab = cluster.abcasts[1]
        # Replay touched at most the rounds after the checkpoint.
        assert ab.replayed_rounds < rounds_before
        assert sequences(cluster)[1] == sequences(cluster)[0]

    def test_app_checkpoint_compacts_agreed_queue(self):
        cluster = build(seed=2, app_factory=KeyValueStore,
                        alt=AlternativeConfig(checkpoint_interval=1.0))
        for j in range(10):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.submit, 0,
                                 ("put", f"k{j}", j))
        cluster.run(until=12.0)
        ab = cluster.abcasts[0]
        assert ab.agreed.checkpointed_count > 0
        assert len(ab.agreed) == 10
        # The replica state survives compaction.
        assert cluster.app(0).get("k3") == 3

    def test_restored_app_state_after_recovery(self):
        cluster = build(seed=3, app_factory=KeyValueStore,
                        alt=AlternativeConfig(checkpoint_interval=1.0))
        for j in range(6):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.submit, 0,
                                 ("put", f"k{j}", j))
        cluster.run(until=10.0)
        cluster.nodes[2].crash()
        cluster.run(until=11.0)
        cluster.nodes[2].recover()
        cluster.run(until=30.0)
        for j in range(6):
            assert cluster.app(2).get(f"k{j}") == j

    def test_watermark_gc_discards_consensus_logs(self):
        cluster = build(seed=4, alt=AlternativeConfig(
            checkpoint_interval=1.0))
        pump(cluster, 10, gap=0.2)
        cluster.run(until=20.0)
        ab = cluster.abcasts[0]
        assert ab.instances_discarded > 0
        # Instance 0's proposal is gone from the log of node 0.
        assert cluster.consensuses[0].proposal_of(0) is None

    def test_gc_never_passes_slowest_peer_checkpoint(self):
        """Decisions a lagging peer may still need are retained."""
        cluster = build(seed=5, alt=AlternativeConfig(
            checkpoint_interval=1.0, delta=None))
        cluster.run(until=1.0)
        cluster.nodes[2].crash()  # node 2's checkpoint freezes at round 0
        pump(cluster, 8, start=1.5)
        cluster.run(until=10.0)
        # Nodes 0/1 checkpointed well past round 0 but must not GC:
        # node 2's last reported checkpoint round is 0.
        assert cluster.consensuses[0].decided_value(0) is not None
        cluster.nodes[2].recover()
        cluster.run(until=60.0)
        assert sequences(cluster)[2] == sequences(cluster)[0]


class TestStateTransfer:
    def test_long_outage_triggers_state_transfer(self):
        cluster = build(seed=6, alt=AlternativeConfig(
            checkpoint_interval=2.0, delta=2))
        cluster.run(until=1.0)
        cluster.nodes[2].crash()
        pump(cluster, 25, start=1.5, gap=0.15)
        cluster.run(until=8.0)
        cluster.nodes[2].recover()
        cluster.run(until=40.0)
        total_sent = sum(ab.state_transfers_sent
                         for ab in cluster.abcasts.values())
        assert total_sent > 0
        assert cluster.abcasts[2].state_transfers_adopted > 0
        assert cluster.abcasts[2].rounds_skipped > 0
        assert sequences(cluster)[2] == sequences(cluster)[0]

    def test_disabled_delta_never_sends_state(self):
        cluster = build(seed=7, alt=AlternativeConfig(
            checkpoint_interval=2.0, delta=None))
        cluster.run(until=1.0)
        cluster.nodes[2].crash()
        pump(cluster, 15, start=1.5, gap=0.15)
        cluster.run(until=8.0)
        cluster.nodes[2].recover()
        cluster.run(until=60.0)
        assert all(ab.state_transfers_sent == 0
                   for ab in cluster.abcasts.values())
        # Catch-up still happens, via consensus replay.
        assert sequences(cluster)[2] == sequences(cluster)[0]

    def test_small_lag_uses_gossip_not_state(self):
        """De-synchronisation below Δ is handled by gossip-k (line d/else)."""
        cluster = build(seed=8, alt=AlternativeConfig(
            checkpoint_interval=2.0, delta=50))
        cluster.run(until=1.0)
        cluster.nodes[2].crash()
        pump(cluster, 6, start=1.5)
        cluster.run(until=6.0)
        cluster.nodes[2].recover()
        cluster.run(until=40.0)
        assert cluster.abcasts[2].state_transfers_adopted == 0
        assert sequences(cluster)[2] == sequences(cluster)[0]

    def test_state_message_throttled_per_peer(self):
        cluster = build(seed=9, alt=AlternativeConfig(
            checkpoint_interval=2.0, delta=1, state_resend_interval=5.0))
        cluster.run(until=1.0)
        cluster.nodes[2].crash()
        pump(cluster, 20, start=1.5, gap=0.1)
        cluster.run(until=6.0)
        cluster.nodes[2].recover()
        cluster.run(until=9.0)
        sent = sum(ab.state_transfers_sent for ab in cluster.abcasts.values())
        # With a 5-unit throttle and ~3 units of catch-up window, each
        # up peer sends at most one state message.
        assert sent <= 2


class TestLoggedUnordered:
    def test_broadcast_returns_before_ordering(self):
        cluster = build(seed=10, alt=AlternativeConfig(log_unordered=True))
        returned = []

        def client():
            yield 0.5
            message = yield from cluster.abcasts[0].broadcast("early")
            returned.append(cluster.sim.now)
            assert message not in cluster.abcasts[0].agreed

        cluster.nodes[0].spawn(client(), "client")
        cluster.run(until=10.0)
        assert returned and returned[0] == pytest.approx(0.5)

    def test_unordered_messages_survive_crash(self):
        """Section 5.4: a logged-but-unordered message is not lost."""
        cluster = build(seed=11, alt=AlternativeConfig(
            log_unordered=True, checkpoint_interval=None))
        cluster.run(until=0.3)
        # Submit and crash immediately: the message never reached gossip.
        message = cluster.abcasts[0].submit("survivor")
        cluster.nodes[0].crash()
        cluster.run(until=2.0)
        cluster.nodes[0].recover()
        cluster.run(until=30.0)
        assert "survivor" in sequences(cluster)[0]
        assert sequences(cluster)[0] == sequences(cluster)[1]

    def test_without_logging_same_crash_loses_message(self):
        """Contrast case: the basic behaviour may drop it (allowed by the
        paper since A-broadcast never returned)."""
        cluster = build(seed=11, alt=AlternativeConfig(
            log_unordered=False, checkpoint_interval=None))
        cluster.run(until=0.3)
        cluster.abcasts[0].submit("doomed")
        cluster.nodes[0].crash()
        cluster.run(until=2.0)
        cluster.nodes[0].recover()
        cluster.run(until=30.0)
        assert "doomed" not in sequences(cluster)[0]

    def test_recovery_does_not_regrow_unordered_log(self):
        """Regression: restoring the Unordered set must not re-append it.

        The incremental-mode override used to log every restored message
        again, doubling the durable list per crash (found by REC003)."""
        cluster = build(seed=13, alt=AlternativeConfig(
            log_unordered=True, incremental=True,
            checkpoint_interval=None))
        cluster.run(until=0.3)
        cluster.abcasts[0].submit("survivor")
        cluster.run(until=1.0)
        storage = cluster.nodes[0].storage
        key = cluster.abcasts[0].UNORDERED_KEY
        before = len(storage.retrieve_list(key))
        assert before == 1
        cluster.nodes[0].crash()
        cluster.run(until=2.0)
        cluster.nodes[0].recover()
        cluster.run(until=3.0)
        cluster.nodes[0].crash()
        cluster.run(until=4.0)
        cluster.nodes[0].recover()
        cluster.run(until=5.0)
        assert len(storage.retrieve_list(key)) == before
        cluster.run(until=30.0)
        assert "survivor" in sequences(cluster)[0]
        assert sequences(cluster)[0] == sequences(cluster)[1]

    def test_incremental_logging_writes_less(self):
        def bytes_logged(incremental):
            cluster = build(seed=12, alt=AlternativeConfig(
                log_unordered=True, incremental=incremental,
                checkpoint_interval=None))
            pump(cluster, 20, gap=0.1)
            cluster.run(until=15.0)
            return sum(
                node.storage.metrics.bytes_by_prefix.get("ab", 0)
                for node in cluster.nodes.values())

        assert bytes_logged(True) < bytes_logged(False)

    def test_checkpoint_rewrites_unordered_log(self):
        cluster = build(seed=13, alt=AlternativeConfig(
            log_unordered=True, incremental=True, checkpoint_interval=1.0))
        pump(cluster, 10, gap=0.2)
        cluster.run(until=15.0)
        # After checkpoints, ordered messages were dropped from the log.
        stored = cluster.nodes[0].storage.retrieve_list(
            ("ab", "unordered"))
        assert stored == []
