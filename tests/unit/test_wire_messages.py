"""Unit tests for the Atomic Broadcast wire-message model."""

from __future__ import annotations

import pytest

from repro.core.agreed import AgreedQueue
from repro.core.ids import MessageId
from repro.core.messages import AppMessage, GossipMessage, StateMessage
from repro.sizing import estimate_size
from repro.storage import codec


def msg(seq, payload=None):
    return AppMessage(MessageId(0, 1, seq), payload)


class TestGossipMessage:
    def test_fields_and_type(self):
        gossip = GossipMessage(5, frozenset({msg(1)}), ckpt_k=3)
        assert gossip.type == "ab.gossip"
        assert gossip.k == 5
        assert gossip.ckpt_k == 3
        assert gossip.payload() == (5, frozenset({msg(1)}), 3)

    def test_size_scales_with_unordered_set(self):
        small = GossipMessage(0, frozenset())
        big = GossipMessage(0, frozenset(
            msg(i, payload="x" * 50) for i in range(1, 11)))
        assert big.estimated_size() > small.estimated_size() + 500

    def test_default_ckpt_k_is_zero(self):
        assert GossipMessage(1, frozenset()).ckpt_k == 0


class TestStateMessage:
    def test_carries_portable_queue(self):
        queue = AgreedQueue()
        queue.append_batch([msg(1, "a"), msg(2, "b")])
        state = StateMessage(7, queue.to_plain())
        rebuilt = AgreedQueue.from_plain(state.agreed_plain)
        assert [m.payload for m in rebuilt.sequence()] == ["a", "b"]
        assert state.k == 7

    def test_size_reflects_queue_content(self):
        empty = StateMessage(0, AgreedQueue().to_plain())
        queue = AgreedQueue()
        queue.append_batch([msg(i, "y" * 40) for i in range(1, 9)])
        full = StateMessage(0, queue.to_plain())
        assert full.estimated_size() > empty.estimated_size() + 300


class TestAppMessageCodec:
    def test_registered_with_storage_codec(self):
        original = msg(3, payload=("tuple", 1, None))
        decoded = codec.decode(codec.encode(original))
        assert decoded == original
        assert decoded.payload == original.payload
        assert isinstance(decoded.id, MessageId)

    def test_nested_in_containers(self):
        batch = frozenset({msg(1, "a"), msg(2, "b")})
        wrapped = {"round": 4, "batch": batch}
        assert codec.decode(codec.encode(wrapped)) == wrapped

    def test_estimated_size_includes_payload(self):
        light = msg(1, None)
        heavy = msg(1, "z" * 500)
        assert estimate_size(heavy) > estimate_size(light) + 500
