"""Unit tests for the baseline total-order protocols."""

from __future__ import annotations

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.transport.network import NetworkConfig


def build(protocol, n=3, seed=0, loss=0.0):
    cluster = Cluster(ClusterConfig(
        n=n, seed=seed, protocol=protocol,
        network=NetworkConfig(loss_rate=loss)))
    cluster.start()
    return cluster


def sequences(cluster):
    return {i: [m.payload for m in ab.deliver_sequence()]
            for i, ab in cluster.abcasts.items()}


def pump(cluster, count, node=0, start=0.5, gap=0.2):
    for j in range(count):
        cluster.sim.schedule(start + gap * j, cluster.submit, node, f"m{j}")


class TestChandraTouegBaseline:
    def test_total_order_failure_free(self):
        cluster = build("ct")
        for i in range(3):
            for j in range(4):
                cluster.sim.schedule(0.5 + 0.2 * j + 0.05 * i,
                                     cluster.submit, i, f"p{i}m{j}")
        cluster.run(until=20.0)
        seqs = sequences(cluster)
        assert len(seqs[0]) == 12
        assert seqs[0] == seqs[1] == seqs[2]

    def test_zero_log_operations(self):
        """The reduction claim (Section 5.6): crash-stop ⇒ no logging."""
        cluster = build("ct")
        pump(cluster, 10)
        cluster.run(until=20.0)
        assert all(node.storage.metrics.log_ops == 0
                   for node in cluster.nodes.values())

    def test_survives_minority_crash_stop(self):
        cluster = build("ct", seed=1)
        pump(cluster, 4)
        cluster.run(until=5.0)
        cluster.nodes[2].crash()  # definitive, never recovers
        pump(cluster, 4, start=5.5)
        cluster.run(until=30.0)
        seqs = sequences(cluster)
        assert seqs[0] == seqs[1]
        assert len(seqs[0]) == 8


class TestEagerBaseline:
    def test_orders_correctly(self):
        cluster = build("eager", seed=2)
        pump(cluster, 6)
        cluster.run(until=20.0)
        seqs = sequences(cluster)
        assert seqs[0] == seqs[1] == seqs[2]
        assert len(seqs[0]) == 6

    def test_logs_much_more_than_basic(self):
        def ab_log_ops(protocol):
            cluster = build(protocol, seed=3)
            pump(cluster, 10)
            cluster.run(until=20.0)
            return sum(node.storage.metrics.ops_by_prefix.get("ab", 0)
                       for node in cluster.nodes.values())

        assert ab_log_ops("eager") > 10 * ab_log_ops("basic")

    def test_fast_recovery_from_logged_state(self):
        cluster = build("eager", seed=4)
        pump(cluster, 8)
        cluster.run(until=15.0)
        cluster.nodes[1].crash()
        cluster.nodes[1].recover()
        cluster.run(until=40.0)
        assert cluster.abcasts[1].replayed_rounds == 0  # restored, not replayed
        assert sequences(cluster)[1] == sequences(cluster)[0]


class TestSequencerBaseline:
    def test_total_order_failure_free(self):
        cluster = build("sequencer", seed=5)
        for i in range(3):
            for j in range(4):
                cluster.sim.schedule(0.5 + 0.2 * j + 0.05 * i,
                                     cluster.submit, i, f"p{i}m{j}")
        cluster.run(until=20.0)
        seqs = sequences(cluster)
        assert len(seqs[0]) == 12
        assert seqs[0] == seqs[1] == seqs[2]

    def test_gap_repair_over_lossy_network(self):
        cluster = build("sequencer", seed=6, loss=0.2)
        pump(cluster, 10, node=1)
        cluster.run(until=40.0)
        seqs = sequences(cluster)
        assert seqs[0] == seqs[1] == seqs[2]
        assert len(seqs[0]) == 10

    def test_lower_latency_than_consensus(self):
        def p50(protocol):
            cluster = build(protocol, seed=7)
            pump(cluster, 10)
            cluster.run(until=30.0)
            return cluster.metrics().latency_summary()["p50"]

        assert p50("sequencer") < p50("basic")

    def test_sequencer_crash_stops_ordering(self):
        """The documented weakness: no fault tolerance."""
        cluster = build("sequencer", seed=8)
        pump(cluster, 3)
        cluster.run(until=3.0)
        cluster.nodes[0].crash()  # the sequencer
        pump(cluster, 3, node=1, start=3.5)
        cluster.run(until=20.0)
        assert len(sequences(cluster)[1]) == 3  # nothing new ordered

    def test_blocking_broadcast(self):
        cluster = build("sequencer", seed=9)
        done = []

        def client():
            yield 0.5
            yield from cluster.abcasts[1].broadcast("b")
            done.append(cluster.sim.now)

        cluster.nodes[1].spawn(client(), "client")
        cluster.run(until=10.0)
        assert done and done[0] > 0.5
