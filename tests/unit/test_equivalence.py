"""Unit tests for the Section 6.1 reduction (consensus from Atomic Broadcast)."""

from __future__ import annotations

import random

import pytest

from repro.consensus.paxos import PaxosConsensus
from repro.core.basic import BasicAtomicBroadcast
from repro.core.equivalence import ConsensusFromAtomicBroadcast
from repro.fdetect.heartbeat import HeartbeatDetector
from repro.fdetect.omega import OmegaOracle
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.network import Network, NetworkConfig


def build(n=3, seed=0, loss=0.0):
    sim = Simulator()
    net = Network(sim, random.Random(seed), NetworkConfig(loss_rate=loss))
    nodes, reductions = {}, {}
    for i in range(n):
        node = Node(sim, i, MemoryStorage())
        endpoint = node.add_component(Endpoint(net))
        detector = node.add_component(HeartbeatDetector(endpoint))
        omega = node.add_component(OmegaOracle(detector))
        consensus = node.add_component(PaxosConsensus(endpoint, omega))
        abcast = node.add_component(BasicAtomicBroadcast(endpoint, consensus))
        reductions[i] = node.add_component(
            ConsensusFromAtomicBroadcast(abcast))
        net.register(node)
        nodes[i] = node
    for node in nodes.values():
        node.start()
    return sim, nodes, reductions


class TestConsensusFromAbcast:
    def test_agreement(self):
        sim, nodes, reductions = build()
        for i in range(3):
            sim.schedule(0.5, reductions[i].propose, 0, f"v{i}")
        sim.run(until=20.0)
        values = [reductions[i].decided_value(0) for i in range(3)]
        assert values[0] is not None
        assert values.count(values[0]) == 3

    def test_validity(self):
        sim, nodes, reductions = build(seed=1)
        for i in range(3):
            sim.schedule(0.5, reductions[i].propose, 0, f"v{i}")
        sim.run(until=20.0)
        assert reductions[0].decided_value(0) in {"v0", "v1", "v2"}

    def test_multiple_instances_independent(self):
        sim, nodes, reductions = build(seed=2)
        for k in range(3):
            for i in range(3):
                sim.schedule(0.5 + 0.1 * k, reductions[i].propose,
                             k, f"k{k}v{i}")
        sim.run(until=40.0)
        for k in range(3):
            values = [reductions[i].decided_value(k) for i in range(3)]
            assert values[0] is not None and values.count(values[0]) == 3
            assert values[0].startswith(f"k{k}")

    def test_propose_is_idempotent(self):
        sim, nodes, reductions = build(seed=3)
        sim.schedule(0.5, reductions[0].propose, 0, "v")
        sim.schedule(0.6, reductions[0].propose, 0, "v")
        for i in (1, 2):
            sim.schedule(0.5, reductions[i].propose, 0, f"v{i}")
        sim.run(until=20.0)
        assert reductions[0].decided_value(0) is not None

    def test_decision_rederived_after_recovery(self):
        """No logging of its own: the decision comes back via replay."""
        sim, nodes, reductions = build(seed=4)
        for i in range(3):
            sim.schedule(0.5, reductions[i].propose, 0, f"v{i}")
        sim.run(until=20.0)
        first = reductions[2].decided_value(0)
        nodes[2].crash()
        sim.run(until=22.0)
        nodes[2].recover()
        sim.run(until=60.0)
        assert reductions[2].decided_value(0) == first

    def test_wait_decided(self):
        sim, nodes, reductions = build(seed=5)
        results = []

        def waiter():
            value = yield from reductions[1].wait_decided(0)
            results.append(value)

        nodes[1].spawn(waiter(), "w")
        for i in range(3):
            sim.schedule(1.0, reductions[i].propose, 0, f"v{i}")
        sim.run(until=20.0)
        assert len(results) == 1

    def test_non_consensus_traffic_ignored(self):
        sim, nodes, reductions = build(seed=6)
        abcast = nodes[0].get_component(BasicAtomicBroadcast)
        sim.schedule(0.5, abcast.submit, ("unrelated", "payload"))
        sim.schedule(0.6, lambda: [reductions[i].propose(0, f"v{i}")
                                   for i in range(3)])
        sim.run(until=20.0)
        assert reductions[0].decided_value(0) in {"v0", "v1", "v2"}


class TestSignalLifecycle:
    def test_decision_releases_waiter_signal(self):
        sim, nodes, reductions = build(seed=4)
        results = []

        def waiter():
            value = yield from reductions[0].wait_decided(0)
            results.append(value)

        nodes[0].spawn(waiter(), "waiter")
        for i in range(3):
            sim.schedule(0.5, reductions[i].propose, 0, "w")
        sim.run(until=30.0)
        assert results == ["w"]
        # The per-instance signal is handed to its waiters and released
        # on decision: the cache must not grow with the instance history.
        assert 0 not in reductions[0]._signals

    def test_wait_after_decision_returns_without_new_signal(self):
        sim, nodes, reductions = build(seed=5)
        for i in range(3):
            sim.schedule(0.5, reductions[i].propose, 0, "w")
        sim.run(until=30.0)
        assert reductions[0].decided_value(0) == "w"
        results = []

        def late_waiter():
            value = yield from reductions[0].wait_decided(0)
            results.append(value)

        nodes[0].spawn(late_waiter(), "late-waiter")
        sim.run(until=31.0)
        assert results == ["w"]
        assert 0 not in reductions[0]._signals
