"""Edge-case tests for the Chandra-Toueg ◇S engine and the CT baseline."""

from __future__ import annotations

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.transport.network import NetworkConfig
from tests.unit.test_consensus_ct import CTCluster


class TestRoundRotation:
    def test_rotation_past_every_coordinator(self):
        """With coordinators 0 and 1 both dead, round r=2's coordinator
        decides; rotation wrapped through two suspicion cycles."""
        cluster = CTCluster(n=5, seed=10).start()
        cluster.run(until=2.0)
        cluster.nodes[0].crash()
        cluster.nodes[1].crash()
        for i in (2, 3, 4):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        cluster.run(until=120.0)
        values = [cluster.consensuses[i].decided_value(0)
                  for i in (2, 3, 4)]
        assert values[0] is not None
        assert values.count(values[0]) == 3

    def test_late_proposer_still_learns(self):
        """A process that proposes after the decision was reached learns
        it through the eager reliable broadcast relay."""
        cluster = CTCluster(n=3, seed=11).start()
        for i in (0, 1):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        # Node 2 stays quiet; in CT every process still participates in
        # rounds (estimates), so it learns the decision regardless.
        cluster.run(until=30.0)
        assert cluster.consensuses[2].decided_value(0) is not None

    def test_timestamp_freshness_preferred(self):
        """A coordinator adopts the estimate with the highest timestamp,
        so a value locked in an earlier round survives coordinator
        changes (the locking argument of [3])."""
        cluster = CTCluster(n=3, seed=12).start()
        for i in range(3):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        cluster.run(until=30.0)
        first = cluster.consensuses[0].decided_value(0)
        # Re-running the instance at any node returns the same locked
        # value (it is cached; CT has no re-execution path needed).
        assert cluster.consensuses[1].decided_value(0) == first


class TestCTBaselineProtocol:
    def test_definitive_crash_of_two_in_five(self):
        cluster = Cluster(ClusterConfig(
            n=5, seed=13, protocol="ct",
            network=NetworkConfig(loss_rate=0.0)))
        cluster.start()
        for j in range(6):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.submit, 0,
                                 ("m", j))
        cluster.sim.schedule(2.0, cluster.crash, 3)
        cluster.sim.schedule(2.0, cluster.crash, 4)
        for j in range(6, 12):
            cluster.sim.schedule(2.5 + 0.2 * j, cluster.submit, 1,
                                 ("m", j))
        cluster.run(until=40.0)
        sequences = [
            [m.payload for m in cluster.abcasts[i].deliver_sequence()]
            for i in (0, 1, 2)]
        assert sequences[0] == sequences[1] == sequences[2]
        assert len(sequences[0]) == 12

    def test_volatile_incarnation_constant(self):
        cluster = Cluster(ClusterConfig(n=3, seed=14, protocol="ct",
                                        network=NetworkConfig()))
        cluster.start()
        message = cluster.submit(0, "m")
        assert message.id.incarnation == 1
        assert cluster.nodes[0].storage.metrics.log_ops == 0
