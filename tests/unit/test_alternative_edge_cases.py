"""Edge-case tests for the alternative protocol's interacting features.

These target the windows where two Section 5 mechanisms overlap: state
transfer racing replay, checkpoints racing state adoption, gossip-k
updates from state messages, and the watermark GC interacting with
recovering peers.
"""

from __future__ import annotations

import pytest

from repro.core.alternative import AlternativeConfig
from repro.core.messages import StateMessage
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import verify_run
from repro.transport.network import NetworkConfig


def build(alt=None, seed=0, n=3, loss=0.03):
    cluster = Cluster(ClusterConfig(
        n=n, seed=seed, protocol="alternative",
        network=NetworkConfig(loss_rate=loss),
        alt=alt or AlternativeConfig()))
    cluster.start()
    return cluster


def pump(cluster, count, node=0, start=0.5, gap=0.2):
    for j in range(count):
        cluster.sim.schedule(start + gap * j, cluster.submit, node,
                             ("m", j))


def finish(cluster, until, limit=300.0):
    cluster.run(until=until)
    assert cluster.settle(limit=limit)
    verify_run(cluster)


class TestStateTransferRaces:
    def test_state_arriving_during_replay(self):
        """A state message landing while the node is still replaying its
        own log must not corrupt the queue (it kills and re-forks the
        sequencer mid-replay)."""
        alt = AlternativeConfig(checkpoint_interval=None, delta=1,
                                state_resend_interval=0.1)
        cluster = build(alt=alt, seed=30)
        pump(cluster, 12, gap=0.15)
        cluster.run(until=4.0)
        cluster.nodes[2].crash()
        pump(cluster, 12, start=4.5, gap=0.15)
        cluster.run(until=8.0)
        # Recover: replay (no checkpoint => from round 0) races the
        # eagerly re-sent state messages.
        cluster.nodes[2].recover()
        finish(cluster, until=30.0)

    def test_duplicate_state_messages_are_idempotent(self):
        alt = AlternativeConfig(checkpoint_interval=2.0, delta=1,
                                state_resend_interval=0.05)
        cluster = build(alt=alt, seed=31)
        cluster.run(until=1.0)
        cluster.nodes[2].crash()
        pump(cluster, 20, start=1.5, gap=0.1)
        cluster.run(until=6.0)
        cluster.nodes[2].recover()
        finish(cluster, until=40.0)
        # Even with aggressive re-sends, the queue holds each message once.
        ab = cluster.abcasts[2]
        ids = [m.id for m in ab.deliver_sequence()]
        assert len(ids) == len(set(ids))

    def test_stale_state_message_only_bumps_gossip_k(self):
        """A state message for rounds we already passed must not roll
        the queue back (the else-branch of Figure 3's handler)."""
        cluster = build(seed=32)
        pump(cluster, 8)
        cluster.run(until=8.0)
        ab = cluster.abcasts[0]
        k_before = ab.k
        delivered_before = ab.delivered_count()
        # Forge a stale state message (an old, shorter queue).
        from repro.core.agreed import AgreedQueue
        stale = StateMessage(0, AgreedQueue().to_plain())
        ab._on_state(stale, sender=1)
        assert ab.k == k_before
        assert ab.delivered_count() == delivered_before

    def test_state_transfer_to_fresh_node_from_round_zero(self):
        """A node that never saw any traffic (down from the very start of
        the workload) adopts everything via state."""
        alt = AlternativeConfig(checkpoint_interval=2.0, delta=1)
        cluster = build(alt=alt, seed=33)
        cluster.run(until=0.2)
        cluster.nodes[2].crash()
        pump(cluster, 15, start=0.5, gap=0.15)
        cluster.run(until=6.0)
        cluster.nodes[2].recover()
        finish(cluster, until=40.0)
        assert cluster.abcasts[2].delivered_count() == 15


class TestCheckpointEdgeCases:
    def test_checkpoint_with_empty_history(self):
        """Checkpointing before anything was ordered is harmless."""
        alt = AlternativeConfig(checkpoint_interval=0.5)
        cluster = build(alt=alt, seed=34)
        cluster.run(until=3.0)  # several checkpoints, zero messages
        assert cluster.abcasts[0].checkpoints_taken >= 4
        pump(cluster, 5, start=3.5)
        finish(cluster, until=15.0)

    def test_explicit_checkpoint_call(self):
        alt = AlternativeConfig(checkpoint_interval=None, delta=None)
        cluster = build(alt=alt, seed=35)
        pump(cluster, 6)
        cluster.run(until=8.0)
        ab = cluster.abcasts[1]
        ab.take_checkpoint()
        assert ab.checkpoints_taken == 1
        assert ab.ckpt_k == ab.k
        cluster.nodes[1].crash()
        cluster.nodes[1].recover()
        cluster.run(until=20.0)
        assert cluster.abcasts[1].k >= ab.ckpt_k

    def test_crash_immediately_after_checkpoint(self):
        alt = AlternativeConfig(checkpoint_interval=1.0)
        cluster = build(alt=alt, seed=36)
        pump(cluster, 10)

        def crash_after_checkpoint():
            cluster.abcasts[2].take_checkpoint()
            cluster.nodes[2].crash()

        cluster.sim.schedule(4.0, crash_after_checkpoint)
        cluster.sim.schedule(6.0, cluster.recover, 2)
        finish(cluster, until=30.0)

    def test_watermark_is_min_over_peers(self):
        alt = AlternativeConfig(checkpoint_interval=1.0)
        cluster = build(alt=alt, seed=37)
        pump(cluster, 10)
        cluster.run(until=10.0)
        ab = cluster.abcasts[0]
        # Everyone is caught up and gossiping: watermark tracks the
        # slowest peer's checkpoint, which is > 0 by now.
        assert 0 < ab._gc_watermark() <= ab.ckpt_k


class TestGossipInteraction:
    def test_gossip_k_not_regressed_by_slow_peers(self):
        cluster = build(seed=38)
        pump(cluster, 6)
        cluster.run(until=8.0)
        ab = cluster.abcasts[0]
        before = ab.gossip_k
        from repro.core.messages import GossipMessage
        ab._on_gossip(GossipMessage(0, frozenset(), 0), sender=1)
        assert ab.gossip_k == before  # a behind peer cannot lower it

    def test_unordered_resubmission_is_idempotent(self):
        cluster = build(seed=39)
        cluster.run(until=0.5)
        ab = cluster.abcasts[0]
        message = cluster.submit(0, "once")
        # Gossip loops the same message back; it must not duplicate.
        from repro.core.messages import GossipMessage
        ab._on_gossip(GossipMessage(0, frozenset({message}), 0), sender=1)
        assert len(ab.unordered) == 1
        finish(cluster, until=15.0)
        # Delivered exactly once (the suffix may have been absorbed into
        # a checkpoint; the count covers both parts).
        assert ab.delivered_count() == 1
