"""Unit tests for the soft real-time runner."""

from __future__ import annotations

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.sim.kernel import Simulator
from repro.sim.realtime import RealTimeRunner
from repro.workloads.generators import ScheduledWorkload


class FakeClock:
    """Deterministic wall clock for testing the pacing logic."""

    def __init__(self):
        self.now = 100.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, duration):
        self.sleeps.append(duration)
        self.now += duration


class TestPacing:
    def test_sleeps_until_each_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 3)
        fake = FakeClock()
        runner = RealTimeRunner(sim, time_scale=2.0,
                                sleep=fake.sleep, clock=fake.clock)
        runner.run()
        assert fired == [1, 3]
        # 2 wall-seconds per virtual unit: sleeps of 2.0 then 4.0.
        assert fake.sleeps == pytest.approx([2.0, 4.0])
        assert runner.slept_total == pytest.approx(6.0)

    def test_no_sleep_when_behind_schedule(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        fake = FakeClock()

        def slow_clock():
            fake.now += 10.0  # wall time races ahead
            return fake.now

        runner = RealTimeRunner(sim, time_scale=1.0,
                                sleep=fake.sleep, clock=slow_clock)
        runner.run()
        assert fake.sleeps == []

    def test_until_boundary_respected(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        fake = FakeClock()
        runner = RealTimeRunner(sim, time_scale=1.0,
                                sleep=fake.sleep, clock=fake.clock)
        assert runner.run(until=2.0) == 2.0
        assert fired == [1]

    def test_bad_time_scale_rejected(self):
        with pytest.raises(ValueError):
            RealTimeRunner(Simulator(), time_scale=0)


class TestEquivalenceWithVirtualRun:
    def test_same_seed_same_outcome_either_way(self):
        """Pacing must not change behaviour: a real-time run (with a
        fake clock, so the test is instant) matches a virtual run."""

        def build():
            cluster = Cluster(ClusterConfig(n=3, seed=80,
                                            protocol="basic"))
            cluster.start()
            ScheduledWorkload(
                [(0.5 + 0.2 * j, j % 3, ("m", j))
                 for j in range(8)]).install(cluster)
            return cluster

        virtual = build()
        virtual.run(until=15.0)

        paced = build()
        fake = FakeClock()
        RealTimeRunner(paced.sim, time_scale=0.001, sleep=fake.sleep,
                       clock=fake.clock).run(until=15.0)

        virtual_seq = [m.id for m in
                       virtual.abcasts[0].deliver_sequence()]
        paced_seq = [m.id for m in paced.abcasts[0].deliver_sequence()]
        assert virtual_seq == paced_seq
        assert len(virtual_seq) == 8

    def test_real_sleeping_smoke(self):
        """A tiny genuinely-slept run (sub-50ms) completes."""
        sim = Simulator()
        fired = []
        for index in range(3):
            sim.schedule(0.001 * index, fired.append, index)
        RealTimeRunner(sim, time_scale=0.01).run()
        assert fired == [0, 1, 2]
