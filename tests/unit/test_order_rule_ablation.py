"""Ablation: the predetermined deterministic rule is swappable.

Section 4.2 only requires that the rule moving a decided batch to the
Agreed tail be deterministic and cluster-uniform.  These tests (a) run
the protocol under an alternative rule and show everything still holds,
and (b) deliberately *mix* rules across nodes and show the verifier
catches the resulting divergence — evidence the uniformity requirement
is real, not ceremonial.
"""

from __future__ import annotations

import pytest

from repro.core.agreed import (AgreedQueue, deterministic_order,
                               sender_round_robin_order)
from repro.core.basic import BasicAtomicBroadcast
from repro.core.ids import MessageId
from repro.core.messages import AppMessage
from repro.errors import VerificationError
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import verify_run
from repro.transport.network import NetworkConfig


def msg(sender, seq):
    return AppMessage(MessageId(sender, 1, seq), ("p", sender, seq))


class TestRuleSemantics:
    def test_rules_differ_on_mixed_batches(self):
        batch = [msg(0, 2), msg(1, 1), msg(2, 1)]
        by_id = [m.id for m in deterministic_order(batch)]
        round_robin = [m.id for m in sender_round_robin_order(batch)]
        assert by_id != round_robin
        assert by_id[0] == (0, 1, 2)          # sender-major
        assert round_robin[0] in ((1, 1, 1), (2, 1, 1))  # seq-major

    def test_queue_honours_custom_rule(self):
        queue = AgreedQueue(sender_round_robin_order)
        appended = queue.append_batch({msg(0, 2), msg(1, 1)})
        assert [m.id for m in appended] == \
            [m.id for m in sender_round_robin_order({msg(0, 2),
                                                     msg(1, 1)})]


def build(rule_for_node, seed=0):
    """A cluster whose per-node batch rule is chosen by the callback."""
    cluster = Cluster(ClusterConfig(
        n=3, seed=seed, protocol="basic",
        network=NetworkConfig(loss_rate=0.02)))
    for node_id, abcast in cluster.abcasts.items():
        abcast.order_rule = rule_for_node(node_id)
    cluster.start()
    return cluster


def pump(cluster, count=9):
    for j in range(count):
        cluster.sim.schedule(0.5 + 0.1 * j, cluster.submit, j % 3,
                             ("m", j))


class TestUniformAlternativeRule:
    def test_round_robin_rule_everywhere_verifies(self):
        cluster = build(lambda node_id: sender_round_robin_order,
                        seed=100)
        pump(cluster)
        cluster.run(until=15.0)
        assert cluster.settle(limit=120.0)
        # The verifier's canonical order assumes the default rule, so
        # compare the nodes against each other directly.
        sequences = [[m.id for m in ab.deliver_sequence()]
                     for ab in cluster.abcasts.values()]
        assert sequences[0] == sequences[1] == sequences[2]
        assert len(sequences[0]) == 9

    def test_mixed_rules_diverge_and_are_caught(self):
        """The uniformity requirement has teeth: one deviant node breaks
        Total Order, and the verifier says so."""
        cluster = build(
            lambda node_id: (sender_round_robin_order if node_id == 2
                             else deterministic_order), seed=101)
        # Simultaneous submissions from several senders force multi-
        # message batches, where the rules disagree.
        for j in range(9):
            for sender in range(3):
                cluster.sim.schedule(0.5 + 0.05 * j, cluster.submit,
                                     sender, ("m", sender, j))
        cluster.run(until=20.0)
        cluster.settle(limit=120.0)
        sequences = [[m.id for m in ab.deliver_sequence()]
                     for ab in cluster.abcasts.values()]
        assert sequences[0] == sequences[1]
        assert sequences[2] != sequences[0]  # the deviant diverged
        with pytest.raises(VerificationError):
            verify_run(cluster, check_termination=False)
