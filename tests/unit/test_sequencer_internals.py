"""Unit tests for the fixed-sequencer baseline internals."""

from __future__ import annotations

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.transport.network import NetworkConfig


def build(seed=0, loss=0.0, sequencer_id=0):
    cluster = Cluster(ClusterConfig(
        n=3, seed=seed, protocol="sequencer",
        network=NetworkConfig(loss_rate=loss),
        sequencer_id=sequencer_id))
    cluster.start()
    return cluster


class TestAssignment:
    def test_sequence_numbers_are_dense_from_one(self):
        cluster = build(seed=1)
        for j in range(5):
            cluster.sim.schedule(0.5 + 0.1 * j, cluster.submit,
                                 j % 3, ("m", j))
        cluster.run(until=10.0)
        sequencer = cluster.abcasts[0]
        assert sorted(sequencer._order_log) == [1, 2, 3, 4, 5]

    def test_duplicate_forward_keeps_original_number(self):
        cluster = build(seed=2)
        cluster.run(until=0.5)
        message = cluster.submit(1, "dup-me")
        cluster.run(until=2.0)
        sequencer = cluster.abcasts[0]
        first_assignment = dict(sequencer._assigned)
        # A retransmitted forward for an already-assigned message must
        # re-announce, not re-assign.
        from repro.baselines.sequencer import ForwardMessage
        sequencer._on_forward(ForwardMessage(message), sender=1)
        assert sequencer._assigned == first_assignment

    def test_non_sequencer_ignores_forwards(self):
        cluster = build(seed=3)
        cluster.run(until=0.5)
        message = cluster.submit(1, "m")
        from repro.baselines.sequencer import ForwardMessage
        bystander = cluster.abcasts[2]
        bystander._on_forward(ForwardMessage(message), sender=1)
        assert bystander._order_log == {}

    def test_custom_sequencer_id(self):
        cluster = build(seed=4, sequencer_id=2)
        for j in range(4):
            cluster.sim.schedule(0.5 + 0.1 * j, cluster.submit, 0,
                                 ("m", j))
        cluster.run(until=10.0)
        assert len(cluster.abcasts[2]._order_log) == 4
        assert cluster.abcasts[0]._order_log == {}
        sequences = [[m.payload for m in ab.deliver_sequence()]
                     for ab in cluster.abcasts.values()]
        assert sequences[0] == sequences[1] == sequences[2]


class TestGapRepair:
    def test_out_of_order_arrivals_held_back(self):
        cluster = build(seed=5)
        cluster.run(until=0.5)
        receiver = cluster.abcasts[1]
        from repro.baselines.sequencer import OrderMessage
        from repro.core.ids import MessageId
        from repro.core.messages import AppMessage
        m1 = AppMessage(MessageId(0, 1, 1), "first")
        m2 = AppMessage(MessageId(0, 1, 2), "second")
        receiver._on_order(OrderMessage(2, m2), sender=0)
        assert receiver.deliver_sequence() == []  # gap: held back
        receiver._on_order(OrderMessage(1, m1), sender=0)
        assert [m.payload for m in receiver.deliver_sequence()] == \
            ["first", "second"]

    def test_stale_order_announcement_ignored(self):
        cluster = build(seed=6)
        for j in range(3):
            cluster.sim.schedule(0.5 + 0.1 * j, cluster.submit, 0,
                                 ("m", j))
        cluster.run(until=5.0)
        receiver = cluster.abcasts[1]
        delivered = receiver.delivered_count()
        from repro.baselines.sequencer import OrderMessage
        stale = OrderMessage(1, receiver.deliver_sequence()[0])
        receiver._on_order(stale, sender=0)
        assert receiver.delivered_count() == delivered

    def test_heavy_loss_converges_eventually(self):
        cluster = build(seed=7, loss=0.4)
        for j in range(8):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.submit, 2,
                                 ("m", j))
        cluster.run(until=120.0)
        sequences = [[m.payload for m in ab.deliver_sequence()]
                     for ab in cluster.abcasts.values()]
        assert sequences[0] == sequences[1] == sequences[2]
        assert len(sequences[0]) == 8
