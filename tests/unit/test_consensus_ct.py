"""Unit tests for the Chandra-Toueg ◇S consensus (crash-stop substrate)."""

from __future__ import annotations

import random

import pytest

from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.fdetect.heartbeat import HeartbeatDetector
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.network import Network, NetworkConfig


class CTCluster:
    """Crash-stop cluster: CT consensus on a reliable network."""

    def __init__(self, n=3, seed=0):
        self.sim = Simulator()
        self.network = Network(self.sim, random.Random(seed),
                               NetworkConfig(loss_rate=0.0))
        self.nodes, self.consensuses, self.detectors = {}, {}, {}
        for i in range(n):
            node = Node(self.sim, i, MemoryStorage())
            endpoint = node.add_component(Endpoint(self.network))
            detector = node.add_component(HeartbeatDetector(
                endpoint, durable_epoch=False))
            consensus = node.add_component(
                ChandraTouegConsensus(endpoint, detector))
            self.network.register(node)
            self.nodes[i] = node
            self.consensuses[i] = consensus
            self.detectors[i] = detector

    def start(self):
        for node in self.nodes.values():
            node.start()
        return self

    def run(self, until):
        return self.sim.run(until=until)


class TestChandraToueg:
    def test_agreement_failure_free(self):
        cluster = CTCluster(n=3).start()
        for i in range(3):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        cluster.run(until=20.0)
        values = [cluster.consensuses[i].decided_value(0) for i in range(3)]
        assert values[0] is not None
        assert values.count(values[0]) == 3

    def test_validity(self):
        cluster = CTCluster(n=3).start()
        for i in range(3):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        cluster.run(until=20.0)
        decision = cluster.consensuses[0].decided_value(0)
        assert decision in [frozenset({f"v{i}"}) for i in range(3)]

    def test_first_coordinator_estimate_usually_wins(self):
        """Round 0's coordinator is node 0; in a failure-free run its
        estimate (= its own proposal, the freshest it sees) is decided."""
        cluster = CTCluster(n=3).start()
        for i in range(3):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        cluster.run(until=20.0)
        # Not guaranteed by the spec, but deterministic for this engine:
        # documents the rotating-coordinator behaviour.
        assert cluster.consensuses[0].decided_value(0) is not None

    def test_coordinator_crash_rotates(self):
        cluster = CTCluster(n=3, seed=2).start()
        cluster.run(until=3.0)
        cluster.nodes[0].crash()  # round-0 coordinator gone
        for i in (1, 2):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        cluster.run(until=60.0)
        v1 = cluster.consensuses[1].decided_value(0)
        v2 = cluster.consensuses[2].decided_value(0)
        assert v1 is not None and v1 == v2

    def test_no_stable_storage_writes(self):
        cluster = CTCluster(n=3).start()
        for i in range(3):
            cluster.consensuses[i].propose(0, frozenset({"v"}))
        cluster.run(until=20.0)
        assert all(node.storage.metrics.log_ops == 0
                   for node in cluster.nodes.values())

    def test_multiple_instances(self):
        cluster = CTCluster(n=3).start()
        for k in range(5):
            for i in range(3):
                cluster.consensuses[i].propose(k, frozenset({(k, i)}))
        cluster.run(until=60.0)
        for k in range(5):
            values = [cluster.consensuses[i].decided_value(k)
                      for i in range(3)]
            assert values[0] is not None and values.count(values[0]) == 3

    def test_minority_crash_tolerated(self):
        cluster = CTCluster(n=5, seed=3).start()
        cluster.run(until=1.0)
        cluster.nodes[4].crash()
        for i in range(4):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        cluster.run(until=60.0)
        values = [cluster.consensuses[i].decided_value(0) for i in range(4)]
        assert values[0] is not None and values.count(values[0]) == 4

    def test_idempotent_propose(self):
        cluster = CTCluster(n=3).start()
        cluster.consensuses[0].propose(0, frozenset({"a"}))
        cluster.consensuses[0].propose(0, frozenset({"a"}))
        for i in (1, 2):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        cluster.run(until=20.0)
        assert cluster.consensuses[0].decided_value(0) is not None


class TestInstanceGC:
    """Decided instances must not pin their round bookkeeping forever."""

    def test_decided_instance_state_garbage_collected(self):
        cluster = CTCluster(n=3).start()
        for i in range(3):
            cluster.consensuses[i].propose(0, frozenset({"v"}))
        cluster.run(until=20.0)
        for i in range(3):
            consensus = cluster.consensuses[i]
            assert consensus.decided_value(0) is not None
            # Round state (estimates/acks/nacks per round) is dropped...
            assert 0 not in consensus._instances
            # ...and the driver observed the decision and exited rather
            # than hanging on the now-orphaned round signal.
            assert 0 not in consensus._drivers

    def test_late_round_traffic_does_not_resurrect_decided_instance(self):
        from repro.consensus.chandra_toueg import (CTAck, CTEstimate,
                                                   CTNack, CTPropose)
        cluster = CTCluster(n=3).start()
        for i in range(3):
            cluster.consensuses[i].propose(0, frozenset({"v"}))
        cluster.run(until=20.0)
        consensus = cluster.consensuses[0]
        assert 0 not in consensus._instances
        # Straggler round messages for the decided instance arrive late.
        consensus._on_estimate(CTEstimate(0, 7, frozenset({"w"}), 0), 1)
        consensus._on_propose(CTPropose(0, 7, frozenset({"w"})), 1)
        consensus._on_ack(CTAck(0, 7), 1)
        consensus._on_nack(CTNack(0, 7), 2)
        assert 0 not in consensus._instances
        assert consensus.decided_value(0) == frozenset({"v"})
