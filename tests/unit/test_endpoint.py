"""Unit tests for the per-node transport endpoint."""

from __future__ import annotations

import random

import pytest

from repro.errors import ProcessDown
from repro.sim.kernel import Simulator
from repro.sim.process import Node
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import DEFAULT_QUEUE_CAPACITY, Endpoint
from repro.transport.message import WireMessage
from repro.transport.network import Network, NetworkConfig


class Note(WireMessage):
    type = "test.note"
    fields = ("text",)

    def __init__(self, text):
        self.text = text


def build(sim, n=2):
    net = Network(sim, random.Random(0), NetworkConfig())
    nodes, endpoints = {}, {}
    for i in range(n):
        node = Node(sim, i, MemoryStorage())
        endpoints[i] = node.add_component(Endpoint(net))
        net.register(node)
        nodes[i] = node
    for node in nodes.values():
        node.start()
    return net, nodes, endpoints


class TestSending:
    def test_send_reaches_handler(self, sim):
        net, nodes, endpoints = build(sim)
        got = []
        endpoints[1].register("test.note",
                              lambda m, s: got.append((s, m.text)))
        endpoints[0].send(1, Note("hi"))
        sim.run()
        assert got == [(0, "hi")]

    def test_multisend_includes_self(self, sim):
        net, nodes, endpoints = build(sim, n=3)
        got = {i: [] for i in range(3)}
        for i in range(3):
            endpoints[i].register("test.note",
                                  lambda m, s, i=i: got[i].append(m.text))
        endpoints[0].multisend(Note("x"))
        sim.run()
        assert all(got[i] == ["x"] for i in range(3))

    def test_send_from_down_node_rejected(self, sim):
        net, nodes, endpoints = build(sim)
        nodes[0].crash()
        with pytest.raises(ProcessDown):
            endpoints[0].send(1, Note("no"))
        with pytest.raises(ProcessDown):
            endpoints[0].multisend(Note("no"))

    def test_peers_lists_everyone(self, sim):
        net, nodes, endpoints = build(sim, n=4)
        assert endpoints[0].peers() == (0, 1, 2, 3)
        assert endpoints[2].node_id == 2


class TestReceiveQueue:
    def test_blocking_receive(self, sim):
        net, nodes, endpoints = build(sim)
        queue = endpoints[1].subscribe_queue("test.note")
        got = []

        def consumer():
            message, sender = yield from queue.receive()
            got.append((sender, message.text))

        nodes[1].spawn(consumer(), "consumer")
        sim.run(until=0.5)
        assert got == []  # blocked: nothing sent yet
        endpoints[0].send(1, Note("later"))
        sim.run()
        assert got == [(0, "later")]

    def test_queue_buffers_messages(self, sim):
        net, nodes, endpoints = build(sim)
        queue = endpoints[1].subscribe_queue("test.note")
        endpoints[0].send(1, Note("a"))
        endpoints[0].send(1, Note("b"))
        sim.run()
        assert len(queue) == 2

    def test_queue_capacity_drops_overflow(self, sim):
        net, nodes, endpoints = build(sim)
        queue = endpoints[1].subscribe_queue("test.note", capacity=2)
        for text in ("a", "b", "c", "d"):
            endpoints[0].send(1, Note(text))
        sim.run()
        assert len(queue) == 2
        assert queue.overflows == 2

    def test_queue_admits_again_after_drain(self, sim):
        net, nodes, endpoints = build(sim)
        queue = endpoints[1].subscribe_queue("test.note", capacity=1)
        got = []

        def consumer():
            message, _ = yield from queue.receive()
            got.append(message.text)

        endpoints[0].send(1, Note("a"))
        endpoints[0].send(1, Note("b"))
        sim.run()
        # One admitted (delivery order at the same instant is up to the
        # network), one dropped.
        assert len(queue) == 1
        assert queue.overflows == 1
        nodes[1].spawn(consumer(), "consumer")
        sim.run()
        endpoints[0].send(1, Note("after-drain"))
        sim.run()
        assert got in (["a"], ["b"])
        assert len(queue) == 1  # freed slot admits the new message
        assert queue.overflows == 1

    def test_queue_bounded_by_default_unbounded_on_request(self, sim):
        net, nodes, endpoints = build(sim)
        bounded = endpoints[1].subscribe_queue("test.note")
        unbounded = endpoints[1].subscribe_queue("test.other",
                                                 capacity=None)
        for i in range(DEFAULT_QUEUE_CAPACITY + 3):
            bounded.deposit(Note(str(i)), 0)
            unbounded.deposit(Note(str(i)), 0)
        assert len(bounded) == DEFAULT_QUEUE_CAPACITY
        assert bounded.overflows == 3
        assert len(unbounded) == DEFAULT_QUEUE_CAPACITY + 3
        assert unbounded.overflows == 0

    def test_queue_is_volatile(self, sim):
        net, nodes, endpoints = build(sim)
        queue = endpoints[1].subscribe_queue("test.note")
        endpoints[0].send(1, Note("lost"))
        sim.run()
        nodes[1].crash()
        nodes[1].recover()
        # The old queue object is detached and the registration gone.
        endpoints[0].send(1, Note("after"))
        sim.run()
        assert len(queue) == 1  # only the pre-crash message
