"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "basic"
        assert args.nodes == 3
        assert args.faults == "none"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "raft"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for protocol in ("basic", "alternative", "eager", "ct",
                         "sequencer"):
            assert protocol in out

    def test_run_basic(self, capsys):
        assert main(["run", "--seed", "1", "--duration", "5",
                     "--rate", "1"]) == 0
        out = capsys.readouterr().out
        assert "properties verified" in out
        assert "yes" in out

    def test_run_alternative_with_faults(self, capsys):
        assert main(["run", "--protocol", "alternative", "--seed", "2",
                     "--duration", "8", "--faults", "random",
                     "--log-unordered"]) == 0
        out = capsys.readouterr().out
        assert "crashes survived" in out

    def test_compare(self, capsys):
        assert main(["compare", "--seed", "3", "--duration", "5",
                     "--rate", "1"]) == 0
        out = capsys.readouterr().out
        assert "sequencer" in out and "basic" in out
