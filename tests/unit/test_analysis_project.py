"""Tests for the whole-program analysis rules and the new CLI surface.

The four interprocedural rule families (WAL003, REC001, REC002, DET006)
each get a negative fixture (flagged at an exact line) and a near-miss
positive fixture (structurally close, stays silent) under
``tests/fixtures/analysis/``.  The CLI additions — ``--diff BASE``,
``--format sarif``, all-paths error collection — are tested end to end.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess

import pytest

from repro.analysis import (analyze_paths, analyze_source, changed_lines,
                            default_registry, filter_report, format_sarif)
from repro.analysis.engine import Report
from repro.cli import main as cli_main
from repro.errors import AnalysisError

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "fixtures", "analysis")


def check_fixture(name: str, module: str):
    path = os.path.join(FIXTURES, name)
    with open(path, encoding="utf-8") as handle:
        return analyze_source(handle.read(), module=module, path=path)


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# -- WAL003: interprocedural persist-before-send ------------------------------

def test_wal003_flags_send_three_calls_deep():
    findings = check_fixture("wal003_bad.py", "repro.core.fixture")
    assert rule_ids(findings) == ["WAL003"]
    assert findings[0].line == 16  # the self._reply(sender) call site
    assert "state" in findings[0].message
    assert "_reply" in findings[0].message


def test_wal003_near_miss_helper_barrier_stays_silent():
    assert check_fixture("wal003_ok.py", "repro.core.fixture") == []


def test_wal003_out_of_scope_module_stays_silent():
    findings = check_fixture("wal003_bad.py", "repro.harness.fixture")
    assert findings == []


# -- REC001: recovery completeness --------------------------------------------

def test_rec001_flags_write_never_recovered():
    findings = check_fixture("rec001_bad.py", "repro.core.fixture")
    assert rule_ids(findings) == ["REC001"]
    assert findings[0].line == 20  # the storage.log of VIEW_KEY
    assert "'proto', 'view'" in findings[0].message


def test_rec001_near_miss_lazy_handler_read_stays_silent():
    # The read-back sits in a handler that on_start merely *registers*;
    # the recovery closure must follow the address-taken reference.
    # (The fixture's "view" registration has no matching send, so MSG002
    # fires on it; this test owns the REC family only.)
    assert [f for f in check_fixture("rec001_ok.py", "repro.core.fixture")
            if f.rule_id.startswith("REC")] == []


# -- REC002: phantom recovery reads -------------------------------------------

def test_rec002_flags_read_of_unwritten_key():
    findings = check_fixture("rec002_bad.py", "repro.core.fixture")
    assert rule_ids(findings) == ["REC002"]
    assert findings[0].line == 14  # the storage.retrieve call
    assert "'proto', 'epoch'" in findings[0].message


def test_rec002_near_miss_helper_forwarded_write_stays_silent():
    # The write goes through a key-forwarding helper; the call site
    # supplies the concrete key pattern.
    assert check_fixture("rec002_ok.py", "repro.core.fixture") == []


def test_rec_rules_inactive_without_recovery_surface():
    # No on_start in scope -> no recovery closure to check against, so
    # a lone write is not flagged (this keeps unrelated fixtures and
    # partial trees quiet).
    findings = analyze_source(
        "class Proto:\n"
        "    def save(self, view):\n"
        "        self.node.storage.log(('proto', 'view'), view)\n",
        module="repro.core.fixture", path="fixture.py")
    assert findings == []


# -- DET006: randomness/wall-clock taint --------------------------------------

def test_det006_flags_tainted_payload_in_chaos_scope():
    findings = check_fixture("det006_bad.py", "repro.chaos.fixture")
    assert rule_ids(findings) == ["DET006"]
    assert findings[0].line == 16  # the endpoint.send, not the clock read


def test_det006_near_miss_rebound_name_stays_silent():
    assert check_fixture("det006_ok.py", "repro.chaos.fixture") == []


def test_det006_flags_tainted_yield_delay():
    findings = analyze_source(
        "import random\n"
        "\n"
        "def pacer():\n"
        "    delay = random.expovariate(2.0)\n"
        "    yield delay\n",
        module="repro.chaos.fixture", path="fixture.py")
    det006 = [f for f in findings if f.rule_id == "DET006"]
    assert len(det006) == 1
    assert det006[0].line == 5


def test_det006_suppressible_with_justification():
    findings = analyze_source(
        "import time\n"
        "\n"
        "class Injector:\n"
        "    def probe(self):\n"
        "        t = time.monotonic()\n"
        "        self.endpoint.send(0, t)"
        "  # repro: noqa(DET006) -- latency probe, payload unused\n",
        module="repro.chaos.fixture", path="fixture.py")
    assert findings == []


# -- all-paths error collection (exit code 2) ---------------------------------

def test_all_invalid_paths_reported_at_once(tmp_path):
    good = tmp_path / "ok.py"
    good.write_text("x = 1\n")
    missing_one = str(tmp_path / "nope-one")
    missing_two = str(tmp_path / "nope-two")
    with pytest.raises(AnalysisError) as excinfo:
        analyze_paths([missing_one, str(good), missing_two])
    message = str(excinfo.value)
    assert missing_one in message and missing_two in message


def test_cli_reports_every_bad_path(tmp_path, capsys):
    status = cli_main(["lint", str(tmp_path / "a"), str(tmp_path / "b")])
    captured = capsys.readouterr()
    assert status == 2
    assert str(tmp_path / "a") in captured.err
    assert str(tmp_path / "b") in captured.err


# -- SARIF output -------------------------------------------------------------

def sarif_document():
    findings = analyze_source(
        "import time\nt = time.time()\n",
        module="repro.sim.fixture", path="src/repro/sim/fixture.py")
    registry = default_registry()
    return json.loads(format_sarif(Report(findings, 1), registry.rules()))


def test_sarif_validates_against_schema():
    jsonschema = pytest.importorskip("jsonschema")
    with open(os.path.join(FIXTURES, "sarif-2.1.0-subset.schema.json"),
              encoding="utf-8") as handle:
        schema = json.load(handle)
    jsonschema.validate(sarif_document(), schema)


def test_sarif_shape():
    document = sarif_document()
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    assert {"DET001", "WAL001", "WAL003", "REC001", "REC002",
            "DET006"} <= set(rule_index)
    result = run["results"][0]
    assert result["ruleId"] == "DET001"
    assert result["ruleIndex"] == rule_index["DET001"]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2
    assert region["startColumn"] == 5  # SARIF columns are 1-based


def test_cli_sarif_format(tmp_path, capsys):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    bad = pkg / "clocky.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    status = cli_main(["lint", str(bad), "--format", "sarif"])
    assert status == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"][0]["ruleId"] == "DET001"


# -- --diff BASE: changed-line filtering --------------------------------------

def _git(cwd, *args):
    subprocess.run(["git", *args], cwd=cwd, check=True,
                   capture_output=True, text=True)


@pytest.fixture()
def diff_repo(tmp_path):
    repo = tmp_path / "repo"
    pkg = repo / "repro" / "sim"
    pkg.mkdir(parents=True)
    _git(repo, "init", "-q")
    _git(repo, "config", "user.email", "test@example.invalid")
    _git(repo, "config", "user.name", "test")
    module = pkg / "pacer.py"
    module.write_text("import time\n"
                      "\n"
                      "def old():\n"
                      "    return time.time()\n")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-qm", "base")
    # The PR adds a second violation; the old one is untouched.
    module.write_text("import time\n"
                      "\n"
                      "def old():\n"
                      "    return time.time()\n"
                      "\n"
                      "def new():\n"
                      "    return time.monotonic()\n")
    return repo, module


def test_diff_filter_keeps_only_changed_line_findings(diff_repo):
    repo, module = diff_repo
    report = analyze_paths([str(module)])
    assert len(report.findings) == 2  # both violations, full analysis
    changed = changed_lines("HEAD", cwd=str(repo))
    filtered = filter_report(report, changed)
    assert len(filtered.findings) == 1
    assert filtered.findings[0].line == 7  # only the line the PR touched


def test_cli_diff_flag(diff_repo, monkeypatch, capsys):
    repo, module = diff_repo
    monkeypatch.chdir(repo)
    status = cli_main(["lint", str(module), "--diff", "HEAD"])
    out = capsys.readouterr().out
    assert status == 1
    assert "pacer.py:7:" in out
    assert "pacer.py:4:" not in out  # pre-existing finding filtered out


def test_diff_bad_ref_is_a_clean_error(diff_repo, monkeypatch, capsys):
    repo, module = diff_repo
    monkeypatch.chdir(repo)
    status = cli_main(["lint", str(module), "--diff", "no-such-ref"])
    captured = capsys.readouterr()
    assert status == 2
    assert "error:" in captured.err
    assert "Traceback" not in captured.err


def test_diff_outside_git_repo_is_a_clean_error(tmp_path, monkeypatch):
    target = tmp_path / "plain.py"
    target.write_text("x = 1\n")
    monkeypatch.chdir(tmp_path)
    with pytest.raises(AnalysisError):
        changed_lines("HEAD", cwd=str(tmp_path))


# -- regression: the WAL003 tripwire on the real tree -------------------------

def repo_src():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(here, os.pardir, os.pardir, "src", "repro")


def test_deleting_log_before_send_trips_wal003(tmp_path):
    """Deleting the write-ahead barrier in BasicAtomicBroadcast.on_start's
    call chain must flip ``repro lint src/repro`` to exit 1 with WAL003."""
    tree = tmp_path / "repro"
    shutil.copytree(repo_src(), tree)
    basic = tree / "core" / "basic.py"
    source = basic.read_text()
    barrier = ("        self.log_before_send("
               "self.INCARNATION_KEY, self.incarnation)"
               "  # repro: noqa(REC003) -- Section 4.1: the incarnation "
               "MUST advance monotonically per recovery; a crash "
               "mid-bump only skips ids, never reuses one\n")
    assert barrier in source, "tripwire call site moved; update this test"
    basic.write_text(source.replace(barrier, ""))
    report = analyze_paths([str(tree)])
    wal003 = [f for f in report.findings if f.rule_id == "WAL003"]
    assert wal003, "removing the barrier must produce a WAL003 finding"
    assert any("on_start" in f.message and "incarnation" in f.message
               for f in wal003)
    assert any(f.path.endswith(os.path.join("core", "basic.py"))
               for f in wal003)
