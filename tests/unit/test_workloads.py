"""Unit tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.transport.network import NetworkConfig
from repro.workloads.generators import (BurstyWorkload, ClosedLoopWorkload,
                                        PoissonWorkload, ScheduledWorkload,
                                        SkewedWorkload)


def build(n=3, seed=0):
    cluster = Cluster(ClusterConfig(
        n=n, seed=seed, protocol="basic", network=NetworkConfig()))
    cluster.start()
    return cluster


class TestPoisson:
    def test_generates_arrivals_for_every_node(self):
        cluster = build()
        workload = PoissonWorkload(rate_per_node=3.0, duration=10.0, seed=1)
        plan = workload.arrivals(cluster)
        senders = {node for _, node in plan}
        assert senders == {0, 1, 2}
        assert all(0.5 <= t < 10.5 for t, _ in plan)

    def test_deterministic_per_seed(self):
        cluster = build()
        one = PoissonWorkload(2.0, 10.0, seed=5).arrivals(cluster)
        two = PoissonWorkload(2.0, 10.0, seed=5).arrivals(cluster)
        assert one == two
        assert one != PoissonWorkload(2.0, 10.0, seed=6).arrivals(cluster)

    def test_install_submits_and_counts(self):
        cluster = build(seed=2)
        workload = PoissonWorkload(rate_per_node=2.0, duration=5.0, seed=2)
        planned = workload.install(cluster)
        cluster.run(until=6.0)
        assert workload.submitted == planned
        assert len(cluster.collector.broadcast_times) == planned

    def test_submissions_to_down_nodes_skipped(self):
        cluster = build(seed=3)
        workload = PoissonWorkload(rate_per_node=5.0, duration=5.0, seed=3)
        planned = workload.install(cluster)
        cluster.nodes[1].crash()
        cluster.run(until=6.0)
        assert workload.submitted < planned


class TestBursty:
    def test_burst_shape(self):
        cluster = build()
        workload = BurstyWorkload(burst_size=5, burst_spacing=2.0,
                                  bursts=3, seed=1)
        plan = workload.arrivals(cluster)
        assert len(plan) == 15
        # Each burst comes from a single sender.
        by_burst = [plan[i:i + 5] for i in range(0, 15, 5)]
        for burst in by_burst:
            assert len({node for _, node in burst}) == 1


class TestSkewed:
    def test_low_ids_send_more(self):
        cluster = build(n=3)
        workload = SkewedWorkload(total_messages=600, duration=10.0,
                                  skew=1.5, seed=2)
        plan = workload.arrivals(cluster)
        counts = {i: 0 for i in range(3)}
        for _, node in plan:
            counts[node] += 1
        assert counts[0] > counts[1] > counts[2]
        assert sum(counts.values()) == 600


class TestScheduled:
    def test_explicit_plan_executes(self):
        cluster = build(seed=4)
        workload = ScheduledWorkload([(0.5, 0, "a"), (0.7, 1, "b")])
        assert workload.install(cluster) == 2
        cluster.run(until=10.0)
        payloads = {p for p in
                    cluster.collector.broadcast_payloads.values()}
        assert payloads == {"a", "b"}


class TestClosedLoop:
    def test_sustains_window_and_finishes(self):
        cluster = build(seed=5)
        workload = ClosedLoopWorkload(window=2, messages_per_client=3)
        workload.install(cluster)
        cluster.run(until=60.0)
        # 3 nodes x 2 clients x 3 messages
        assert workload.submitted == 18
        assert len(cluster.collector.first_delivery) == 18
