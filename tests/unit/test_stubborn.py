"""Unit tests for the stubborn (retransmitting) channel layer."""

from __future__ import annotations

import random

from repro.harness.cluster import Cluster, ClusterConfig
from repro.runtime import Node, NodeComponent
from repro.runtime import wire
from repro.sim.kernel import Simulator
from repro.storage.memory import MemoryStorage
from repro.transport.message import WireMessage
from repro.transport.network import NetworkConfig
from repro.transport.stubborn import (StubbornChannel, StubbornConfig,
                                      StubbornData)


class Note(WireMessage):
    type = "test.stub.note"
    fields = ("text",)

    def __init__(self, text):
        self.text = text


class Beat(WireMessage):
    type = "fd.alive"  # same tag as the real heartbeat: must bypass
    fields = ("epoch",)

    def __init__(self, epoch):
        self.epoch = epoch


class LossyMedium:
    """A fair-loss test double: drops the first ``drop_first`` payloads
    of each message type, then delivers everything (acks always pass)."""

    def __init__(self, sim, drop_first=0):
        self.sim = sim
        self.drop_first = drop_first
        self.dropped = {}
        self.sent_types = []
        self.blackhole = False
        self._nodes = {}

    def register(self, node):
        self._nodes[node.node_id] = node

    def node_ids(self):
        return tuple(sorted(self._nodes))

    def send(self, src, dst, message):
        self.sent_types.append(message.type)
        if self.blackhole:
            return
        if message.type == StubbornData.type:
            seen = self.dropped.get(message.type, 0)
            if seen < self.drop_first:
                self.dropped[message.type] = seen + 1
                return
        node = self._nodes.get(dst)
        if node is not None:
            self.sim.call_soon(node.deliver, message, src)

    def multisend(self, src, message):
        for dst in self.node_ids():
            self.send(src, dst, message)


class Suspicion(NodeComponent):
    """Stub failure detector exposing the suspension hook."""

    name = "suspicion-stub"

    def __init__(self):
        super().__init__()
        self.suspected = set()

    def is_suspected(self, peer):
        return peer in self.suspected


def build_pair(sim, drop_first=0, config=None, with_suspicion=False):
    inner = LossyMedium(sim, drop_first=drop_first)
    channel = StubbornChannel(sim, inner, config or StubbornConfig(),
                              rng=random.Random(7))
    nodes, got, suspicions = {}, [], {}
    for i in (0, 1):
        node = Node(sim, i, MemoryStorage())
        if with_suspicion:
            suspicions[i] = node.add_component(Suspicion())
        channel.register(node)
        node.register_handler(Note.type,
                              lambda m, s, i=i: got.append((i, s, m.text)))
        nodes[i] = node
    for node in nodes.values():
        node.start()
    return inner, channel, nodes, got, suspicions


class TestEnvelope:
    def test_wrap_unwrap_roundtrips_over_the_wire(self):
        envelope = StubbornData.wrap(4, Note("payload"))
        raw = wire.encode(0, envelope)
        sender, decoded = wire.decode(raw)
        assert sender == 0
        assert decoded.type == StubbornData.type
        assert decoded.seq == 4
        inner = decoded.unwrap()
        assert isinstance(inner, Note)
        assert inner.text == "payload"

    def test_unwrap_uses_cached_instance_on_the_sim_path(self):
        note = Note("same object")
        envelope = StubbornData.wrap(0, note)
        assert envelope.unwrap() is note


class TestRetransmission:
    def test_delivers_through_repeated_loss(self, sim):
        inner, channel, nodes, got, _ = build_pair(sim, drop_first=3)
        channel.send(0, 1, Note("hello"))
        sim.run(until=30)
        assert got == [(1, 0, "hello")]
        assert channel.metrics.data_sent == 1
        assert channel.metrics.retransmissions >= 3
        assert channel.metrics.acks_received == 1
        assert channel.link(0).in_flight(1) == 0

    def test_lossless_path_sends_once(self, sim):
        inner, channel, nodes, got, _ = build_pair(sim)
        channel.send(0, 1, Note("one"))
        sim.run(until=0.1)
        assert got == [(1, 0, "one")]
        assert channel.metrics.retransmissions == 0
        # Retry timer must have been cancelled by the ack.
        sim.run(until=30)
        assert channel.metrics.retransmissions == 0

    def test_duplicate_ack_is_harmless(self, sim):
        inner, channel, nodes, got, _ = build_pair(sim)
        channel.send(0, 1, Note("x"))
        sim.run(until=0.1)
        from repro.transport.stubborn import StubbornAck
        nodes[0].deliver(StubbornAck(0), 1)  # replayed ack
        assert channel.metrics.acks_received == 1
        assert got == [(1, 0, "x")]

    def test_multisend_wraps_every_leg(self, sim):
        inner, channel, nodes, got, _ = build_pair(sim)
        channel.multisend(0, Note("all"))
        sim.run(until=0.5)
        assert sorted(got) == [(0, 0, "all"), (1, 0, "all")]


class TestWindow:
    def test_backlog_beyond_window(self, sim):
        config = StubbornConfig(window=2)
        inner, channel, nodes, got, _ = build_pair(sim, config=config)
        inner.blackhole = True
        for k in range(5):
            channel.send(0, 1, Note(f"m{k}"))
        link = channel.link(0)
        assert link.in_flight(1) == 2
        assert link.backlog(1) == 3
        assert channel.metrics.queued == 3
        inner.blackhole = False
        sim.run(until=60)
        assert sorted(text for _, _, text in got) == \
            [f"m{k}" for k in range(5)]
        assert link.in_flight(1) == 0
        assert link.backlog(1) == 0


class TestBacklogBound:
    def test_backlog_overflow_drops_newest_and_counts(self, sim):
        config = StubbornConfig(window=2, max_backlog=3)
        inner, channel, nodes, got, _ = build_pair(sim, config=config)
        inner.blackhole = True
        for k in range(10):
            channel.send(0, 1, Note(f"m{k}"))
        link = channel.link(0)
        # Window full (2), backlog full (3), the other 5 dropped-newest.
        assert link.in_flight(1) == 2
        assert link.backlog(1) == 3
        assert channel.metrics.queued == 3
        assert channel.metrics.backlog_overflows == 5
        assert channel.metrics.backlog_high_water == 3
        inner.blackhole = False
        sim.run(until=60)
        # Exactly the non-dropped prefix arrives (retransmission jitter
        # may reorder); the drops are ordinary fair-loss losses.
        assert sorted(text for _, _, text in got) == \
            [f"m{k}" for k in range(5)]
        assert link.backlog(1) == 0

    def test_high_water_never_exceeds_bound(self, sim):
        config = StubbornConfig(window=1, max_backlog=2)
        inner, channel, nodes, got, _ = build_pair(sim, config=config)
        inner.blackhole = True
        for wave in range(4):
            for k in range(6):
                channel.send(0, 1, Note(f"w{wave}-{k}"))
        assert channel.metrics.backlog_high_water <= 2
        assert channel.metrics.backlog_overflows == 4 * 6 - 1 - 2

    def test_unbounded_mode_preserves_legacy_behaviour(self, sim):
        config = StubbornConfig(window=2, max_backlog=None)
        inner, channel, nodes, got, _ = build_pair(sim, config=config)
        inner.blackhole = True
        for k in range(50):
            channel.send(0, 1, Note(f"m{k}"))
        assert channel.link(0).backlog(1) == 48
        assert channel.metrics.backlog_overflows == 0
        inner.blackhole = False
        sim.run(until=240)
        assert len(got) == 50


class TestBypassAndLoopback:
    def test_heartbeats_bypass_the_layer(self, sim):
        inner, channel, nodes, got, _ = build_pair(sim)
        channel.send(0, 1, Beat(epoch=2))
        assert inner.sent_types == ["fd.alive"]  # raw, not stub.data
        sim.run(until=5)
        assert channel.metrics.data_sent == 0

    def test_loopback_bypasses_the_layer(self, sim):
        inner, channel, nodes, got, _ = build_pair(sim)
        channel.send(0, 0, Note("self"))
        assert inner.sent_types == [Note.type]
        sim.run(until=1)
        assert got == [(0, 0, "self")]
        assert channel.metrics.data_sent == 0


class TestCrashVolatility:
    def test_crash_cancels_retransmission(self, sim):
        inner, channel, nodes, got, _ = build_pair(sim)
        inner.blackhole = True
        channel.send(0, 1, Note("doomed"))
        sim.run(until=1)
        sent_before = len(inner.sent_types)
        nodes[0].crash()
        assert channel.link(0).in_flight(1) == 0
        inner.blackhole = False
        sim.run(until=30)
        # Stubbornness is per-incarnation: nothing retried after the crash.
        assert len(inner.sent_types) == sent_before
        assert got == []

    def test_recovered_node_sends_fresh_sequences(self, sim):
        inner, channel, nodes, got, _ = build_pair(sim)
        channel.send(0, 1, Note("before"))
        sim.run(until=1)
        nodes[0].crash()
        sim.run(until=2)
        nodes[0].recover()
        channel.send(0, 1, Note("after"))
        sim.run(until=5)
        assert [text for _, _, text in got] == ["before", "after"]


class TestSuspension:
    def test_retries_slow_poll_while_suspected(self, sim):
        config = StubbornConfig(base_interval=0.1, max_interval=0.2,
                                jitter=0.0, suspend_interval=5.0)
        inner, channel, nodes, got, suspicions = build_pair(
            sim, config=config, with_suspicion=True)
        inner.blackhole = True
        suspicions[0].suspected.add(1)
        channel.send(0, 1, Note("patient"))
        sim.run(until=12)
        assert channel.metrics.suspended_skips >= 2
        # Initial transmit only; every retry slot was a suspended skip.
        assert inner.sent_types.count(StubbornData.type) == 1
        # Rehabilitation restores full-speed retransmission and delivery.
        suspicions[0].suspected.clear()
        inner.blackhole = False
        sim.run(until=30)
        assert got == [(1, 0, "patient")]


class TestCoalescing:
    def coalescing_config(self, **overrides):
        defaults = dict(coalesce=True, base_interval=0.5, jitter=0.0)
        defaults.update(overrides)
        return StubbornConfig(**defaults)

    def test_same_turn_sends_share_one_batch(self, sim):
        inner, channel, nodes, got, _ = build_pair(
            sim, config=self.coalescing_config())
        for index in range(5):
            channel.send(0, 1, Note(f"m{index}"))
        sim.run(until=1)
        assert sorted(text for _, _, text in got) == \
            [f"m{index}" for index in range(5)]
        from repro.transport.stubborn import StubbornBatch
        assert inner.sent_types.count(StubbornBatch.type) >= 1
        # All five envelopes launched in one flush.
        assert channel.metrics.batches_sent >= 1
        assert channel.metrics.batched_entries == 5
        assert channel.metrics.data_sent == 5

    def test_max_batch_chunks_large_flushes(self, sim):
        config = self.coalescing_config(max_batch=2, window=64)
        inner, channel, nodes, got, _ = build_pair(sim, config=config)
        for index in range(6):
            channel.send(0, 1, Note(f"m{index}"))
        sim.run(until=1)
        assert len(got) == 6
        from repro.transport.stubborn import StubbornBatch
        assert inner.sent_types.count(StubbornBatch.type) >= 3

    def test_acks_piggyback_on_reverse_traffic(self, sim):
        inner, channel, nodes, got, _ = build_pair(
            sim, config=self.coalescing_config())
        # Replying from the delivery handler puts the reply data and the
        # ack for the received envelope into the same flush.
        nodes[1].register_handler(
            Note.type, lambda m, s: channel.send(1, 0, Note("reply")))
        channel.send(0, 1, Note("ping"))
        sim.run(until=2)
        assert (0, 1, "reply") in got
        assert channel.metrics.piggybacked_acks >= 1

    def test_retransmissions_stay_per_envelope(self, sim):
        inner, channel, nodes, got, _ = build_pair(
            sim, config=self.coalescing_config(base_interval=0.2))
        inner.blackhole = True
        channel.send(0, 1, Note("stubborn"))
        sim.run(until=1)
        inner.blackhole = False
        sim.run(until=30)
        assert got == [(1, 0, "stubborn")]
        assert channel.metrics.retransmissions >= 1
        # Retries travel as plain envelopes, not re-batched.
        assert inner.sent_types.count(StubbornData.type) >= 1

    def test_crash_clears_pending_batches(self, sim):
        config = self.coalescing_config(flush_delay=0.5)
        inner, channel, nodes, got, _ = build_pair(sim, config=config)
        channel.send(0, 1, Note("doomed"))
        nodes[0].crash()  # before the delayed flush fires
        sim.run(until=5)
        assert got == []
        assert channel.metrics.batches_sent == 0
        # Recovery starts clean: fresh sends flow normally (delivery is
        # at-least-once, so slow acks may legally duplicate it).
        nodes[0].recover()
        channel.send(0, 1, Note("fresh"))
        sim.run(until=10)
        assert got and set(got) == {(1, 0, "fresh")}

    def test_flush_delay_defers_the_batch(self, sim):
        config = self.coalescing_config(flush_delay=1.0)
        inner, channel, nodes, got, _ = build_pair(sim, config=config)
        channel.send(0, 1, Note("later"))
        sim.run(until=0.5)
        assert got == []  # still buffered
        sim.run(until=3)
        # The delayed ack flush may let a retry through first: delivery
        # is at-least-once, so assert content, not count.
        assert got and set(got) == {(1, 0, "later")}

    def test_config_validation(self):
        import pytest
        with pytest.raises(ValueError):
            StubbornConfig(flush_delay=-1.0)
        with pytest.raises(ValueError):
            StubbornConfig(max_batch=0)


class TestClusterIntegration:
    def test_sim_cluster_with_stubborn_survives_loss(self):
        config = ClusterConfig(
            n=3, seed=5, protocol="basic",
            network=NetworkConfig(loss_rate=0.2),
            stubborn=StubbornConfig(base_interval=0.3))
        cluster = Cluster(config)
        assert cluster.stubborn is not None
        cluster.start()
        for k in range(5):
            cluster.submit(k % 3, f"p{k}")
            cluster.run(until=cluster.sim.now + 0.5)
        assert cluster.settle(limit=120)
        metrics = cluster.metrics()
        assert metrics.stubborn is not None
        assert metrics.stubborn["data_sent"] > 0
        assert metrics.messages_delivered == 5

    def test_sim_cluster_defaults_to_raw_channel(self):
        cluster = Cluster(ClusterConfig(n=3, seed=0))
        assert cluster.stubborn is None
        assert cluster.medium is cluster.network
        assert cluster.metrics().stubborn is None


def test_simulator_smoke_fixture_alias():
    # Guard: the conftest `sim` fixture and this module agree on the type.
    assert Simulator is not None
