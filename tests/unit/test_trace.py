"""Unit tests for the structured event tracer."""

from __future__ import annotations

import pytest

from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario, run_scenario
from repro.sim.faults import FaultSchedule
from repro.sim.trace import CATEGORIES, TraceEvent, Tracer
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload


class TestTracerUnit:
    def test_records_and_selects(self):
        tracer = Tracer()
        tracer.record(1.0, "node", 0, "crash")
        tracer.record(2.0, "round", 1, "commit", k=3)
        assert len(tracer) == 2
        assert tracer.select(category="node")[0].action == "crash"
        assert tracer.select(node=1)[0].details == {"k": 3}
        assert tracer.select(action="commit", node=0) == []

    def test_category_filter(self):
        tracer = Tracer(categories=["node"])
        tracer.record(1.0, "node", 0, "crash")
        tracer.record(1.0, "round", 0, "commit")
        assert len(tracer) == 1

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            Tracer(categories=["nonsense"])

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(max_events=5)
        for index in range(8):
            tracer.record(float(index), "node", 0, "start", i=index)
        assert len(tracer) == 5
        assert tracer.dropped == 3
        assert tracer.events[0].details == {"i": 3}
        assert "3 earlier events dropped" in tracer.format_text()

    def test_counts_and_format(self):
        tracer = Tracer()
        tracer.record(1.0, "node", 0, "crash")
        tracer.record(2.0, "node", 1, "crash")
        assert tracer.counts() == {"node/crash": 2}
        line = TraceEvent(1.5, "fd", 2, "suspect", {"peer": 0}).format()
        assert "n2 fd/suspect" in line and "peer=0" in line

    def test_all_categories_are_known(self):
        assert set(CATEGORIES) == {"node", "round", "checkpoint",
                                   "state-transfer", "decision", "fd"}


class TestTracedRuns:
    def run_traced(self, **scenario_kwargs):
        tracer = Tracer()
        run_scenario(Scenario(tracer=tracer, **scenario_kwargs))
        return tracer

    def test_untraced_run_records_nothing(self):
        result = run_scenario(Scenario(
            cluster=ClusterConfig(n=3, seed=1, protocol="basic"),
            workload=PoissonWorkload(1.0, 4.0, seed=1), duration=8.0))
        assert result.cluster.sim.tracer is None

    def test_crash_and_recovery_are_traced(self):
        tracer = self.run_traced(
            cluster=ClusterConfig(n=3, seed=2, protocol="basic",
                                  network=NetworkConfig(loss_rate=0.05)),
            workload=PoissonWorkload(1.0, 6.0, seed=2),
            faults=FaultSchedule().crash(2.0, 1).recover(4.0, 1),
            duration=12.0, settle_limit=120.0)
        crashes = tracer.select(category="node", action="crash")
        assert [event.node for event in crashes] == [1]
        assert tracer.select(category="node", action="recover")[0].node == 1
        # Ordering progress was traced too.
        assert tracer.select(category="round", action="commit")
        assert tracer.select(category="decision", action="locked")

    def test_trace_explains_recovery_path(self):
        """Traces distinguish state-transfer catch-up from replay."""
        from repro.core.alternative import AlternativeConfig
        tracer = Tracer()
        from repro.harness.cluster import Cluster
        cluster = Cluster(ClusterConfig(
            n=3, seed=3, protocol="alternative",
            network=NetworkConfig(loss_rate=0.03),
            alt=AlternativeConfig(checkpoint_interval=2.0, delta=2)))
        cluster.sim.tracer = tracer
        cluster.start()
        cluster.run(until=1.0)
        cluster.nodes[2].crash()
        for j in range(25):
            cluster.sim.schedule(1.5 + 0.15 * j, cluster.submit, 0,
                                 ("m", j))
        cluster.run(until=8.0)
        cluster.nodes[2].recover()
        cluster.run(until=60.0)
        adoptions = tracer.select(category="state-transfer",
                                  action="adopted")
        assert adoptions and adoptions[0].node == 2
        assert adoptions[0].details["skipped"] > 0

    def test_traces_are_deterministic(self):
        def formatted():
            tracer = self.run_traced(
                cluster=ClusterConfig(n=3, seed=4, protocol="basic"),
                workload=PoissonWorkload(1.0, 5.0, seed=4),
                duration=10.0)
            return tracer.format_text()

        assert formatted() == formatted()


class TestTracerHotPath:
    """Regressions for the deque ring buffer and strict categories."""

    def test_overflow_is_o1_deque(self):
        from collections import deque
        tracer = Tracer(max_events=3)
        assert isinstance(tracer.events, deque)
        for index in range(10):
            tracer.record(float(index), "node", 0, "start", i=index)
        assert len(tracer) == 3
        assert tracer.dropped == 7
        assert [event.details["i"] for event in tracer.events] == [7, 8, 9]
        text = tracer.format_text()
        assert "7 earlier events dropped" in text
        # Tail limiting still slices from the end.
        tail = tracer.format_text(limit=2)
        assert "i=8" in tail and "i=9" in tail and "i=7" not in tail

    def test_record_rejects_unknown_category(self):
        # A typo at an instrumentation site must fail loudly instead of
        # silently dropping the events it was meant to capture.
        tracer = Tracer()
        with pytest.raises(ValueError, match="unknown trace category"):
            tracer.record(1.0, "nodes", 0, "crash")
        assert len(tracer) == 0

    def test_record_still_filters_known_categories(self):
        tracer = Tracer(categories=["node"])
        tracer.record(1.0, "round", 0, "commit")  # valid, filtered
        with pytest.raises(ValueError):
            tracer.record(1.0, "roundz", 0, "commit")  # invalid: raise
        assert len(tracer) == 0
