"""Unit tests for the heartbeat failure detector and the Ω oracle."""

from __future__ import annotations

import pytest

from repro.fdetect.heartbeat import HeartbeatDetector
from repro.fdetect.omega import OmegaOracle


class TestHeartbeatDetector:
    def test_no_suspicions_in_stable_run(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=20.0)
        for detector in cluster.detectors.values():
            assert detector.suspects() == set()

    def test_completeness_crashed_node_suspected(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        cluster.nodes[2].crash()
        cluster.run(until=15.0)
        assert 2 in cluster.detectors[0].suspects()
        assert 2 in cluster.detectors[1].suspects()

    def test_self_never_suspected(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=15.0)
        for node_id, detector in cluster.detectors.items():
            assert node_id not in detector.suspects()

    def test_recovered_node_rehabilitated(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        cluster.nodes[2].crash()
        cluster.run(until=15.0)
        cluster.nodes[2].recover()
        cluster.run(until=25.0)
        assert 2 not in cluster.detectors[0].suspects()

    def test_timeout_adapts_on_false_suspicion(self, mini_cluster):
        cluster = mini_cluster(n=2).start()
        cluster.run(until=5.0)
        detector = cluster.detectors[0]
        base = detector.timeout_for(1)
        cluster.nodes[1].crash()
        cluster.run(until=12.0)   # 0 suspects 1
        cluster.nodes[1].recover()
        cluster.run(until=20.0)   # heartbeat refutes the suspicion
        assert detector.timeout_for(1) > base

    def test_epoch_increases_across_recoveries(self, mini_cluster):
        cluster = mini_cluster(n=2).start()
        cluster.run(until=3.0)
        first_epoch = cluster.detectors[0].epoch_of(1)
        assert first_epoch >= 1
        cluster.nodes[1].crash()
        cluster.run(until=4.0)
        cluster.nodes[1].recover()
        cluster.run(until=8.0)
        assert cluster.detectors[0].epoch_of(1) > first_epoch

    def test_epoch_is_durable(self, mini_cluster):
        cluster = mini_cluster(n=2).start()
        cluster.run(until=2.0)
        epoch_before = cluster.detectors[1].epoch
        cluster.nodes[1].crash()
        cluster.nodes[1].recover()
        assert cluster.detectors[1].epoch == epoch_before + 1


class TestOmega:
    def test_stable_run_elects_lowest_id(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=10.0)
        assert all(cluster.omegas[i].leader() == 0 for i in range(3))
        assert cluster.omegas[0].is_leader()
        assert not cluster.omegas[1].is_leader()

    def test_leader_crash_elects_next(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        cluster.nodes[0].crash()
        cluster.run(until=20.0)
        assert cluster.omegas[1].leader() == 1
        assert cluster.omegas[2].leader() == 1

    def test_leader_recovery_restores_lowest(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        cluster.nodes[0].crash()
        cluster.run(until=20.0)
        cluster.nodes[0].recover()
        cluster.run(until=40.0)
        assert all(cluster.omegas[i].leader() == 0 for i in range(3))

    def test_change_signal_fires(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        changes = []

        def watcher():
            while True:
                value = yield cluster.omegas[1].changed.wait()
                changes.append(value)

        cluster.nodes[1].spawn(watcher(), "watch")
        cluster.nodes[0].crash()
        cluster.run(until=20.0)
        assert 1 in changes
