"""Unit tests for the heartbeat failure detector and the Ω oracle."""

from __future__ import annotations

import pytest

from repro.fdetect.heartbeat import HeartbeatDetector
from repro.fdetect.omega import OmegaOracle


class TestHeartbeatDetector:
    def test_no_suspicions_in_stable_run(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=20.0)
        for detector in cluster.detectors.values():
            assert detector.suspects() == set()

    def test_completeness_crashed_node_suspected(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        cluster.nodes[2].crash()
        cluster.run(until=15.0)
        assert 2 in cluster.detectors[0].suspects()
        assert 2 in cluster.detectors[1].suspects()

    def test_self_never_suspected(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=15.0)
        for node_id, detector in cluster.detectors.items():
            assert node_id not in detector.suspects()

    def test_recovered_node_rehabilitated(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        cluster.nodes[2].crash()
        cluster.run(until=15.0)
        cluster.nodes[2].recover()
        cluster.run(until=25.0)
        assert 2 not in cluster.detectors[0].suspects()

    def test_timeout_adapts_on_false_suspicion(self, mini_cluster):
        cluster = mini_cluster(n=2).start()
        cluster.run(until=5.0)
        detector = cluster.detectors[0]
        base = detector.timeout_for(1)
        cluster.nodes[1].crash()
        cluster.run(until=12.0)   # 0 suspects 1
        cluster.nodes[1].recover()
        cluster.run(until=20.0)   # heartbeat refutes the suspicion
        assert detector.timeout_for(1) > base

    def test_epoch_increases_across_recoveries(self, mini_cluster):
        cluster = mini_cluster(n=2).start()
        cluster.run(until=3.0)
        first_epoch = cluster.detectors[0].epoch_of(1)
        assert first_epoch >= 1
        cluster.nodes[1].crash()
        cluster.run(until=4.0)
        cluster.nodes[1].recover()
        cluster.run(until=8.0)
        assert cluster.detectors[0].epoch_of(1) > first_epoch

    def test_epoch_is_durable(self, mini_cluster):
        cluster = mini_cluster(n=2).start()
        cluster.run(until=2.0)
        epoch_before = cluster.detectors[1].epoch
        cluster.nodes[1].crash()
        cluster.nodes[1].recover()
        assert cluster.detectors[1].epoch == epoch_before + 1


class TestHeartbeatGrayFailures:
    """The detector under gray failures: nodes that are slow or lossy
    but never actually down.  Eventual accuracy demands the detector
    first (wrongly) suspects, then rehabilitates and widens the
    timeout so the same slowness stops producing suspicions."""

    def test_sustained_loss_burst_suspect_then_rehabilitate(self,
                                                            mini_cluster):
        cluster = mini_cluster(n=2).start()
        cluster.run(until=5.0)
        detector = cluster.detectors[0]
        base = detector.timeout_for(1)
        assert detector.suspects() == set()
        # Sustained burst: nearly every heartbeat is lost for a long
        # stretch — far longer than the suspicion timeout.
        cluster.network.config.loss_rate = 0.97
        cluster.run(until=30.0)
        assert 1 in detector.suspects()
        cluster.network.config.loss_rate = 0.0
        cluster.run(until=60.0)
        # The peer was never down: the suspicion must be withdrawn and
        # the refutation must have widened the adaptive timeout.
        assert 1 not in detector.suspects()
        assert detector.timeout_for(1) > base

    def test_limping_peer_suspected_then_rehabilitated(self, mini_cluster):
        cluster = mini_cluster(n=2).start()
        cluster.run(until=5.0)
        detector = cluster.detectors[0]
        base = detector.timeout_for(1)
        # The suspicion window is transient (it closes as soon as the
        # first delayed heartbeat lands), so sample it with a probe
        # task instead of asserting at one instant.
        suspected_at = []

        def probe():
            while True:
                if 1 in detector.suspects():
                    suspected_at.append(cluster.sim.now)
                yield 0.1

        cluster.nodes[0].spawn(probe(), "probe")
        # Limping node: every message to/from node 1 takes 3 extra
        # seconds, beyond the 2s initial timeout.  The *transition*
        # opens a heartbeat gap; once the pipeline fills, heartbeats
        # resume at their period and refute the suspicion.
        cluster.network.set_node_delay(1, 3.0)
        cluster.run(until=25.0)
        assert suspected_at, "limp onset never produced a suspicion"
        assert 1 not in detector.suspects()
        assert detector.timeout_for(1) > base
        cluster.network.clear_node_delay(1)
        cluster.run(until=40.0)
        assert detector.suspects() == set()

    def test_timeout_widens_monotonically_across_bursts(self, mini_cluster):
        cluster = mini_cluster(n=2).start()
        cluster.run(until=5.0)
        detector = cluster.detectors[0]
        observed = [detector.timeout_for(1)]
        for burst in range(3):
            cluster.network.config.loss_rate = 0.97
            cluster.run(until=cluster.sim.now + 25.0)
            cluster.network.config.loss_rate = 0.0
            cluster.run(until=cluster.sim.now + 25.0)
            assert 1 not in detector.suspects()
            observed.append(detector.timeout_for(1))
        # Adaptation never narrows, and the bursts forced real widening.
        assert all(b >= a for a, b in zip(observed, observed[1:]))
        assert observed[-1] > observed[0]


class TestOmega:
    def test_stable_run_elects_lowest_id(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=10.0)
        assert all(cluster.omegas[i].leader() == 0 for i in range(3))
        assert cluster.omegas[0].is_leader()
        assert not cluster.omegas[1].is_leader()

    def test_leader_crash_elects_next(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        cluster.nodes[0].crash()
        cluster.run(until=20.0)
        assert cluster.omegas[1].leader() == 1
        assert cluster.omegas[2].leader() == 1

    def test_leader_recovery_restores_lowest(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        cluster.nodes[0].crash()
        cluster.run(until=20.0)
        cluster.nodes[0].recover()
        cluster.run(until=40.0)
        assert all(cluster.omegas[i].leader() == 0 for i in range(3))

    def test_change_signal_fires(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=5.0)
        changes = []

        def watcher():
            while True:
                value = yield cluster.omegas[1].changed.wait()
                changes.append(value)

        cluster.nodes[1].spawn(watcher(), "watch")
        cluster.nodes[0].crash()
        cluster.run(until=20.0)
        assert 1 in changes
