"""Unit tests for metric collection and statistics helpers."""

from __future__ import annotations

import pytest

from repro.core.ids import MessageId
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.stats import mean, percentile, stdev, summarize


class TestStats:
    def test_mean_empty_and_values(self):
        assert mean([]) == 0.0
        assert mean([1, 2, 3]) == 2.0

    def test_stdev(self):
        assert stdev([]) == 0.0
        assert stdev([5]) == 0.0
        assert stdev([2, 2, 2]) == 0.0
        assert stdev([0, 10]) == 5.0

    def test_percentile_bounds(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100
        assert percentile(values, 50) == 50

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([0, 10], 25) == 2.5

    def test_percentile_edge_cases(self):
        assert percentile([], 50) == 0.0
        assert percentile([7], 99) == 7

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["p50"] == 2.0


class TestCollector:
    def test_latency_from_broadcast_to_first_delivery(self):
        collector = MetricsCollector()
        mid = MessageId(0, 1, 1)
        collector.note_broadcast(mid, "p", time=1.0)
        collector.note_delivery(0, mid, time=3.0)
        collector.note_delivery(1, mid, time=4.0)  # later copies ignored
        assert collector.delivery_latencies == [2.0]

    def test_duplicate_broadcast_note_ignored(self):
        collector = MetricsCollector()
        mid = MessageId(0, 1, 1)
        collector.note_broadcast(mid, "p", time=1.0)
        collector.note_broadcast(mid, "p", time=9.0)
        assert collector.broadcast_times[mid] == 1.0

    def test_delivered_ids_per_incarnation(self):
        collector = MetricsCollector()
        a, b = MessageId(0, 1, 1), MessageId(0, 1, 2)
        collector.note_delivery(0, a, 1.0, incarnation=1)
        collector.note_delivery(0, b, 2.0, incarnation=1)
        collector.note_delivery(0, a, 3.0, incarnation=2)  # replay
        assert collector.delivered_ids(0, 1) == [a, b]
        assert collector.delivered_ids(0, 2) == [a]
        assert collector.delivered_ids(0) == [a, b, a]
        assert collector.incarnations_of(0) == [1, 2]

    def test_decision_archive_and_conflicts(self):
        collector = MetricsCollector()
        collector.note_decision(0, frozenset({"a"}))
        collector.note_decision(0, frozenset({"a"}))
        assert collector.decision_conflicts == []
        collector.note_decision(0, frozenset({"b"}))
        assert len(collector.decision_conflicts) == 1


def make_metrics(collector=None, prefix_ops=None):
    collector = collector or MetricsCollector()
    return RunMetrics(
        duration=10.0, collector=collector,
        storage_by_node={0: {"log_ops": 5, "bytes_logged": 100,
                             "retrievals": 0, "deletes": 0}},
        storage_prefix_ops={0: prefix_ops or {"consensus": 4, "ab": 1}},
        storage_prefix_bytes={0: {"consensus": 80, "ab": 20}},
        storage_residency={0: 50},
        network={"sent": 10, "delivered": 9, "lost": 1,
                 "dropped_down": 0, "duplicated": 0, "bytes_sent": 500},
        node_stats={0: {}},
    )


class TestRunMetrics:
    def test_throughput(self):
        collector = MetricsCollector()
        for seq in range(4):
            mid = MessageId(0, 1, seq + 1)
            collector.note_broadcast(mid, None, 0.0)
            collector.note_delivery(0, mid, 1.0)
        metrics = make_metrics(collector)
        assert metrics.messages_delivered == 4
        assert metrics.throughput == pytest.approx(0.4)

    def test_log_op_views(self):
        metrics = make_metrics()
        assert metrics.total_log_ops() == 5
        assert metrics.total_bytes_logged() == 100
        assert metrics.log_ops_by_prefix() == {"consensus": 4, "ab": 1}
        assert metrics.bytes_by_prefix() == {"consensus": 80, "ab": 20}

    def test_log_ops_per_delivery(self):
        collector = MetricsCollector()
        for seq in range(5):
            mid = MessageId(0, 1, seq + 1)
            collector.note_broadcast(mid, None, 0.0)
            collector.note_delivery(0, mid, 1.0)
        metrics = make_metrics(collector)
        assert metrics.log_ops_per_delivery() == 1.0
        assert metrics.log_ops_per_delivery({"ab"}) == pytest.approx(0.2)

    def test_zero_division_guards(self):
        metrics = make_metrics()
        assert metrics.log_ops_per_delivery() == 0.0
        assert make_metrics().throughput == 0.0


class TestSummarizeSingleSort:
    """Regression for the single-sort summarize (was 3 sorts + min + max)."""

    def test_matches_per_percentile_calls(self):
        import random
        rng = random.Random(42)
        for trial in range(50):
            size = rng.randrange(0, 40)
            sample = [rng.uniform(-100, 100) for _ in range(size)]
            rng.shuffle(sample)
            summary = summarize(sample)
            assert summary["count"] == float(len(sample))
            assert summary["mean"] == mean(sample)
            for q in (50, 95, 99):
                assert summary[f"p{q}"] == percentile(sample, q)
            assert summary["min"] == (min(sample) if sample else 0.0)
            assert summary["max"] == (max(sample) if sample else 0.0)

    def test_percentile_of_sorted_requires_sorted_for_equality(self):
        from repro.metrics.stats import percentile_of_sorted
        sample = [5.0, 1.0, 9.0, 3.0]
        assert percentile_of_sorted(sorted(sample), 50) \
            == percentile(sample, 50)

    def test_input_not_mutated(self):
        sample = [3.0, 1.0, 2.0]
        summarize(sample)
        assert sample == [3.0, 1.0, 2.0]


class TestCollectorEdgeCases:
    """Documented behaviour at the awkward corners of observation."""

    def test_delivery_before_broadcast_recorded_without_latency(self):
        # A delivery can be observed for a message whose broadcast was
        # never recorded (e.g. state adopted from a peer that predates
        # instrumentation).  The delivery must still count for ordering,
        # but no latency sample can exist — and the omission is counted.
        collector = MetricsCollector()
        mid = MessageId(2, 0, 7)
        collector.note_delivery(0, mid, time=5.0)
        assert collector.deliveries == [(0, 0, mid, 5.0)]
        assert collector.first_delivery[mid] == 5.0
        assert collector.delivery_latencies == []
        assert collector.latency_skipped == 1
        # A later broadcast note does not retroactively create a sample.
        collector.note_broadcast(mid, "late", time=6.0)
        collector.note_delivery(1, mid, time=7.0)
        assert collector.delivery_latencies == []
        assert collector.latency_skipped == 1

    def test_rebroadcast_of_duplicate_mid_after_recovery(self):
        # A recovered sender re-submitting the same MessageId must not
        # reset the broadcast clock: latency is measured from the first
        # submission, and the original payload wins.
        collector = MetricsCollector()
        mid = MessageId(1, 1, 3)
        collector.note_broadcast(mid, "original", time=1.0)
        collector.note_broadcast(mid, "replayed", time=9.0)  # recovery
        collector.note_delivery(0, mid, time=10.0)
        assert collector.broadcast_times[mid] == 1.0
        assert collector.broadcast_payloads[mid] == "original"
        assert collector.delivery_latencies == [9.0]
        assert collector.latency_skipped == 0
        assert collector.broadcast_ids() == {mid}
