"""Unit tests for the crash-recovery Paxos consensus substrate."""

from __future__ import annotations

import pytest

from repro.errors import ConsensusError, ProposalMismatch
from repro.transport.network import NetworkConfig


def propose(cluster, node_id, k, value):
    cluster.consensuses[node_id].propose(k, frozenset({value}))


def decided(cluster, node_id, k):
    return cluster.consensuses[node_id].decided_value(k)


def wait_all_decided(cluster, k, limit):
    cluster.run(until=limit)
    return [decided(cluster, i, k) for i in cluster.consensuses]


class TestInterfaceContract:
    def test_none_proposal_rejected(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        with pytest.raises(ConsensusError):
            cluster.consensuses[0].propose(0, None)

    def test_negative_instance_rejected(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        with pytest.raises(ConsensusError):
            cluster.consensuses[0].propose(-1, frozenset())

    def test_propose_logs_first(self, mini_cluster):
        """Section 4.2: the proposal log is the first consensus operation."""
        cluster = mini_cluster(n=3).start()
        before = cluster.nodes[0].storage.metrics.ops_by_prefix.get(
            "consensus", 0)
        propose(cluster, 0, 0, "v")
        after = cluster.nodes[0].storage.metrics.ops_by_prefix["consensus"]
        assert after == before + 1
        assert cluster.consensuses[0].proposal_of(0) == frozenset({"v"})

    def test_repropose_same_value_is_idempotent(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        propose(cluster, 0, 0, "v")
        ops = cluster.nodes[0].storage.metrics.log_ops
        propose(cluster, 0, 0, "v")  # idempotent: no second log
        assert cluster.nodes[0].storage.metrics.ops_by_prefix[
            "consensus"] == 1
        assert cluster.nodes[0].storage.metrics.log_ops >= ops

    def test_property_p4_different_value_rejected(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        propose(cluster, 0, 0, "v")
        with pytest.raises(ProposalMismatch):
            propose(cluster, 0, 0, "other")

    def test_logged_instances_enumerates_proposals(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        for k in range(3):
            propose(cluster, 0, k, f"v{k}")
        logged = cluster.consensuses[0].logged_instances()
        assert set(logged) == {0, 1, 2}
        assert logged[1] == frozenset({"v1"})


class TestAgreement:
    def test_all_nodes_decide_same_value(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        for i in range(3):
            propose(cluster, i, 0, f"v{i}")
        values = wait_all_decided(cluster, 0, limit=30.0)
        assert values[0] is not None
        assert values[0] == values[1] == values[2]

    def test_validity_decision_was_proposed(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        for i in range(3):
            propose(cluster, i, 0, f"v{i}")
        values = wait_all_decided(cluster, 0, limit=30.0)
        assert values[0] in [frozenset({f"v{i}"}) for i in range(3)]

    def test_multiple_instances_independent(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        for k in range(4):
            for i in range(3):
                propose(cluster, i, k, f"k{k}-v{i}")
        cluster.run(until=60.0)
        for k in range(4):
            values = [decided(cluster, i, k) for i in range(3)]
            assert values[0] is not None
            assert values.count(values[0]) == 3

    def test_decides_under_message_loss(self, mini_cluster):
        cluster = mini_cluster(
            n=3, network_config=NetworkConfig(loss_rate=0.2),
            seed=7).start()
        for i in range(3):
            propose(cluster, i, 0, f"v{i}")
        values = wait_all_decided(cluster, 0, limit=60.0)
        assert values[0] is not None and values.count(values[0]) == 3

    def test_decides_with_minority_down(self, mini_cluster):
        cluster = mini_cluster(n=5).start()
        cluster.run(until=1.0)
        cluster.nodes[3].crash()
        cluster.nodes[4].crash()
        for i in range(3):
            propose(cluster, i, 0, f"v{i}")
        cluster.run(until=40.0)
        assert decided(cluster, 0, 0) is not None

    def test_blocks_without_majority(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        cluster.run(until=1.0)
        cluster.nodes[1].crash()
        cluster.nodes[2].crash()
        propose(cluster, 0, 0, "v")
        cluster.run(until=30.0)
        assert decided(cluster, 0, 0) is None  # safety: no lone decision


class TestCrashRecovery:
    def test_decision_locked_across_recovery(self, mini_cluster):
        """Property P5: re-executions return the locked decision."""
        cluster = mini_cluster(n=3).start()
        for i in range(3):
            propose(cluster, i, 0, f"v{i}")
        first = wait_all_decided(cluster, 0, limit=30.0)[0]
        cluster.nodes[2].crash()
        cluster.run(until=35.0)
        cluster.nodes[2].recover()
        # Re-invoking propose with the logged value must converge to the
        # same locked decision.
        logged = cluster.consensuses[2].proposal_of(0)
        cluster.consensuses[2].propose(0, logged)
        cluster.run(until=60.0)
        assert decided(cluster, 2, 0) == first

    def test_proposal_survives_crash(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        propose(cluster, 0, 5, "durable")
        cluster.nodes[0].crash()
        cluster.nodes[0].recover()
        assert cluster.consensuses[0].proposal_of(5) == \
            frozenset({"durable"})

    def test_leader_crash_mid_instance_still_decides(self, mini_cluster):
        cluster = mini_cluster(n=3, seed=3).start()
        cluster.run(until=2.0)
        for i in range(3):
            propose(cluster, i, 0, f"v{i}")
        cluster.run(until=2.2)
        cluster.nodes[0].crash()   # Ω leader dies mid-attempt
        cluster.run(until=40.0)
        assert decided(cluster, 1, 0) is not None
        assert decided(cluster, 1, 0) == decided(cluster, 2, 0)

    def test_acceptor_state_durability_prevents_divergence(self,
                                                           mini_cluster):
        """A recovered acceptor must honour pre-crash promises/accepts."""
        cluster = mini_cluster(n=3, seed=11).start()
        for i in range(3):
            propose(cluster, i, 0, f"v{i}")
        cluster.run(until=30.0)
        first = decided(cluster, 0, 0)
        # Crash and recover everyone; re-propose; decision cannot change.
        for i in range(3):
            cluster.nodes[i].crash()
        cluster.run(until=32.0)
        for i in range(3):
            cluster.nodes[i].recover()
            logged = cluster.consensuses[i].proposal_of(0)
            cluster.consensuses[i].propose(0, logged)
        cluster.run(until=70.0)
        for i in range(3):
            assert decided(cluster, i, 0) == first

    def test_gc_discards_old_instances(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        for k in range(3):
            for i in range(3):
                propose(cluster, i, k, f"k{k}")
        cluster.run(until=40.0)
        consensus = cluster.consensuses[0]
        storage = cluster.nodes[0].storage
        assert any(key.startswith("paxos/0/") for key in storage.keys())
        consensus.discard_instances_below(2)
        assert consensus.proposal_of(0) is None
        assert consensus.proposal_of(1) is None
        assert consensus.proposal_of(2) is not None
        assert not any(key.startswith("paxos/0/") for key in storage.keys())
        assert not any(key.startswith("paxos/1/") for key in storage.keys())

    def test_gc_drops_decision_signal_cache(self, mini_cluster):
        # The volatile decision-signal cache must follow the instance
        # floor like the proposal/decision maps do, or it grows with the
        # full instance history.
        cluster = mini_cluster(n=3).start()
        consensus = cluster.consensuses[0]
        for k in range(4):
            consensus.decision_signal(k)
        assert set(consensus._decided_signal) == {0, 1, 2, 3}
        consensus.discard_instances_below(2)
        assert set(consensus._decided_signal) == {2, 3}

    def test_wait_decided_generator(self, mini_cluster):
        cluster = mini_cluster(n=3).start()
        results = []

        def waiter():
            value = yield from cluster.consensuses[0].wait_decided(0)
            results.append(value)

        cluster.nodes[0].spawn(waiter(), "waiter")
        for i in range(3):
            propose(cluster, i, 0, "w")
        cluster.run(until=30.0)
        assert results == [frozenset({"w"})]


class TestNonDurableMode:
    def test_crash_stop_mode_writes_nothing(self, sim):
        from tests.conftest import MiniCluster
        from repro.consensus.paxos import PaxosConsensus
        # Rebuild a cluster with durable=False consensus.
        cluster = MiniCluster(n=3, with_consensus=True)
        for i, consensus in cluster.consensuses.items():
            consensus.durable = False
        cluster.start()
        for i in range(3):
            cluster.consensuses[i].propose(0, frozenset({f"v{i}"}))
        cluster.run(until=30.0)
        assert cluster.consensuses[0].decided_value(0) is not None
        for node in cluster.nodes.values():
            by_prefix = node.storage.metrics.ops_by_prefix
            assert by_prefix.get("consensus", 0) == 0
            assert by_prefix.get("paxos", 0) == 0
