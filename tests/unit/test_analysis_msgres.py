"""Fixture tests for the message-flow (MSG), resource-bounds (RES) and
suppression-hygiene (NOQ) rule families.

Each rule gets a negative fixture (flagged at exact lines) and a
near-miss positive fixture (structurally close, stays silent) under
``tests/fixtures/analysis/``.  Fixtures are analyzed with the full
registry, so assertions filter to the family under test — other families
legitimately fire on some of them (e.g. ALI002 on a handler that
stashes its payload).
"""

from __future__ import annotations

import os

from repro.analysis import analyze_source

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "fixtures", "analysis")


def check_family(name: str, module: str, family: str):
    path = os.path.join(FIXTURES, name)
    with open(path, encoding="utf-8") as handle:
        findings = analyze_source(handle.read(), module=module, path=path)
    return [f for f in findings if f.rule_id.startswith(family)]


def located(findings):
    return [(f.rule_id, f.line) for f in findings]


# -- MSG001: sent but never handled -------------------------------------------

def test_msg001_flags_dead_letter_type():
    findings = check_family("msg001_bad.py", "repro.core.fixture", "MSG")
    assert located(findings) == [("MSG001", 14)]  # class Ping
    assert "'fx.ping'" in findings[0].message
    assert "Proto.poke" in findings[0].message  # names the sender


def test_msg001_silent_when_tag_registered():
    assert check_family("msg001_ok.py", "repro.core.fixture", "MSG") == []


def test_msg001_out_of_scope_module():
    assert check_family("msg001_bad.py", "repro.sim.fixture", "MSG") == []


# -- MSG002: handled but never sent -------------------------------------------

def test_msg002_flags_dead_handler():
    findings = check_family("msg002_bad.py", "repro.core.fixture", "MSG")
    assert located(findings) == [("MSG002", 13)]  # the register call
    assert "'fx.orphan'" in findings[0].message
    assert "Proto._on_orphan" in findings[0].message


def test_msg002_silent_when_type_is_sent():
    assert check_family("msg002_ok.py", "repro.core.fixture", "MSG") == []


# -- MSG003: payload-field mismatch -------------------------------------------

def test_msg003_flags_phantom_field_read():
    findings = check_family("msg003_bad.py", "repro.core.fixture", "MSG")
    assert located(findings) == [("MSG003", 32)]  # msg.weight read
    assert ".weight" in findings[0].message
    assert "Report" in findings[0].message


def test_msg003_silent_on_populated_surface():
    # fields, __init__ params, class-body defaults and methods are all
    # sanctioned reads.
    assert check_family("msg003_ok.py", "repro.core.fixture", "MSG") == []


# -- RES001: unbounded growth on a receive path -------------------------------

def test_res001_flags_unbounded_handler_growth():
    findings = check_family("res001_bad.py", "repro.core.fixture", "RES")
    assert located(findings) == [("RES001", 20), ("RES001", 21)]
    assert "self.backlog" in findings[0].message
    assert "self.seen" in findings[1].message
    assert "receive path" in findings[0].message


def test_res001_silent_on_bounded_shapes():
    # maxlen deque, len()-guarded dict, peer-keyed map, evicted list.
    assert check_family("res001_ok.py", "repro.core.fixture", "RES") == []


# -- RES002: blocking call in async code --------------------------------------

def test_res002_flags_blocking_calls_in_async():
    findings = check_family("res002_bad.py", "repro.runtime.fixture",
                            "RES")
    assert located(findings) == [("RES002", 14), ("RES002", 15),
                                 ("RES002", 17)]
    assert "time.sleep()" in findings[0].message
    assert "open()" in findings[1].message
    assert "subprocess.run()" in findings[2].message


def test_res002_silent_on_async_safe_equivalents():
    assert check_family("res002_ok.py", "repro.runtime.fixture",
                        "RES") == []


def test_res002_out_of_scope_module():
    # The rule patrols the live runtime and harness only; the simulated
    # stack has no event loop to stall.
    assert check_family("res002_bad.py", "repro.core.fixture", "RES") == []


# -- RES003: durable write amplification --------------------------------------

def test_res003_flags_loop_of_bare_writes():
    findings = check_family("res003_bad.py", "repro.core.fixture", "RES")
    assert located(findings) == [("RES003", 13)]
    assert "write_barrier" in findings[0].message


def test_res003_silent_under_barrier_and_outside_loops():
    assert check_family("res003_ok.py", "repro.core.fixture", "RES") == []


# -- NOQ001: bare suppressions ------------------------------------------------

def test_noq001_flags_unjustified_suppressions():
    findings = check_family("noq001_bad.py", "repro.core.fixture", "NOQ")
    assert located(findings) == [("NOQ001", 11), ("NOQ001", 15)]
    assert "noqa(DET001)" in findings[0].message
    assert "bare noqa" in findings[1].message
    assert "justification" in findings[0].message


def test_noq001_silent_when_justified():
    assert check_family("noq001_ok.py", "repro.core.fixture", "NOQ") == []


def test_noq001_excluded_from_the_analyzer_package():
    # The analysis package documents the noqa syntax in docstrings; the
    # rule is carved out of it by configuration, not by suppressions.
    assert check_family("noq001_bad.py", "repro.analysis.fixture",
                        "NOQ") == []
