"""Tests for the whole-program message-flow graph (``msgflow``).

Two layers: synthetic-source unit tests for each send/handler resolution
shape (constructor, local, factory, opaque, dynamic tag, f-string
pattern), and full-tree tests asserting the graph covers every protocol
the repo implements — all five broadcast/consensus stacks, the
failure-detector and stubborn-link plumbing, and the membership layer's
kind-string reconfig dispatch.
"""

from __future__ import annotations

import ast
import json
import os
import textwrap

import pytest

from repro.analysis.engine import ModuleContext, ProjectContext
from repro.analysis.msgflow import (build_msgflow, build_msgflow_for_paths,
                                    render_msgflow, write_msgflow)

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, os.pardir, "src", "repro")


def graph_of(extra: str = "", module: str = "repro.core.fixture"):
    # BASE and the snippet carry different literal indentation; dedent
    # each before concatenating or the snippet nests inside BASE.
    text = textwrap.dedent(BASE) + textwrap.dedent(extra)
    ctx = ModuleContext(module, "fixture.py", ast.parse(text), text)
    return build_msgflow(ProjectContext([ctx]))


BASE = """
    class WireMessage:
        type = "wire.base"

    class Ping(WireMessage):
        type = "fx.ping"
        fields = ("payload",)

        def __init__(self, payload):
            self.payload = payload

        @classmethod
        def wrap(cls, payload):
            return cls(payload)
"""


class TestSendResolution:
    def test_inline_constructor(self):
        graph = graph_of("""
            class Proto:
                def poke(self):
                    self.endpoint.send(1, Ping("x"))
        """)
        edge, = graph.senders_for("fx.ping")
        assert edge.resolved == "constructor"
        assert edge.sender == "Proto.poke"
        assert edge.op == "send"

    def test_local_assigned_from_constructor(self):
        graph = graph_of("""
            class Proto:
                def poke(self):
                    note = Ping("x")
                    self.endpoint.multisend(note)
        """)
        edge, = graph.senders_for("fx.ping")
        assert edge.resolved == "local"
        assert edge.op == "multisend"

    def test_classmethod_factory(self):
        graph = graph_of("""
            class Proto:
                def poke(self):
                    self.channel.inner.send(0, 1, Ping.wrap("x"))
        """)
        edge, = graph.senders_for("fx.ping")
        assert edge.resolved == "factory"

    def test_forwarded_parameter_is_opaque(self):
        graph = graph_of("""
            class Proto:
                def forward(self, message):
                    self.endpoint.send(1, message)
        """)
        assert graph.senders_for("fx.ping") == []
        edge, = graph.sends
        assert edge.resolved == "opaque"
        assert edge.tag is None

    def test_dynamic_tag_class(self):
        graph = graph_of("""
            class Scoped(WireMessage):
                def __init__(self, scope, inner):
                    self.type = scope + "::" + inner.type
                    self.inner = inner

            class Proto:
                def poke(self):
                    self.endpoint.send(1, Scoped("s", Ping("x")))
        """)
        assert [m.class_name for m in graph.dynamic_messages] == ["Scoped"]
        dynamic = [e for e in graph.sends if e.resolved == "dynamic"]
        assert len(dynamic) == 1
        assert dynamic[0].class_name == "Scoped"


class TestHandlerResolution:
    def test_type_attribute_registration(self):
        graph = graph_of("""
            class Proto:
                def on_start(self):
                    self.endpoint.register(Ping.type, self._on_ping)

                def _on_ping(self, msg, sender):
                    pass
        """)
        edge, = graph.handlers_for("fx.ping")
        assert edge.handler == "Proto._on_ping"
        assert edge.handler_method == "_on_ping"
        assert edge.registrar_qualname == "repro.core.fixture.Proto"

    def test_string_literal_registration(self):
        graph = graph_of("""
            class Proto:
                def on_start(self):
                    self.node.register_handler("fx.ping", self._on_ping)

                def _on_ping(self, msg, sender):
                    pass
        """)
        edge, = graph.handlers_for("fx.ping")
        assert edge.via == "register_handler"
        assert edge.class_name == "Ping"

    def test_fstring_registration_becomes_pattern(self):
        graph = graph_of("""
            class Proto:
                def attach(self, msg_type, handler):
                    self.endpoint.register(
                        f"{self.scope}::{msg_type}", handler)
        """)
        assert graph.handled_tags() == frozenset()
        pattern, = [e for e in graph.handlers if e.pattern is not None]
        assert pattern.pattern == "{*}::{*}"
        assert graph.has_dynamic_registrations()

    def test_subscribe_queue_registration(self):
        graph = graph_of("""
            class Proto:
                def on_start(self):
                    self.queue = self.endpoint.subscribe_queue("fx.ping")
        """)
        edge, = graph.handlers_for("fx.ping")
        assert edge.handler == "ReceiveQueue.deposit"
        assert edge.via == "subscribe_queue"

    def test_graph_is_cached_on_the_project(self):
        text = textwrap.dedent(BASE)
        ctx = ModuleContext("repro.core.fixture", "fixture.py",
                            ast.parse(text), text)
        project = ProjectContext([ctx])
        assert build_msgflow(project) is build_msgflow(project)


class TestFullTreeGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_msgflow_for_paths([SRC])

    def test_covers_all_five_protocols_and_plumbing(self, graph):
        tags = set(graph.messages)
        # basic/gossip AB, Paxos, Chandra-Toueg, quorum replication,
        # multigroup multicast, sequencer baseline, failure detector,
        # stubborn link.
        assert {"ab.gossip", "ab.state", "paxos.prepare", "paxos.accept",
                "ct.estimate", "ct.decide", "qr.query", "qr.store",
                "mg.announce", "seq.forward", "fd.alive",
                "stub.data"} <= tags

    def test_every_static_tag_is_handled(self, graph):
        # The tree lints MSG001/MSG002-clean, and the graph agrees:
        # every sent tag has a handler and every handled tag a producer.
        sent = graph.sent_tags()
        alive = sent | graph.constructed_tags()
        handled = graph.handled_tags()
        assert sent <= handled
        assert handled <= alive

    def test_multigroup_announce_resolves(self, graph):
        handlers = graph.handlers_for("mg.announce")
        assert [e.handler for e in handlers] == \
            ["MultiGroupMulticast._on_announce"]
        senders = {e.sender for e in graph.senders_for("mg.announce")}
        assert "MultiGroupMulticast._announce_once" in senders

    def test_membership_reconfig_commands_resolve(self, graph):
        assert set(graph.commands) == {"join", "leave", "evict"}
        for op, parts in graph.commands.items():
            producers = {site.module for site in parts["producers"]}
            consumers = {site.module for site in parts["consumers"]}
            assert producers, op
            assert "repro.membership.manager" in consumers, op

    def test_scoped_message_is_dynamic_with_pattern_registration(self,
                                                                 graph):
        assert "ScopedMessage" in \
            [m.class_name for m in graph.dynamic_messages]
        assert graph.has_dynamic_registrations()


class TestEmission:
    def test_write_json_artifact(self, tmp_path):
        out = tmp_path / "msgflow.json"
        graph = write_msgflow([SRC], str(out))
        data = json.loads(out.read_text(encoding="utf-8"))
        assert set(data) == {"messages", "dynamic_messages", "sends",
                             "constructions", "handlers", "commands"}
        assert len(data["messages"]) == len(graph.messages)
        tags = {record["tag"] for record in data["messages"]}
        assert "ab.gossip" in tags
        assert {"join", "leave", "evict"} <= set(data["commands"])

    def test_write_dot_artifact(self, tmp_path):
        out = tmp_path / "msgflow.dot"
        write_msgflow([SRC], str(out))
        text = out.read_text(encoding="utf-8")
        assert text.startswith("digraph msgflow {")
        assert text.rstrip().endswith("}")
        assert '"msg:ab.gossip"' in text
        assert '"cmd:reconfig:join"' in text

    def test_render_defaults_to_json(self):
        graph = graph_of()
        assert render_msgflow(graph, "out.json").startswith("{")
        assert render_msgflow(graph, "out.dot").startswith("digraph")
