"""CFG construction edge cases (repro.analysis.cfg).

Each test asserts the *complete* edge list of a small function against
the expected graph, so a regression in jump routing or merge handling
shows up as a readable diff of ``(src, dst)`` pairs rather than a
downstream rule misfire.  Labels are ``L<lineno>:<StatementType>``.
"""

from __future__ import annotations

import ast
import sys
import textwrap

import pytest

from repro.analysis.cfg import build_cfg


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = next(node for node in tree.body
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)))
    return build_cfg(func)


# -- try/finally with a return inside the try ---------------------------------

def test_try_finally_with_return_inside_try():
    cfg = cfg_of("""
        def f(x):
            try:
                if x:
                    return 1
                touch()
            finally:
                cleanup()
            tail()
    """)
    # The return (L5) must route *through* the merged finally body (L8),
    # which then both forwards the return to exit and falls through to
    # the statement after the try (L9).
    assert cfg.edges() == [
        ("L4:If", "L5:Return"),
        ("L4:If", "L6:Expr"),
        ("L5:Return", "L8:Expr"),
        ("L6:Expr", "L8:Expr"),
        ("L8:Expr", "L9:Expr"),
        ("L8:Expr", "exit"),
        ("L9:Expr", "exit"),
        ("entry", "L4:If"),
    ]


def test_try_except_edges_every_body_statement_to_handler():
    cfg = cfg_of("""
        def f():
            before()
            try:
                first()
                second()
            except ValueError:
                recover()
            tail()
    """)
    # Any statement of the try body may raise: both L5 and L6 edge into
    # the handler head; the try construct itself is transparent.
    assert cfg.edges() == [
        ("L3:Expr", "L5:Expr"),
        ("L5:Expr", "L6:Expr"),
        ("L5:Expr", "L7:ExceptHandler"),
        ("L6:Expr", "L7:ExceptHandler"),
        ("L6:Expr", "L9:Expr"),
        ("L7:ExceptHandler", "L8:Expr"),
        ("L8:Expr", "L9:Expr"),
        ("L9:Expr", "exit"),
        ("entry", "L3:Expr"),
    ]


# -- nested generators --------------------------------------------------------

def test_nested_generator_is_one_opaque_node():
    cfg = cfg_of("""
        def outer(items):
            def inner():
                yield 1
            yield from inner()
            done()
    """)
    # The nested def is a single opaque node: its body contributes no
    # nodes, no edges, and — crucially — no boundary flag (the yield on
    # L4 belongs to inner's scope, not outer's).
    assert cfg.edges() == [
        ("L3:FunctionDef", "L5:Expr"),
        ("L5:Expr", "L6:Expr"),
        ("L6:Expr", "exit"),
        ("entry", "L3:FunctionDef"),
    ]
    assert cfg.boundary_labels() == ["L5:Expr"]  # the yield-from only


# -- while True with break ----------------------------------------------------

def test_while_true_with_break_has_no_false_exit():
    cfg = cfg_of("""
        def f(q):
            while True:
                item = q.get()
                if item is None:
                    break
                emit(item)
            drain()
    """)
    # The only way to L8 (after the loop) is the break on L6 — there is
    # deliberately NO ("L3:While", "L8:Expr") edge, so state at a send
    # inside the loop is never mistaken for the loop-exit state.
    assert cfg.edges() == [
        ("L3:While", "L4:Assign"),
        ("L4:Assign", "L5:If"),
        ("L5:If", "L6:Break"),
        ("L5:If", "L7:Expr"),
        ("L6:Break", "L8:Expr"),
        ("L7:Expr", "L3:While"),
        ("L8:Expr", "exit"),
        ("entry", "L3:While"),
    ]


# -- match statements ---------------------------------------------------------

@pytest.mark.skipif(sys.version_info < (3, 10),
                    reason="match statements need python 3.10+")
def test_match_with_irrefutable_case_does_not_fall_through():
    cfg = cfg_of("""
        def f(msg):
            match msg:
                case ("get", k):
                    fetch(k)
                case _:
                    fallback()
            tail()
    """)
    # ``case _:`` always matches, so the match head must NOT edge
    # straight to L8 — every path goes through one of the case bodies.
    assert cfg.edges() == [
        ("L3:Match", "L5:Expr"),
        ("L3:Match", "L7:Expr"),
        ("L5:Expr", "L8:Expr"),
        ("L7:Expr", "L8:Expr"),
        ("L8:Expr", "exit"),
        ("entry", "L3:Match"),
    ]


@pytest.mark.skipif(sys.version_info < (3, 10),
                    reason="match statements need python 3.10+")
def test_match_without_irrefutable_case_falls_through():
    cfg = cfg_of("""
        def f(msg):
            match msg:
                case ("get", k):
                    fetch(k)
            tail()
    """)
    assert cfg.edges() == [
        ("L3:Match", "L5:Expr"),
        ("L3:Match", "L6:Expr"),
        ("L5:Expr", "L6:Expr"),
        ("L6:Expr", "exit"),
        ("entry", "L3:Match"),
    ]


# -- supporting behaviours the rules depend on --------------------------------

def test_loop_back_edge_and_boundary_flag():
    cfg = cfg_of("""
        def gossip(self):
            while True:
                self.endpoint.multisend("digest")
                yield self.interval
    """)
    assert ("L5:Expr", "L3:While") in cfg.edges()  # loop-carried path
    assert cfg.boundary_labels() == ["L5:Expr"]


def test_return_inside_loop_bypasses_loop_exit():
    cfg = cfg_of("""
        def f(items):
            for item in items:
                if item:
                    return item
            return None
    """)
    assert ("L5:Return", "exit") in cfg.edges()
    assert ("L5:Return", "L6:Return") not in cfg.edges()


# -- async constructs ---------------------------------------------------------

def test_async_for_loops_like_for_and_is_a_boundary():
    cfg = cfg_of("""
        async def f(stream):
            async for item in stream:
                handle(item)
            drain()
    """)
    # Same shape as a plain for-loop (back edge, false exit), but the
    # header is a scheduling boundary: each iteration awaits __anext__.
    assert cfg.edges() == [
        ("L3:AsyncFor", "L4:Expr"),
        ("L3:AsyncFor", "L5:Expr"),
        ("L4:Expr", "L3:AsyncFor"),
        ("L5:Expr", "exit"),
        ("entry", "L3:AsyncFor"),
    ]
    assert cfg.boundary_kinds() == {"L3:AsyncFor": ("async-for",)}


def test_async_with_header_and_inner_await_are_boundaries():
    cfg = cfg_of("""
        async def f(self):
            async with self.lock:
                await self.flush()
            tail()
    """)
    assert cfg.edges() == [
        ("L3:AsyncWith", "L4:Expr"),
        ("L4:Expr", "L5:Expr"),
        ("L5:Expr", "exit"),
        ("entry", "L3:AsyncWith"),
    ]
    assert cfg.boundary_kinds() == {
        "L3:AsyncWith": ("async-with",),
        "L4:Expr": ("await",),
    }


def test_awaited_gather_records_both_kinds():
    cfg = cfg_of("""
        async def f(self):
            results = await asyncio.gather(self.a(), self.b())
            done(results)
    """)
    assert cfg.boundary_kinds() == {"L3:Assign": ("await", "gather")}


def test_bare_gather_name_is_still_a_boundary():
    cfg = cfg_of("""
        def f(self):
            yield gather(self.a(), self.b())
            done()
    """)
    # ``from asyncio import gather`` style: the bare name counts, and
    # the kinds merge with the yield that drives it.
    assert cfg.boundary_kinds() == {"L3:Expr": ("gather", "yield")}


def test_nested_async_scope_is_opaque():
    cfg = cfg_of("""
        async def outer(self):
            async def helper():
                await probe()
            self.handler = helper
    """)
    # The await belongs to helper's scope: outer has no boundary nodes.
    assert cfg.boundary_kinds() == {}
