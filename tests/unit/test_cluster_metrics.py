"""Unit tests for metric assembly at the cluster level."""

from __future__ import annotations

import pytest

from repro.harness.cluster import Cluster, ClusterConfig
from repro.sim.faults import FaultSchedule
from repro.transport.network import NetworkConfig
from repro.workloads.generators import ScheduledWorkload


def run_basic(seed=90, faults=None):
    cluster = Cluster(ClusterConfig(
        n=3, seed=seed, protocol="basic",
        network=NetworkConfig(loss_rate=0.05)))
    cluster.start()
    if faults is not None:
        faults.install(cluster.sim, cluster.nodes)
    ScheduledWorkload([(0.5 + 0.2 * j, j % 3, ("m", j))
                       for j in range(9)]).install(cluster)
    cluster.run(until=15.0)
    cluster.settle(limit=120.0)
    return cluster


class TestRunMetricsAssembly:
    def test_counts_are_consistent(self):
        cluster = run_basic()
        metrics = cluster.metrics()
        assert metrics.messages_broadcast == 9
        assert metrics.messages_delivered == 9
        assert metrics.duration == cluster.sim.now
        assert metrics.throughput == pytest.approx(
            9 / cluster.sim.now)

    def test_storage_views_cover_every_node(self):
        cluster = run_basic(seed=91)
        metrics = cluster.metrics()
        assert set(metrics.storage_by_node) == {0, 1, 2}
        assert metrics.total_log_ops() == sum(
            node.storage.metrics.log_ops
            for node in cluster.nodes.values())
        assert metrics.total_bytes_logged() > 0
        for node_id in range(3):
            assert metrics.storage_residency[node_id] > 0

    def test_prefix_aggregation_sums_nodes(self):
        cluster = run_basic(seed=92)
        metrics = cluster.metrics()
        per_node_consensus = sum(
            node.storage.metrics.ops_by_prefix.get("consensus", 0)
            for node in cluster.nodes.values())
        assert metrics.log_ops_by_prefix()["consensus"] == \
            per_node_consensus
        assert set(metrics.bytes_by_prefix()) >= {"consensus", "paxos"}

    def test_node_stats_reflect_faults(self):
        faults = FaultSchedule().crash(3.0, 1).recover(5.0, 1)
        cluster = run_basic(seed=93, faults=faults)
        stats = cluster.metrics().node_stats
        assert stats[1]["crashes"] == 1
        assert stats[1]["recoveries"] == 1
        assert stats[0]["crashes"] == 0
        assert stats[1]["uptime"] < stats[0]["uptime"]
        assert stats[1]["up"] is True
        assert len(stats[1]["recovery_durations"]) == 1
        assert stats[1]["replayed_rounds"] >= 0

    def test_network_snapshot(self):
        cluster = run_basic(seed=94)
        metrics = cluster.metrics()
        network = metrics.network
        assert network["sent"] > 0
        assert network["delivered"] <= network["sent"] + \
            network["duplicated"]
        assert network["bytes_sent"] > 0

    def test_latency_summary_shape(self):
        cluster = run_basic(seed=95)
        summary = cluster.metrics().latency_summary()
        assert summary["count"] == 9
        assert 0 < summary["p50"] <= summary["p95"] <= summary["max"]
        assert summary["min"] > 0

    def test_metrics_callable_mid_run(self):
        cluster = Cluster(ClusterConfig(n=3, seed=96, protocol="basic"))
        cluster.start()
        cluster.run(until=1.0)
        metrics = cluster.metrics()  # nothing delivered yet
        assert metrics.messages_delivered == 0
        assert metrics.throughput == 0.0
        assert metrics.latency_summary()["count"] == 0

    def test_app_accessor(self):
        cluster = run_basic(seed=97)
        from repro.apps.counter import SequenceRecorder
        assert isinstance(cluster.app(0), SequenceRecorder)
        assert len(cluster.app(0).entries) == 9


class TestChaosCounters:
    """Stubborn-channel and fault-injection fields of RunMetrics."""

    def test_plain_run_reports_no_chaos_counters(self):
        metrics = run_basic(seed=98).metrics()
        assert metrics.stubborn is None
        assert metrics.faults_injected is None
        assert metrics.total_retransmissions() == 0
        assert metrics.total_acks() == 0
        assert metrics.total_quarantined() == 0
        assert metrics.total_faults_injected() == 0

    def test_stubborn_run_reports_retransmission_counters(self):
        cluster = Cluster(ClusterConfig(
            n=3, seed=99, protocol="basic", stubborn=True,
            network=NetworkConfig(loss_rate=0.2)))
        cluster.start()
        ScheduledWorkload([(0.5 + 0.2 * j, j % 3, ("m", j))
                           for j in range(6)]).install(cluster)
        cluster.run(until=15.0)
        cluster.settle(limit=120.0)
        metrics = cluster.metrics()
        assert metrics.stubborn is not None
        assert metrics.total_retransmissions() > 0
        assert metrics.total_acks() > 0
        assert metrics.total_retransmissions() == \
            cluster.stubborn.metrics.retransmissions
        assert metrics.total_acks() == \
            cluster.stubborn.metrics.acks_received

    def test_quarantine_counter_sums_storage_metrics(self):
        cluster = run_basic(seed=100)
        # Simulate what a recovery scan records on corruption.
        cluster.nodes[1].storage.metrics.quarantined = 2
        cluster.nodes[2].storage.metrics.quarantined = 1
        assert cluster.metrics().total_quarantined() == 3

    def test_faults_injected_total(self):
        from repro.metrics.collector import RunMetrics
        metrics = run_basic(seed=101).metrics()
        rebuilt = RunMetrics(
            metrics.duration, metrics.collector,
            metrics.storage_by_node, metrics.storage_prefix_ops,
            metrics.storage_prefix_bytes, metrics.storage_residency,
            metrics.network, metrics.node_stats,
            faults_injected={"crash": 2, "torn_write": 1})
        assert rebuilt.total_faults_injected() == 3
