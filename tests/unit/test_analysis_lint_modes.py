"""Tests for the lint CLI execution modes: --jobs and --baseline.

The parallel path must be byte-identical to the serial one in every
output format, and the baseline must subtract exactly the recorded
findings (by renumbering-stable fingerprint), no more, no fewer.
"""

from __future__ import annotations

import argparse
import json

import pytest

from repro.analysis import analyze_paths
from repro.analysis.baseline import (filter_baselined, fingerprint,
                                     load_baseline, write_baseline)
from repro.analysis.engine import Finding, Report
from repro.analysis.lint import parse_jobs
from repro.cli import main as cli_main
from repro.errors import AnalysisError


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "one.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n")
    (pkg / "two.py").write_text(
        "import time\n\n\ndef tick():\n    return time.monotonic()\n")
    (pkg / "three.py").write_text("VALUE = 3\n")
    return tmp_path


# -- --jobs: parallel execution -----------------------------------------------

def test_parse_jobs_values():
    assert parse_jobs("2") == 2
    assert parse_jobs("auto") >= 1
    for bad in ("0", "-1", "many"):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_jobs(bad)


def test_parallel_report_matches_serial(tree):
    serial = analyze_paths([str(tree)])
    parallel = analyze_paths([str(tree)], jobs=2)
    assert parallel.files_analyzed == serial.files_analyzed
    assert [f.to_dict() for f in parallel.findings] == \
           [f.to_dict() for f in serial.findings]
    assert serial.findings  # the fixture tree must actually violate


@pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
def test_parallel_cli_output_is_byte_identical(tree, fmt, capsys):
    status = cli_main(["lint", str(tree), "--format", fmt])
    serial_out = capsys.readouterr().out
    parallel_status = cli_main(
        ["lint", str(tree), "--format", fmt, "--jobs", "2"])
    parallel_out = capsys.readouterr().out
    assert status == parallel_status == 1
    assert parallel_out == serial_out


def test_parallel_respects_suppressions(tree):
    target = tree / "repro" / "sim" / "one.py"
    target.write_text(target.read_text().replace(
        "    return time.time()",
        "    return time.time()"
        "  # repro: noqa(DET001) -- fixture: wall-clock wanted"))
    serial = analyze_paths([str(tree)])
    parallel = analyze_paths([str(tree)], jobs=2)
    assert [f.to_dict() for f in parallel.findings] == \
           [f.to_dict() for f in serial.findings]
    assert all(f.path != str(target) for f in parallel.findings)


# -- --baseline / --write-baseline --------------------------------------------

def test_write_then_apply_baseline_round_trip(tree, tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    status = cli_main(["lint", str(tree),
                       "--write-baseline", str(baseline)])
    out = capsys.readouterr().out
    assert status == 0
    assert "recorded 2 finding(s)" in out
    document = json.loads(baseline.read_text())
    assert document["version"] == 1
    assert sum(e["count"] for e in document["entries"]) == 2
    # Same tree + baseline -> clean exit.
    status = cli_main(["lint", str(tree), "--baseline", str(baseline)])
    capsys.readouterr()
    assert status == 0


def test_baseline_reports_only_regressions(tree, tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    cli_main(["lint", str(tree), "--write-baseline", str(baseline)])
    capsys.readouterr()
    fresh = tree / "repro" / "sim" / "four.py"
    fresh.write_text("import time\n\n\ndef now():\n    return time.time()\n")
    status = cli_main(["lint", str(tree), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert status == 1
    assert "four.py" in out
    assert "one.py" not in out and "two.py" not in out


def test_baseline_survives_renumbering(tree, tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    cli_main(["lint", str(tree), "--write-baseline", str(baseline)])
    capsys.readouterr()
    target = tree / "repro" / "sim" / "one.py"
    target.write_text("# moved\n# down\n" + target.read_text())
    status = cli_main(["lint", str(tree), "--baseline", str(baseline)])
    capsys.readouterr()
    assert status == 0  # same finding, new line number: still baselined


def test_surplus_instances_of_a_baselined_finding_are_regressions():
    finding = Finding("DET001", "repro/sim/x.py", 4, 11, "time.time()")
    twin = Finding("DET001", "repro/sim/x.py", 9, 11, "time.time()")
    report = Report([finding, twin], 1)
    baseline = load_baseline(write_baseline(Report([finding], 1)))
    filtered = filter_baselined(report, baseline)
    assert len(filtered.findings) == 1  # count consumed once


def test_fingerprint_masks_numbers_and_separators():
    left = Finding("WAL003", "repro\\core\\basic.py", 10, 0,
                   "send 3 calls deep")
    right = Finding("WAL003", "repro/core/basic.py", 99, 4,
                    "send 7 calls deep")
    assert fingerprint(left) == fingerprint(right)


def test_missing_or_malformed_baseline_is_a_clean_error(tree, tmp_path,
                                                        capsys):
    status = cli_main(["lint", str(tree),
                       "--baseline", str(tmp_path / "nope.json")])
    captured = capsys.readouterr()
    assert status == 2
    assert "error:" in captured.err and "Traceback" not in captured.err
    bad = tmp_path / "bad.json"
    bad.write_text("{\"version\": 99}")
    status = cli_main(["lint", str(tree), "--baseline", str(bad)])
    captured = capsys.readouterr()
    assert status == 2
    assert "not a lint baseline" in captured.err


def test_load_baseline_rejects_malformed_entries():
    with pytest.raises(AnalysisError):
        load_baseline(json.dumps(
            {"version": 1, "entries": [{"path": "x"}]}))
    with pytest.raises(AnalysisError):
        load_baseline("not json {")


# -- --emit-msgflow: graph artifact -------------------------------------------

def test_emit_msgflow_writes_artifact_alongside_report(tmp_path, capsys):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "proto.py").write_text(
        "class WireMessage:\n"
        "    type = \"wire.base\"\n"
        "\n"
        "\n"
        "class Ping(WireMessage):\n"
        "    type = \"fx.ping\"\n"
        "\n"
        "    def __init__(self, payload):\n"
        "        self.payload = payload\n"
        "\n"
        "\n"
        "class Proto:\n"
        "\n"
        "    def on_start(self):\n"
        "        self.endpoint.register(Ping.type, self._on_ping)\n"
        "\n"
        "    def _on_ping(self, msg, sender):\n"
        "        self.last = msg.payload\n"
        "\n"
        "    def poke(self):\n"
        "        self.endpoint.send(1, Ping(\"x\"))\n")
    out = tmp_path / "msgflow.json"
    status = cli_main(["lint", str(pkg), "--emit-msgflow", str(out)])
    assert status in (0, 1)  # the report still runs and still gates
    printed = capsys.readouterr().out
    assert "msgflow: 2 message type(s)" in printed
    data = json.loads(out.read_text(encoding="utf-8"))
    tags = {record["tag"] for record in data["messages"]}
    assert "fx.ping" in tags
    assert data["handlers"][0]["handler"] == "Proto._on_ping"
    assert data["sends"][0]["tag"] == "fx.ping"


def test_emit_msgflow_dot_via_module_cli(tmp_path, capsys):
    from repro.analysis.lint import main as lint_main
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "proto.py").write_text("VALUE = 1\n")
    out = tmp_path / "msgflow.dot"
    status = lint_main([str(pkg), "--emit-msgflow", str(out)])
    assert status == 0
    assert out.read_text(encoding="utf-8").startswith("digraph msgflow {")
