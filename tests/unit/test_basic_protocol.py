"""Unit tests for the basic Atomic Broadcast protocol (Figure 2)."""

from __future__ import annotations

import pytest

from repro.core.basic import BasicAtomicBroadcast
from repro.errors import BroadcastError
from repro.harness.cluster import Cluster, ClusterConfig
from repro.transport.network import NetworkConfig


def build(n=3, seed=0, loss=0.0, **kwargs):
    cluster = Cluster(ClusterConfig(
        n=n, seed=seed, protocol="basic",
        network=NetworkConfig(loss_rate=loss), **kwargs))
    cluster.start()
    return cluster


def sequences(cluster):
    return {i: [m.payload for m in ab.deliver_sequence()]
            for i, ab in cluster.abcasts.items()}


class TestOrdering:
    def test_single_broadcast_delivered_everywhere(self):
        cluster = build()
        cluster.sim.schedule(0.5, cluster.submit, 0, "hello")
        cluster.run(until=10.0)
        assert all(seq == ["hello"] for seq in sequences(cluster).values())

    def test_identical_delivery_order(self):
        cluster = build(seed=1)
        for i in range(3):
            for j in range(5):
                cluster.sim.schedule(0.5 + 0.1 * j + 0.03 * i,
                                     cluster.submit, i, f"p{i}m{j}")
        cluster.run(until=20.0)
        seqs = sequences(cluster)
        assert len(seqs[0]) == 15
        assert seqs[0] == seqs[1] == seqs[2]

    def test_batch_order_follows_deterministic_rule(self):
        """Messages decided in one round are delivered sorted by id."""
        cluster = build()
        # Submit from all nodes at the same instant: they gossip into one
        # round's proposal at the eventual proposer.
        for i in (2, 0, 1):
            cluster.sim.schedule(0.5, cluster.submit, i, f"from-{i}")
        cluster.run(until=15.0)
        seq = sequences(cluster)[0]
        # Within any single round's batch the sender order is ascending;
        # across the whole run each sender's own messages stay FIFO.
        assert sorted(seq) == ["from-0", "from-1", "from-2"]

    def test_no_duplicates_despite_duplicating_network(self):
        cluster = Cluster(ClusterConfig(
            n=3, seed=2, protocol="basic",
            network=NetworkConfig(duplicate_rate=0.5)))
        cluster.start()
        for j in range(10):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.submit, 0, f"m{j}")
        cluster.run(until=20.0)
        for seq in sequences(cluster).values():
            assert len(seq) == len(set(seq)) == 10

    def test_rounds_advance_only_with_work(self):
        """No unnecessary consensus instances without traffic (§4.2)."""
        cluster = build()
        cluster.run(until=10.0)
        assert all(ab.k == 0 for ab in cluster.abcasts.values())
        assert all(consensus.logged_instances() == {}
                   for consensus in cluster.consensuses.values())

    def test_delivery_over_lossy_network(self):
        cluster = build(seed=3, loss=0.25)
        for j in range(8):
            cluster.sim.schedule(0.5 + 0.3 * j, cluster.submit, 1, f"m{j}")
        cluster.run(until=60.0)
        seqs = sequences(cluster)
        assert seqs[0] == seqs[1] == seqs[2]
        assert len(seqs[0]) == 8


class TestBroadcastSemantics:
    def test_blocking_broadcast_returns_after_ordering(self):
        cluster = build()
        done = []

        def client():
            message = yield from cluster.abcasts[0].broadcast("blocked")
            done.append((cluster.sim.now, message.payload))

        cluster.nodes[0].spawn(client(), "client")
        cluster.run(until=15.0)
        assert len(done) == 1
        assert done[0][1] == "blocked"
        assert done[0][0] > 0  # it took at least one consensus round
        assert "blocked" in sequences(cluster)[0]

    def test_submit_on_down_node_rejected(self):
        cluster = build()
        cluster.nodes[0].crash()
        with pytest.raises(BroadcastError):
            cluster.abcasts[0].submit("nope")

    def test_message_ids_unique_across_recoveries(self):
        """The durable incarnation counter prevents id reuse (§2.2)."""
        cluster = build()
        cluster.run(until=0.1)
        first = cluster.abcasts[0].submit("before")
        cluster.nodes[0].crash()
        cluster.run(until=1.0)
        cluster.nodes[0].recover()
        cluster.run(until=1.1)
        second = cluster.abcasts[0].submit("after")
        assert first.id != second.id
        assert second.id.incarnation > first.id.incarnation

    def test_delivered_count_and_sequence_agree(self):
        cluster = build()
        for j in range(4):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.submit, 0, j)
        cluster.run(until=15.0)
        ab = cluster.abcasts[1]
        assert ab.delivered_count() == len(ab.deliver_sequence()) == 4


class TestGossip:
    def test_gossip_disseminates_unordered_messages(self):
        """A message submitted at one node is proposed by all good nodes
        even if the submitter never leads consensus."""
        cluster = build(seed=4)
        cluster.sim.schedule(0.5, cluster.submit, 2, "from-follower")
        cluster.run(until=10.0)
        assert all(seq == ["from-follower"]
                   for seq in sequences(cluster).values())

    def test_gossip_advances_lagging_round_counter(self):
        cluster = build(seed=5)
        cluster.run(until=1.0)
        cluster.nodes[2].crash()
        for j in range(5):
            cluster.sim.schedule(1.5 + 0.4 * j, cluster.submit, 0, f"m{j}")
        cluster.run(until=10.0)
        assert cluster.abcasts[0].k >= 1
        cluster.nodes[2].recover()
        cluster.run(until=40.0)
        assert cluster.abcasts[2].k == cluster.abcasts[0].k
        assert sequences(cluster)[2] == sequences(cluster)[0]


class TestReplay:
    def test_recovery_rebuilds_agreed_queue(self):
        cluster = build(seed=6)
        for j in range(6):
            cluster.sim.schedule(0.5 + 0.3 * j, cluster.submit, 0, f"m{j}")
        cluster.run(until=15.0)
        before = sequences(cluster)[1]
        cluster.nodes[1].crash()
        cluster.run(until=16.0)
        cluster.nodes[1].recover()
        cluster.run(until=45.0)
        assert sequences(cluster)[1][:len(before)] == before
        assert cluster.abcasts[1].replayed_rounds > 0

    def test_property_p4_replay_proposes_logged_values(self):
        """After recovery the node re-proposes exactly its logged values."""
        cluster = build(seed=7)
        for j in range(4):
            cluster.sim.schedule(0.5 + 0.3 * j, cluster.submit, 1, f"m{j}")
        cluster.run(until=15.0)
        logged_before = cluster.consensuses[1].logged_instances()
        cluster.nodes[1].crash()
        cluster.nodes[1].recover()
        cluster.run(until=45.0)
        logged_after = cluster.consensuses[1].logged_instances()
        for k, value in logged_before.items():
            assert logged_after[k] == value

    def test_minimal_logging_only_consensus_writes(self):
        """Section 4.3: AB performs no per-round writes of its own; the
        only 'ab' writes are one incarnation bump per start."""
        cluster = build(seed=8)
        for j in range(10):
            cluster.sim.schedule(0.5 + 0.2 * j, cluster.submit, 0, f"m{j}")
        cluster.run(until=30.0)
        for node in cluster.nodes.values():
            by_prefix = node.storage.metrics.ops_by_prefix
            assert by_prefix.get("ab", 0) == 1  # the incarnation bump
            assert by_prefix.get("consensus", 0) > 0

    def test_replay_is_deaf_to_new_rounds_until_caught_up(self):
        """A recovering node finishes replay before joining new rounds;
        its final queue still matches everyone (liveness + safety)."""
        cluster = build(seed=9)
        for j in range(5):
            cluster.sim.schedule(0.5 + 0.3 * j, cluster.submit, 0, f"a{j}")
        cluster.run(until=12.0)
        cluster.nodes[2].crash()
        for j in range(5):
            cluster.sim.schedule(12.5 + 0.3 * j, cluster.submit, 0, f"b{j}")
        cluster.run(until=20.0)
        cluster.nodes[2].recover()
        cluster.run(until=60.0)
        seqs = sequences(cluster)
        assert seqs[2] == seqs[0]
        assert len(seqs[2]) == 10
