"""Unit tests for the membership layer: View, the reconfiguration codec
and the per-node ViewManager."""

from __future__ import annotations

import pytest

from repro.core.ids import MessageId
from repro.core.messages import AppMessage
from repro.errors import SimulationError
from repro.harness.cluster import Cluster, ClusterConfig
from repro.membership import View, parse_reconfig, reconfig_payload


class TestView:
    def test_members_sorted_and_deduped(self):
        view = View(0, [3, 1, 2, 1])
        assert view.members == (1, 2, 3)

    def test_initial_is_epoch_zero(self):
        assert View.initial(range(3)) == View(0, [0, 1, 2])

    def test_immutable(self):
        view = View.initial(range(3))
        with pytest.raises(AttributeError):
            view.epoch = 7

    def test_negative_epoch_rejected(self):
        with pytest.raises(SimulationError):
            View(-1, [0])

    def test_empty_view_rejected(self):
        with pytest.raises(SimulationError):
            View(0, [])

    def test_join_advances_epoch(self):
        view = View.initial(range(3)).apply("join", 3)
        assert view == View(1, [0, 1, 2, 3])

    def test_leave_and_evict_remove(self):
        view = View.initial(range(3))
        assert view.apply("leave", 2).members == (0, 1)
        assert view.apply("evict", 0).members == (1, 2)

    def test_noop_commands_keep_epoch(self):
        view = View.initial(range(3))
        assert view.apply("join", 1) is view
        assert view.apply("leave", 9) is view

    def test_last_member_cannot_leave(self):
        view = View(4, [5])
        assert view.apply("evict", 5) is view

    def test_unknown_op_rejected(self):
        with pytest.raises(SimulationError):
            View.initial(range(2)).apply("swap", 1)

    def test_quorum_is_majority(self):
        assert View.initial(range(3)).quorum_size == 2
        assert View.initial(range(4)).quorum_size == 3
        assert View(1, [0, 1, 5, 6]).quorum_size == 3

    def test_ballot_stride_covers_member_ids(self):
        # Contiguous ids: stride == n (the pre-membership ballot spacing).
        assert View.initial(range(5)).ballot_stride == 5
        # Sparse ids: stride must exceed the largest member id so
        # counter * stride + node_id stays leader-disjoint.
        assert View(3, [0, 1, 6]).ballot_stride == 7

    def test_plain_roundtrip(self):
        view = View(2, [0, 4, 7])
        assert View.from_plain(view.to_plain()) == view


class TestReconfigCodec:
    def test_roundtrip(self):
        for op in ("join", "leave", "evict"):
            assert parse_reconfig(reconfig_payload(op, 5)) == (op, 5)

    def test_ordinary_payloads_pass_through(self):
        for payload in (None, 7, "hello", "reconfig:", "reconfig:fire:1",
                        "reconfig:join:x", ("reconfig", "join", 1)):
            assert parse_reconfig(payload) is None

    def test_unknown_op_rejected(self):
        with pytest.raises(SimulationError):
            reconfig_payload("restart", 1)


class TestViewManager:
    def _cluster(self, n=3):
        cluster = Cluster(ClusterConfig(n=n, seed=0,
                                        protocol="alternative"))
        cluster.start()
        return cluster

    def test_every_stack_boots_with_initial_view(self):
        cluster = self._cluster()
        for manager in cluster.views.values():
            assert manager.view == View.initial(range(3))

    def test_ordered_reconfig_installs_everywhere(self):
        cluster = self._cluster()
        cluster.submit_reconfig("leave", 2)
        cluster.sim.run(until=5.0)
        for node_id in (0, 1):
            assert cluster.views[node_id].view == View(1, [0, 1])

    def test_replayed_command_not_applied_twice(self):
        manager = self._cluster().views[0]
        command = AppMessage(MessageId(1, 1, 1),
                             reconfig_payload("leave", 2))
        manager.on_deliver(command)
        assert manager.view.epoch == 1
        # Recovery replay re-delivers the same agreed prefix: the
        # applied-id set, not command no-op-ness, must stop the re-run
        # (a second leave(2) is a no-op anyway; make it observable by
        # re-adding 2 first through a *different* command).
        manager.on_deliver(AppMessage(MessageId(1, 1, 2),
                                      reconfig_payload("join", 2)))
        assert manager.view.epoch == 2
        manager.on_deliver(command)
        assert manager.view.epoch == 2  # replay skipped, not re-applied

    def test_view_survives_crash_recovery(self):
        cluster = self._cluster()
        cluster.submit_reconfig("leave", 2)
        cluster.sim.run(until=5.0)
        cluster.crash(0)
        cluster.recover(0)
        cluster.sim.run(until=6.0)
        assert cluster.views[0].view == View(1, [0, 1])

    def test_adopt_plain_stale_view_keeps_local(self):
        manager = self._cluster().views[0]
        manager.on_deliver(AppMessage(MessageId(1, 1, 1),
                                      reconfig_payload("leave", 2)))
        manager.adopt_plain([0, [0, 1, 2], [[9, 1, 1]]])
        assert manager.view.epoch == 1
        # ... but the stale sender's applied-id knowledge is merged.
        assert MessageId(9, 1, 1) in manager._applied

    def test_adopt_plain_newer_view_installs(self):
        manager = self._cluster().views[0]
        manager.adopt_plain([2, [0, 1], [[1, 1, 1], [1, 1, 2]]])
        assert manager.view == View(2, [0, 1])
        assert manager.adoptions == 1

    def test_multisend_targets_include_non_member_sender(self):
        manager = self._cluster().views[0]
        assert manager.multisend_targets(1) == (0, 1, 2)
        assert manager.multisend_targets(7) == (0, 1, 2, 7)


class TestClusterConfigValidation:
    def test_sequencer_outside_member_set_rejected(self):
        with pytest.raises(SimulationError):
            ClusterConfig(n=3, protocol="sequencer", sequencer_id=3)

    def test_sequencer_member_accepted(self):
        config = ClusterConfig(n=3, protocol="sequencer", sequencer_id=2)
        assert config.sequencer_id == 2

    def test_other_protocols_ignore_sequencer_id(self):
        # The knob only constrains the sequencer baseline.
        ClusterConfig(n=3, protocol="basic", sequencer_id=99)
