"""Unit tests for stable storage (memory and file backends, codec)."""

from __future__ import annotations

import pytest

from repro.core.ids import MessageId
from repro.core.messages import AppMessage
from repro.errors import StorageError
from repro.storage import codec
from repro.storage.file import FileStorage
from repro.storage.memory import MemoryStorage


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        return MemoryStorage()
    return FileStorage(str(tmp_path / "store"))


class TestLogRetrieve:
    def test_round_trip(self, storage):
        storage.log("a", {"x": 1})
        assert storage.retrieve("a") == {"x": 1}

    def test_missing_key_default(self, storage):
        assert storage.retrieve("nope") is None
        assert storage.retrieve("nope", 42) == 42

    def test_structured_keys_normalise(self, storage):
        storage.log(("paxos", 3, "acceptor"), (1, 2, None))
        assert storage.retrieve("paxos/3/acceptor") == (1, 2, None)

    def test_overwrite(self, storage):
        storage.log("k", 1)
        storage.log("k", 2)
        assert storage.retrieve("k") == 2

    def test_contains(self, storage):
        assert not storage.contains("k")
        storage.log("k", None)
        assert storage.contains("k")

    def test_values_are_isolated_from_caller(self, storage):
        value = {"inner": [1, 2]}
        storage.log("k", value)
        value["inner"].append(3)  # mutate after logging
        assert storage.retrieve("k") == {"inner": [1, 2]}
        got = storage.retrieve("k")
        got["inner"].append(99)  # mutate what we read back
        assert storage.retrieve("k") == {"inner": [1, 2]}

    def test_delete(self, storage):
        storage.log("k", 1)
        storage.delete("k")
        assert not storage.contains("k")
        storage.delete("k")  # idempotent

    def test_keys_iteration_sorted(self, storage):
        for key in ("b", "a/1", "a/2"):
            storage.log(key, 0)
        assert list(storage.keys()) == ["a/1", "a/2", "b"]
        assert list(storage.keys("a")) == ["a/1", "a/2"]

    def test_delete_prefix(self, storage):
        for key in ("ab/1", "ab/2", "abc", "other"):
            storage.log(key, 0)
        deleted = storage.delete_prefix("ab")
        # "abc" is NOT under the "ab" prefix (segment boundary matters).
        assert deleted == 2
        assert list(storage.keys()) == ["abc", "other"]


class TestAppendLogs:
    def test_append_accumulates(self, storage):
        storage.append("log", 1)
        storage.append("log", 2)
        assert storage.retrieve_list("log") == [1, 2]

    def test_retrieve_list_missing(self, storage):
        assert storage.retrieve_list("nope") == []

    def test_append_to_non_list_rejected(self, storage):
        storage.log("k", "scalar")
        with pytest.raises(StorageError):
            storage.append("k", 1)

    def test_retrieve_list_on_non_list_rejected(self, storage):
        storage.log("k", "scalar")
        with pytest.raises(StorageError):
            storage.retrieve_list("k")


class TestMetrics:
    def test_log_ops_counted(self, storage):
        storage.log("a", 1)
        storage.append("b", 2)
        assert storage.metrics.log_ops == 2

    def test_bytes_by_value_size(self, storage):
        storage.log("a", "x" * 100)
        assert storage.metrics.bytes_logged >= 100

    def test_append_charges_only_new_item(self, storage):
        storage.log("full", list(range(100)))
        full_bytes = storage.metrics.bytes_logged
        storage.append("incr", 1)
        incr_bytes = storage.metrics.bytes_logged - full_bytes
        assert incr_bytes < full_bytes / 10

    def test_prefix_attribution(self, storage):
        storage.log(("consensus", 0, "proposal"), "v")
        storage.log(("consensus", 1, "proposal"), "v")
        storage.log(("ab", "ckpt"), "c")
        assert storage.metrics.ops_by_prefix == {"consensus": 2, "ab": 1}

    def test_retrievals_counted(self, storage):
        storage.retrieve("a")
        storage.retrieve("b")
        assert storage.metrics.retrievals == 2

    def test_residency_tracks_live_values_only(self, storage):
        storage.log("big", "x" * 1000)
        before = storage.total_bytes_stored()
        storage.log("big", "y")  # overwrite shrinks residency
        assert storage.total_bytes_stored() < before

    def test_bad_key_type_rejected(self, storage):
        with pytest.raises(StorageError):
            storage.log(123, "v")


class TestFileDurability:
    def test_values_survive_reopen(self, tmp_path):
        path = str(tmp_path / "store")
        first = FileStorage(path)
        first.log(("consensus", 0, "proposal"), ("a", 1))
        second = FileStorage(path)  # a brand-new process incarnation
        assert second.retrieve(("consensus", 0, "proposal")) == ("a", 1)

    def test_keys_with_slashes_escape_correctly(self, tmp_path):
        storage = FileStorage(str(tmp_path / "store"))
        storage.log(("a", "b%c", 1), "v")
        assert list(storage.keys()) == ["a/b%c/1"]
        assert FileStorage(str(tmp_path / "store")).retrieve("a/b%c/1") == "v"

    def test_app_messages_round_trip_through_files(self, tmp_path):
        storage = FileStorage(str(tmp_path / "store"))
        batch = frozenset({AppMessage(MessageId(1, 1, 3), ("put", "k", 5)),
                           AppMessage(MessageId(2, 1, 1), None)})
        storage.log("proposal", batch)
        got = FileStorage(str(tmp_path / "store")).retrieve("proposal")
        assert got == batch
        assert {m.payload for m in got} == {("put", "k", 5), None}


class TestCodec:
    def test_round_trip_primitives(self):
        for value in (None, True, 0, -5, 2.5, "s", [1, [2]], (1, (2,)),
                      {1, 2}, frozenset({3}), {"k": "v"}, {1: "nonstr"}):
            assert codec.decode(codec.encode(value)) == value

    def test_dict_with_reserved_key(self):
        value = {"__t": "sneaky"}
        assert codec.decode(codec.encode(value)) == value

    def test_unregistered_type_rejected(self):
        class Mystery:
            pass

        with pytest.raises(StorageError):
            codec.encode(Mystery())

    def test_duplicate_tag_rejected(self):
        with pytest.raises(StorageError):
            codec.register(int, "AppMessage", lambda x: x, lambda x: x)

    def test_unknown_tag_rejected(self):
        with pytest.raises(StorageError):
            codec.decode('{"__t": "NoSuchTag", "v": 1}')

    def test_deterministic_encoding(self):
        value = {"b": 1, "a": 2}
        assert codec.encode(value) == codec.encode({"a": 2, "b": 1})


class TestCodecNonFiniteFloats:
    """The original defect: non-finite floats leaked into the JSON text
    as bare ``NaN``/``Infinity`` tokens — valid to Python's reader,
    rejected by every strict JSON parser, and silently corrupting any
    cross-tool consumer of the stored files.  They now travel under an
    explicit tag."""

    def test_nan_round_trips(self):
        import math
        got = codec.decode(codec.encode(math.nan))
        assert isinstance(got, float) and math.isnan(got)

    def test_infinities_round_trip(self):
        import math
        for value in (math.inf, -math.inf):
            assert codec.decode(codec.encode(value)) == value

    def test_negative_zero_round_trips_with_sign(self):
        import math
        got = codec.decode(codec.encode(-0.0))
        assert got == 0.0 and math.copysign(1.0, got) == -1.0

    def test_encoded_text_is_strict_json(self):
        """The encoded form must parse under a reader with the non-JSON
        constants disabled — i.e. no bare NaN/Infinity tokens."""
        import json
        import math

        def reject(token):
            raise AssertionError(f"bare non-JSON token {token!r} in output")

        for value in (math.nan, math.inf, -math.inf,
                      [1.5, math.nan], {"k": (math.inf, -0.0)}):
            json.loads(codec.encode(value), parse_constant=reject)

    def test_non_finite_inside_containers(self):
        import math
        value = {"floats": [math.inf, -math.inf], "t": (1, -0.0)}
        got = codec.decode(codec.encode(value))
        assert got["floats"] == [math.inf, -math.inf]
        assert got["t"][0] == 1
        assert math.copysign(1.0, got["t"][1]) == -1.0


class TestSnapshotIsolation:
    """The immutability-aware snapshot path of MemoryStorage."""

    def test_unknown_isolation_mode_rejected(self):
        with pytest.raises(StorageError):
            MemoryStorage(isolation="telepathy")

    def test_immutable_values_are_shared_not_copied(self):
        storage = MemoryStorage()
        message = AppMessage(MessageId(1, 0, 7), ("payload", 3))
        storage.log("m", message)
        assert storage.retrieve("m") is message  # no copy needed
        value = ("a", 1, MessageId(0, 0, 1))
        storage.log("t", value)
        assert storage.retrieve("t") is value

    def test_mutable_containers_still_isolated(self):
        storage = MemoryStorage()
        batch = [AppMessage(MessageId(0, 0, i), ("m", i)) for i in range(3)]
        storage.log("batch", batch)
        batch.append("intruder")
        got = storage.retrieve("batch")
        assert len(got) == 3
        got.append("other-intruder")
        assert len(storage.retrieve("batch")) == 3
        # Immutable *items* of the rebuilt list are shared.
        assert storage.retrieve("batch")[0] is batch[0]

    def test_mutable_payload_forces_message_copy(self):
        # Payloads are immutable by contract, but a violation must not
        # corrupt "durable" state.
        storage = MemoryStorage()
        message = AppMessage(MessageId(1, 0, 1), ["mutable"])
        storage.log("m", message)
        message.payload.append("oops")
        assert storage.retrieve("m").payload == ["mutable"]

    def test_unregistered_type_falls_back_to_deepcopy(self):
        from repro.storage import snapshot

        class Blob:
            def __init__(self):
                self.items = [1, 2]

        storage = MemoryStorage()
        blob = Blob()
        before = snapshot.fallback_count()
        storage.log("b", blob)
        blob.items.append(3)
        assert storage.retrieve("b").items == [1, 2]
        assert snapshot.fallback_count() > before

    def test_deepcopy_mode_matches_snapshot_semantics(self):
        for isolation in ("snapshot", "deepcopy"):
            storage = MemoryStorage(isolation=isolation)
            value = {"inner": [1, 2], "id": MessageId(0, 0, 1)}
            storage.log("k", value)
            value["inner"].append(3)
            assert storage.retrieve("k") == \
                {"inner": [1, 2], "id": MessageId(0, 0, 1)}

    def test_namedtuple_of_immutables_passes_through(self):
        storage = MemoryStorage()
        mid = MessageId(3, 1, 4)
        storage.log("id", mid)
        got = storage.retrieve("id")
        assert got is mid and isinstance(got, MessageId)


class TestFileStorageWriteBarrier:
    """Directory-fsync coalescing inside one logical write barrier."""

    def test_barrier_coalesces_directory_fsyncs(self, tmp_path):
        storage = FileStorage(str(tmp_path / "store"))
        baseline = storage.dir_fsyncs
        with storage.write_barrier():
            for index in range(5):
                storage.log(("ab", "ckpt", index), index)
        # One directory flush for the whole barrier, not one per write.
        assert storage.dir_fsyncs == baseline + 1
        assert storage.dir_fsyncs_coalesced == 4
        for index in range(5):
            assert storage.retrieve(("ab", "ckpt", index)) == index

    def test_writes_outside_barrier_flush_per_write(self, tmp_path):
        storage = FileStorage(str(tmp_path / "store"))
        baseline = storage.dir_fsyncs
        storage.log("a", 1)
        storage.log("b", 2)
        assert storage.dir_fsyncs == baseline + 2

    def test_nested_barriers_flush_once_at_outermost_exit(self, tmp_path):
        storage = FileStorage(str(tmp_path / "store"))
        baseline = storage.dir_fsyncs
        with storage.write_barrier():
            storage.log("a", 1)
            with storage.write_barrier():
                storage.log("b", 2)
            assert storage.dir_fsyncs == baseline  # still deferred
        assert storage.dir_fsyncs == baseline + 1

    def test_empty_barrier_flushes_nothing(self, tmp_path):
        storage = FileStorage(str(tmp_path / "store"))
        baseline = storage.dir_fsyncs
        with storage.write_barrier():
            pass
        assert storage.dir_fsyncs == baseline

    def test_memory_backend_barrier_is_noop(self):
        storage = MemoryStorage()
        with storage.write_barrier():
            storage.log("k", 1)
        assert storage.retrieve("k") == 1
