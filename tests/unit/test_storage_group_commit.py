"""Unit tests for FileStorage group commit (journalled write barriers).

The classic per-record path (temp + fsync + rename) keeps its coverage
in test_storage.py and test_storage_crash_atomicity.py; here we pin the
group-commit mode: one journal fsync per barrier, read-your-writes
inside the barrier, replay after a crash, and the anti-resurrection
discipline for deletes.
"""

from __future__ import annotations

import os

import pytest

from repro.storage.file import (FileStorage, _JOURNAL_NAME, frame_record)


@pytest.fixture
def storage(tmp_path):
    return FileStorage(str(tmp_path), group_commit=True)


def fsync_counter(monkeypatch):
    real_fsync = os.fsync
    calls = {"n": 0}

    def counting_fsync(fd):
        calls["n"] += 1
        return real_fsync(fd)

    monkeypatch.setattr(os, "fsync", counting_fsync)
    return calls


class TestBatching:
    def test_one_fsync_per_barrier(self, storage, monkeypatch):
        calls = fsync_counter(monkeypatch)
        with storage.write_barrier():
            for index in range(10):
                storage.log(("batch", index), {"v": index})
        assert calls["n"] == 1
        assert storage.group_commits == 1
        assert storage.group_commit_records == 10
        for index in range(10):
            assert storage.retrieve(("batch", index)) == {"v": index}

    def test_classic_mode_fsyncs_per_record(self, tmp_path, monkeypatch):
        classic = FileStorage(str(tmp_path), group_commit=False)
        calls = fsync_counter(monkeypatch)
        with classic.write_barrier():
            for index in range(10):
                classic.log(("batch", index), {"v": index})
        assert calls["n"] >= 10
        assert classic.group_commits == 0
        assert not os.path.exists(str(tmp_path / _JOURNAL_NAME))

    def test_read_your_writes_inside_barrier(self, storage):
        storage.log("outside", 1)
        with storage.write_barrier():
            storage.log("inside", 2)
            storage.log("none-valued", None)
            assert storage.retrieve("inside") == 2
            assert storage.retrieve("outside") == 1
            # A logged None is a present value, not a miss.
            assert storage.contains("none-valued")
            assert storage.retrieve("none-valued", "default") is None
        assert storage.retrieve("inside") == 2

    def test_keys_see_pending_overlay(self, storage):
        storage.log("kept", 1)
        storage.log("doomed", 2)
        with storage.write_barrier():
            storage.log("fresh", 3)
            storage.delete("doomed")
            assert sorted(storage.keys()) == ["fresh", "kept"]
        assert sorted(storage.keys()) == ["fresh", "kept"]


class TestCrashRecovery:
    def test_journal_replay_restores_buffered_writes(self, tmp_path):
        storage = FileStorage(str(tmp_path), group_commit=True)
        with storage.write_barrier():
            for index in range(6):
                storage.log(("r", index), ["value", index])
        # Crash: per-key files were written buffered (no fsync); model
        # the worst case by corrupting one of them outright.  The
        # journal alone must bring the value back.
        victim = next(name for name in os.listdir(str(tmp_path))
                      if name != _JOURNAL_NAME)
        with open(os.path.join(str(tmp_path), victim), "wb") as handle:
            handle.write(b"\x00torn")
        reopened = FileStorage(str(tmp_path), group_commit=True)
        for index in range(6):
            assert reopened.retrieve(("r", index)) == ["value", index]
        assert any(key == _JOURNAL_NAME
                   for key, _ in reopened.recovery_report)
        # Replay healed the torn file: nothing was quarantined.
        assert not any("quarantine" in defect
                       for _, defect in reopened.recovery_report)

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        storage = FileStorage(str(tmp_path), group_commit=True)
        with storage.write_barrier():
            storage.log("a", 1)
        journal = os.path.join(str(tmp_path), _JOURNAL_NAME)
        with open(journal, "ab") as handle:
            handle.write(frame_record('["w", "b", 2]')[:-3])  # torn write
        reopened = FileStorage(str(tmp_path), group_commit=True)
        assert reopened.retrieve("a") == 1
        assert reopened.retrieve("b") is None

    def test_delete_does_not_resurrect_after_replay(self, tmp_path):
        storage = FileStorage(str(tmp_path), group_commit=True)
        with storage.write_barrier():
            storage.log("key", "value")
        storage.delete("key")
        reopened = FileStorage(str(tmp_path), group_commit=True)
        assert not reopened.contains("key")
        assert reopened.retrieve("key") is None

    def test_values_survive_plain_reopen(self, tmp_path):
        storage = FileStorage(str(tmp_path), group_commit=True)
        with storage.write_barrier():
            storage.log("x", {"deep": [1, (2, 3)]})
        reopened = FileStorage(str(tmp_path), group_commit=True)
        assert reopened.retrieve("x") == {"deep": [1, (2, 3)]}

    def test_group_commit_dir_opens_in_classic_mode(self, tmp_path):
        """Downgrade path: a directory written with group commit must
        stay readable by a classic-mode instance (the journal is
        replayed by whoever opens the directory next)."""
        storage = FileStorage(str(tmp_path), group_commit=True)
        with storage.write_barrier():
            storage.log("k", 9)
        classic = FileStorage(str(tmp_path), group_commit=False)
        assert classic.retrieve("k") == 9
