"""UDP wire format for :class:`~repro.transport.message.WireMessage`.

A datagram is one UTF-8 JSON object::

    {"s": <sender id>, "t": <message type tag>, "f": {<field>: <value>}}

Field values go through :mod:`repro.storage.codec` — the same tagged-JSON
codec the stable-storage layer uses — so tuples, sets, frozensets and
registered classes (notably :class:`~repro.core.messages.AppMessage`)
round-trip exactly.  Decoding dispatches on the ``type`` tag through a
registry built by walking ``WireMessage.__subclasses__()``: every message
class that has been *imported* is decodable, and the instance is rebuilt
structurally (``cls.__new__`` + the class's declared ``fields``) so no
constructor signature discipline is imposed on protocol messages.

The format intentionally carries no authentication or versioning: the
live runtime is a loopback test harness for the paper's protocols, not a
production transport.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple, Type

from repro.errors import ReproError
from repro.storage import codec
from repro.transport.message import WireMessage

__all__ = ["encode", "decode", "rebuild", "WireCodecError"]


class WireCodecError(ReproError):
    """A datagram could not be encoded or decoded."""


def encode(sender: int, message: WireMessage) -> bytes:
    """Serialise one message (with its sender id) to a datagram."""
    frame = {
        "s": sender,
        "t": message.type,
        "f": {name: codec.encode(getattr(message, name))
              for name in message.fields},
    }
    try:
        return json.dumps(frame, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireCodecError(
            f"cannot encode {message.type!r}: {exc}") from exc


# Tag -> class; None marks a tag claimed by several imported classes
# (ambiguous): only lookups of that tag fail, the rest keep decoding.
_registry: Optional[Dict[str, Optional[Type[WireMessage]]]] = None


def _walk(cls: Type[WireMessage],
          into: Dict[str, Optional[Type[WireMessage]]]) -> None:
    for sub in cls.__subclasses__():
        if sub.type in into and into[sub.type] is not sub:
            into[sub.type] = None
        else:
            into[sub.type] = sub
        _walk(sub, into)


def _lookup(tag: str) -> Type[WireMessage]:
    global _registry
    if _registry is None or tag not in _registry:
        # (Re)build lazily: message classes register simply by having
        # been imported by the protocol stack under test.
        fresh: Dict[str, Optional[Type[WireMessage]]] = {}
        _walk(WireMessage, fresh)
        _registry = fresh
    if tag not in _registry:
        raise WireCodecError(f"unknown wire type tag {tag!r}")
    cls = _registry[tag]
    if cls is None:
        raise WireCodecError(
            f"ambiguous wire type tag {tag!r}: claimed by more than one "
            f"imported WireMessage class")
    return cls


def rebuild(tag: str, field_values: Dict[str, object]) -> WireMessage:
    """Reconstruct a message structurally from its tag and field values.

    ``field_values`` holds already-decoded Python objects (not codec
    strings); the instance is rebuilt the same way :func:`decode` builds
    one, so no constructor discipline is imposed on message classes.
    Layers that tunnel one message inside another (the stubborn channel's
    data envelope) use this to unwrap the inner message on arrival.
    """
    cls = _lookup(tag)
    message = cls.__new__(cls)
    for name in cls.fields:
        try:
            setattr(message, name, field_values[name])
        except KeyError as exc:
            raise WireCodecError(
                f"message {tag!r} missing field {name!r}") from exc
    return message


def decode(data: bytes) -> Tuple[int, WireMessage]:
    """Deserialise a datagram back into ``(sender id, message)``."""
    try:
        frame = json.loads(data.decode("utf-8"))
        sender = frame["s"]
        fields = frame["f"]
        message = rebuild(frame["t"],
                          {name: codec.decode(value)
                           for name, value in fields.items()})
        return sender, message
    except WireCodecError:
        raise
    except Exception as exc:
        raise WireCodecError(f"malformed datagram: {exc}") from exc
