"""UDP wire format for :class:`~repro.transport.message.WireMessage`.

Two wire versions coexist, negotiated per datagram by its first byte:

**v1 (tagged JSON, the original format)** — one UTF-8 JSON object::

    {"s": <sender id>, "t": <message type tag>, "f": {<field>: <value>}}

Field values go through :mod:`repro.storage.codec` — the same tagged-JSON
codec the stable-storage layer uses — so tuples, sets, frozensets and
registered classes (notably :class:`~repro.core.messages.AppMessage`)
round-trip exactly.

**v2 (length-prefixed binary)** — one or more *frames* concatenated into
a single datagram.  Each frame is a ``struct``-packed header followed by
a compact binary payload::

    !HBIHI  =  magic 0xAB0B | version 2 | sender | type-id | payload-len

The type-id is a small integer from a registered table
(:data:`TYPE_ID_TABLE`, extensible via :func:`register_type_id`)
replacing the string-tag dispatch of v1; the payload is the message's
declared fields, in declaration order, each encoded by a compact binary
value codec (ints as zigzag varints, floats as IEEE doubles — so
``nan``/``inf``/``-0.0`` round-trip exactly, strings/containers with
varint lengths).  Field values of classes registered with the storage
codec reuse that same registration (tag + ``to_plain``/``from_plain``)
under a binary envelope, so no JSON text appears on the v2 hot path; a
message class *without* a type-id falls back to a v1 JSON frame tunnelled
inside a v2 frame (type-id 0), so coalesced datagrams can always carry it.

Because v2 frames are length-prefixed they concatenate: the transport
packs many protocol messages into one datagram (see
:class:`~repro.runtime.live_net.LiveNetwork`) and :func:`decode_datagram`
walks the frames back out.  A datagram starting with ``{`` is decoded as
v1; decoders accept both versions regardless of what the local encoder
emits, so mixed-version clusters interoperate.

Decoding dispatches on the ``type`` tag through a registry built by
walking ``WireMessage.__subclasses__()``: every message class that has
been *imported* is decodable, and the instance is rebuilt structurally
(``cls.__new__`` + the class's declared ``fields``) so no constructor
signature discipline is imposed on protocol messages.  The registry is
rebuilt only when a new :class:`WireMessage` subclass has actually been
defined since the last build (a generation counter bumped by
``__init_subclass__``), so a flood of datagrams carrying unknown tags
costs one dictionary miss each, not a class-tree walk each.

The format intentionally carries no authentication: the live runtime is
a loopback test harness for the paper's protocols, not a production
transport.
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.errors import ReproError
from repro.storage import codec
from repro.transport.message import WireMessage

__all__ = ["encode", "encode_frame", "decode", "decode_datagram", "rebuild",
           "register_type_id", "type_id_for", "WireCodecError", "WireConfig",
           "TYPE_ID_TABLE", "MAGIC", "HEADER"]


class WireCodecError(ReproError):
    """A datagram could not be encoded or decoded."""


class WireConfig:
    """Transport-facing wire/framing knobs (consumed by the live medium).

    Parameters
    ----------
    version:
        Wire version the local encoder emits (1 = tagged JSON, one
        datagram per message; 2 = binary frames, coalescible).  Decoders
        always accept both.
    max_frame_bytes:
        Coalescing target: buffered frames flush once a datagram would
        exceed this size.  Must not exceed ``max_datagram_bytes``.
    flush_delay:
        Seconds buffered frames may wait for companions before flushing.
        ``0`` flushes on the next event-loop turn, which still coalesces
        every message sent from a single callback (a ``multisend``) at
        zero added latency.
    max_datagram_bytes:
        Hard bound on one encoded datagram; 65507 is the UDP/IPv4
        payload limit.  A single message whose frame exceeds it raises
        :class:`~repro.runtime.live_net.OversizeDatagramError` instead
        of letting ``sendto`` fail with a raw ``OSError``.
    coalesce:
        Explicitly enable/disable datagram packing; default (``None``)
        coalesces exactly when ``version >= 2`` (v1 JSON datagrams carry
        one message by construction).
    """

    def __init__(self, version: int = 2,
                 max_frame_bytes: int = 8192,
                 flush_delay: float = 0.0,
                 max_datagram_bytes: int = 65507,
                 coalesce: Optional[bool] = None):
        if version not in (1, 2):
            raise WireCodecError(f"unsupported wire version {version}")
        if max_datagram_bytes < 1:
            raise WireCodecError(
                f"bad max_datagram_bytes {max_datagram_bytes}")
        if not 0 < max_frame_bytes <= max_datagram_bytes:
            raise WireCodecError(
                f"max_frame_bytes {max_frame_bytes} must be in "
                f"(0, max_datagram_bytes={max_datagram_bytes}]")
        if flush_delay < 0:
            raise WireCodecError(f"negative flush_delay {flush_delay}")
        self.version = version
        self.max_frame_bytes = max_frame_bytes
        self.flush_delay = flush_delay
        self.max_datagram_bytes = max_datagram_bytes
        self.coalesce = (version >= 2) if coalesce is None else coalesce


# -- v2 framing ---------------------------------------------------------------

MAGIC = 0xAB0B
HEADER = struct.Struct("!HBIHI")  # magic, version, sender, type-id, len
_V2 = 2
_JSON_TUNNEL_ID = 0  # payload is a complete v1 JSON datagram

# The registered type-id table.  Ids are frozen: changing an assignment
# invalidates every recorded byte stream, so new message types get new
# ids (via register_type_id) instead of edits.
TYPE_ID_TABLE: Dict[str, int] = {
    "ab.gossip": 1,
    "ab.state": 2,
    "fd.alive": 3,
    "stub.data": 4,
    "stub.ack": 5,
    "stub.batch": 6,
    "paxos.prepare": 7,
    "paxos.promise": 8,
    "paxos.accept": 9,
    "paxos.accepted": 10,
    "paxos.decide": 11,
    "paxos.nack": 12,
    "paxos.query": 13,
    "ct.estimate": 14,
    "ct.propose": 15,
    "ct.ack": 16,
    "ct.nack": 17,
    "ct.decide": 18,
    "seq.forward": 19,
    "seq.order": 20,
    "seq.resend": 21,
    "seq.status": 22,
    "qr.query": 23,
    "qr.query-ack": 24,
    "qr.store": 25,
    "qr.store-ack": 26,
    "mg.announce": 27,
}
_TAG_FOR_ID: Dict[int, str] = {v: k for k, v in TYPE_ID_TABLE.items()}


def register_type_id(tag: str, type_id: int) -> None:
    """Assign a stable v2 type-id to a message type tag.

    Ids must be unique, positive and fit the header's 16-bit field; id 0
    is reserved for the JSON tunnel.  Re-registering the same pair is a
    no-op so modules may register at import time.
    """
    if not 0 < type_id < 0x10000:
        raise WireCodecError(f"type id {type_id} out of range [1, 65535]")
    if TYPE_ID_TABLE.get(tag) == type_id:
        return
    if tag in TYPE_ID_TABLE:
        raise WireCodecError(
            f"tag {tag!r} already has type id {TYPE_ID_TABLE[tag]}")
    if type_id in _TAG_FOR_ID:
        raise WireCodecError(
            f"type id {type_id} already assigned to "
            f"{_TAG_FOR_ID[type_id]!r}")
    TYPE_ID_TABLE[tag] = type_id
    _TAG_FOR_ID[type_id] = tag


def type_id_for(tag: str) -> Optional[int]:
    """The registered v2 type-id for a tag, or None (JSON tunnel)."""
    return TYPE_ID_TABLE.get(tag)


# -- binary value codec -------------------------------------------------------

_DOUBLE = struct.Struct("!d")
_MAX_DEPTH = 64


def _pack_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _pack_value(value: Any, out: bytearray, depth: int = 0) -> None:
    if depth > _MAX_DEPTH:
        raise WireCodecError("value nesting too deep to encode")
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        out += b"i"
        out += _pack_varint(value * 2 if value >= 0 else -value * 2 - 1)
    elif isinstance(value, float):
        out += b"f"
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s"
        out += _pack_varint(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out += b"y"
        out += _pack_varint(len(value))
        out += value
    elif isinstance(value, tuple):
        out += b"t"
        out += _pack_varint(len(value))
        for item in value:
            _pack_value(item, out, depth + 1)
    elif isinstance(value, list):
        out += b"l"
        out += _pack_varint(len(value))
        for item in value:
            _pack_value(item, out, depth + 1)
    elif isinstance(value, (set, frozenset)):
        out += b"S" if isinstance(value, set) else b"Z"
        # Deterministic wire bytes: members sorted by their encoding.
        encoded = []
        for item in value:
            buf = bytearray()
            _pack_value(item, buf, depth + 1)
            encoded.append(bytes(buf))
        encoded.sort()
        out += _pack_varint(len(encoded))
        for raw in encoded:
            out += raw
    elif isinstance(value, dict):
        out += b"d"
        out += _pack_varint(len(value))
        for key, item in value.items():
            _pack_value(key, out, depth + 1)
            _pack_value(item, out, depth + 1)
    else:
        registered = codec.registration_for(type(value))
        if registered is None:
            raise WireCodecError(
                f"cannot encode {type(value).__name__}; register() it "
                f"with repro.storage.codec")
        tag, to_plain = registered
        raw = tag.encode("utf-8")
        out += b"R"
        out += _pack_varint(len(raw))
        out += raw
        _pack_value(to_plain(value), out, depth + 1)


class _Reader:
    """Bounds-checked cursor over one frame payload."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, pos: int, end: int):
        self.data = data
        self.pos = pos
        self.end = end

    def take(self, count: int) -> bytes:
        if count < 0 or self.pos + count > self.end:
            raise WireCodecError("truncated value")
        raw = self.data[self.pos:self.pos + count]
        self.pos += count
        return raw

    def varint(self) -> int:
        result = 0
        shift = 0
        while True:
            if self.pos >= self.end:
                raise WireCodecError("truncated varint")
            byte = self.data[self.pos]
            self.pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 640:  # ints beyond ~2^640 are nonsense, not data
                raise WireCodecError("varint too long")


def _unpack_value(reader: _Reader, depth: int = 0) -> Any:
    if depth > _MAX_DEPTH:
        raise WireCodecError("value nesting too deep to decode")
    tag = reader.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        zig = reader.varint()
        return zig // 2 if zig % 2 == 0 else -(zig // 2) - 1
    if tag == b"f":
        return _DOUBLE.unpack(reader.take(8))[0]
    if tag == b"s":
        return reader.take(reader.varint()).decode("utf-8")
    if tag == b"y":
        return reader.take(reader.varint())
    if tag in (b"t", b"l"):
        count = reader.varint()
        items = [_unpack_value(reader, depth + 1) for _ in range(count)]
        return tuple(items) if tag == b"t" else items
    if tag in (b"S", b"Z"):
        count = reader.varint()
        items = [_unpack_value(reader, depth + 1) for _ in range(count)]
        return set(items) if tag == b"S" else frozenset(items)
    if tag == b"d":
        count = reader.varint()
        result: Dict[Any, Any] = {}
        for _ in range(count):
            key = _unpack_value(reader, depth + 1)
            result[key] = _unpack_value(reader, depth + 1)
        return result
    if tag == b"R":
        class_tag = reader.take(reader.varint()).decode("utf-8")
        loader = codec.loader_for(class_tag)
        if loader is None:
            raise WireCodecError(f"unknown codec tag {class_tag!r}")
        return loader(_unpack_value(reader, depth + 1))
    raise WireCodecError(f"unknown value tag {tag!r}")


# -- encoding -----------------------------------------------------------------

def _encode_v1(sender: int, message: WireMessage) -> bytes:
    frame = {
        "s": sender,
        "t": message.type,
        "f": {name: codec.encode(getattr(message, name))
              for name in message.fields},
    }
    try:
        return json.dumps(frame, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireCodecError(
            f"cannot encode {message.type!r}: {exc}") from exc


def encode_frame(sender: int, message: WireMessage) -> bytes:
    """Serialise one message as a v2 frame (concatenable into datagrams).

    Messages whose type has no registered type-id — and senders outside
    the header's unsigned 32-bit range — are tunnelled as a v1 JSON
    payload under type-id 0, so every encodable message coalesces.
    """
    type_id = TYPE_ID_TABLE.get(message.type)
    if type_id is None or not 0 <= sender < 0x100000000:
        payload = _encode_v1(sender, message)
        return HEADER.pack(MAGIC, _V2, 0, _JSON_TUNNEL_ID,
                           len(payload)) + payload
    out = bytearray()
    try:
        for name in message.fields:
            _pack_value(getattr(message, name), out)
    except WireCodecError:
        raise
    except Exception as exc:
        raise WireCodecError(
            f"cannot encode {message.type!r}: {exc}") from exc
    return HEADER.pack(MAGIC, _V2, sender, type_id, len(out)) + bytes(out)


def encode(sender: int, message: WireMessage, version: int = _V2) -> bytes:
    """Serialise one message (with its sender id) to a whole datagram."""
    if version == 1:
        return _encode_v1(sender, message)
    if version == _V2:
        return encode_frame(sender, message)
    raise WireCodecError(f"unsupported wire version {version}")


# -- type-tag registry --------------------------------------------------------

# Tag -> class; None marks a tag claimed by several imported classes
# (ambiguous): only lookups of that tag fail, the rest keep decoding.
_registry: Dict[str, Optional[Type[WireMessage]]] = {}
# Generation of WireMessage subclass definitions the registry was built
# at; -1 forces the first build.  Rebuilding only on generation change
# makes unknown-tag lookups O(1): a flood of garbage datagrams cannot
# force a class-tree walk per packet.
_built_at_generation = -1


def _walk(cls: Type[WireMessage],
          into: Dict[str, Optional[Type[WireMessage]]]) -> None:
    for sub in cls.__subclasses__():
        if sub.type in into and into[sub.type] is not sub:
            into[sub.type] = None
        else:
            into[sub.type] = sub
        _walk(sub, into)


def _lookup(tag: str) -> Type[WireMessage]:
    global _registry, _built_at_generation
    generation = WireMessage._registry_generation
    if generation != _built_at_generation:
        # (Re)build lazily: message classes register simply by having
        # been imported by the protocol stack under test.  The build is
        # valid until the *next* subclass definition, so a tag missing
        # from it is missing, full stop — no re-walk per miss.
        fresh: Dict[str, Optional[Type[WireMessage]]] = {}
        _walk(WireMessage, fresh)
        _registry = fresh
        _built_at_generation = generation
    try:
        cls = _registry[tag]
    except KeyError:
        raise WireCodecError(f"unknown wire type tag {tag!r}") from None
    if cls is None:
        raise WireCodecError(
            f"ambiguous wire type tag {tag!r}: claimed by more than one "
            f"imported WireMessage class")
    return cls


def rebuild(tag: str, field_values: Dict[str, object]) -> WireMessage:
    """Reconstruct a message structurally from its tag and field values.

    ``field_values`` holds already-decoded Python objects (not codec
    strings); the instance is rebuilt the same way :func:`decode` builds
    one, so no constructor discipline is imposed on message classes.
    Layers that tunnel one message inside another (the stubborn channel's
    data envelope) use this to unwrap the inner message on arrival.
    """
    cls = _lookup(tag)
    message = cls.__new__(cls)
    for name in cls.fields:
        try:
            setattr(message, name, field_values[name])
        except KeyError as exc:
            raise WireCodecError(
                f"message {tag!r} missing field {name!r}") from exc
    return message


# -- decoding -----------------------------------------------------------------

def _decode_v1(data: bytes) -> Tuple[int, WireMessage]:
    try:
        frame = json.loads(data.decode("utf-8"))
        sender = frame["s"]
        fields = frame["f"]
        message = rebuild(frame["t"],
                          {name: codec.decode(value)
                           for name, value in fields.items()})
        return sender, message
    except WireCodecError:
        raise
    except Exception as exc:
        raise WireCodecError(f"malformed datagram: {exc}") from exc


def _decode_v2_frame(data: bytes, offset: int
                     ) -> Tuple[int, int, WireMessage]:
    """Decode one frame at ``offset``; returns (next offset, sender, msg)."""
    end = offset + HEADER.size
    if end > len(data):
        raise WireCodecError("truncated frame header")
    magic, version, sender, type_id, length = HEADER.unpack_from(data, offset)
    if magic != MAGIC:
        raise WireCodecError(f"bad frame magic {magic:#06x}")
    if version != _V2:
        raise WireCodecError(f"unsupported wire version {version}")
    if end + length > len(data):
        raise WireCodecError(
            f"torn frame: {len(data) - end} payload bytes, "
            f"header promises {length}")
    if type_id == _JSON_TUNNEL_ID:
        sender, message = _decode_v1(data[end:end + length])
        return end + length, sender, message
    tag = _TAG_FOR_ID.get(type_id)
    if tag is None:
        raise WireCodecError(f"unknown type id {type_id}")
    cls = _lookup(tag)
    reader = _Reader(data, end, end + length)
    message = cls.__new__(cls)
    try:
        for name in cls.fields:
            setattr(message, name, _unpack_value(reader))
    except WireCodecError:
        raise
    except Exception as exc:
        raise WireCodecError(f"malformed frame payload: {exc}") from exc
    if reader.pos != reader.end:
        raise WireCodecError(
            f"{reader.end - reader.pos} stray bytes after "
            f"{tag!r} payload")
    return end + length, sender, message


def decode_datagram(data: bytes) -> List[Tuple[int, WireMessage]]:
    """Deserialise a datagram into every ``(sender id, message)`` it packs.

    A v1 datagram yields exactly one pair; a v2 datagram yields one per
    frame.  Any defect anywhere raises :class:`WireCodecError` — a
    datagram is accepted or rejected whole.
    """
    if not data:
        raise WireCodecError("empty datagram")
    if data[0] == 0x7B:  # "{" — a v1 JSON object
        return [_decode_v1(data)]
    if data[0] != (MAGIC >> 8):
        raise WireCodecError(f"unrecognised datagram lead byte {data[0]:#04x}")
    messages: List[Tuple[int, WireMessage]] = []
    offset = 0
    while offset < len(data):
        offset, sender, message = _decode_v2_frame(data, offset)
        messages.append((sender, message))
    return messages


def decode(data: bytes) -> Tuple[int, WireMessage]:
    """Deserialise a single-message datagram back into ``(sender, message)``.

    Raises :class:`WireCodecError` if the datagram packs more than one
    frame; transports that coalesce use :func:`decode_datagram`.
    """
    messages = decode_datagram(data)
    if len(messages) != 1:
        raise WireCodecError(
            f"expected a single-frame datagram, got {len(messages)} frames")
    return messages[0]


def _float_fields_equal(left: Any, right: Any) -> bool:  # pragma: no cover
    """Test helper: equality where nan == nan (used by the fuzz suite)."""
    if isinstance(left, float) and isinstance(right, float):
        return (math.isnan(left) and math.isnan(right)) or left == right
    return bool(left == right)
