"""Localhost UDP transport for the live runtime.

:class:`LiveNetwork` gives every node its own UDP socket bound to an
ephemeral port on 127.0.0.1 and implements the same fair-loss channel
contract as the simulated :class:`~repro.transport.network.Network`
(the :class:`~repro.runtime.api.TransportMedium` protocol), so the
transport :class:`~repro.transport.endpoint.Endpoint` stacks on it
unchanged:

* channels are not FIFO and may drop or duplicate datagrams — UDP
  provides this for real, and configurable *injected* loss/duplication
  (drawn from a seeded stream) keeps the paper's channel model testable
  even on a loopback interface that rarely loses anything;
* messages to a down node are lost: a killed node's socket is closed, so
  datagrams addressed to it vanish exactly like messages to a crashed
  process (Section 2.1);
* self-addressed messages stay reliable and never touch the network
  (the paper's loopback footnote), implemented as a direct callback.

Killing and restarting a node re-binds a *fresh* socket on a new
ephemeral port; the shared port map is updated so peers reach the
recovered process, emulating a process restart without fixed port
assignments.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, Optional, Tuple

from repro.errors import SimulationError
from repro.runtime import wire
from repro.runtime.live import LiveRuntime
from repro.runtime.node import Node
from repro.sizing import estimate_size
from repro.transport.message import WireMessage
from repro.transport.network import NetworkMetrics

__all__ = ["LiveNetwork"]


class _NodeProtocol(asyncio.DatagramProtocol):
    """Receive path of one node's socket."""

    def __init__(self, network: "LiveNetwork", node_id: int):
        self.network = network
        self.node_id = node_id

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.network._receive(self.node_id, data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.network.metrics.lost += 1


class LiveNetwork:
    """The UDP medium connecting the nodes of a live cluster.

    Parameters
    ----------
    runtime:
        The owning :class:`LiveRuntime` (sockets attach to its loop).
    rng:
        Seeded stream for the injected loss/duplication draws
        (``runtime.rng("network")`` by convention).
    loss_rate, duplicate_rate:
        Injected Bernoulli drop/duplicate probabilities on top of
        whatever the real network does.  ``loss_rate`` must stay < 1 to
        preserve fair loss.
    max_send_buffer:
        Byte bound on a sender socket's kernel write buffer.  When the
        buffer is over the bound the datagram is dropped and counted
        (``send_overflows``) instead of queued without limit — the live
        analogue of the simulator's bounded stubborn backlog.  ``None``
        (default) disables the bound.
    """

    def __init__(self, runtime: LiveRuntime,
                 rng: Optional[random.Random] = None,
                 loss_rate: float = 0.0,
                 duplicate_rate: float = 0.0,
                 max_send_buffer: Optional[int] = None) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(
                f"loss_rate {loss_rate} breaks the fair-loss assumption")
        if not 0.0 <= duplicate_rate <= 1.0:
            raise SimulationError(f"bad duplicate_rate {duplicate_rate}")
        self.runtime = runtime
        self.rng = rng if rng is not None else runtime.rng("network")
        self.loss_rate = loss_rate
        self.duplicate_rate = duplicate_rate
        if max_send_buffer is not None and max_send_buffer < 1:
            raise SimulationError(f"bad max_send_buffer {max_send_buffer}")
        self.max_send_buffer = max_send_buffer
        self.send_overflows = 0
        self.send_buffer_high_water = 0
        self.nodes: Dict[int, Node] = {}
        self.ports: Dict[int, int] = {}
        self.metrics = NetworkMetrics()
        self._transports: Dict[int, asyncio.DatagramTransport] = {}

    # -- topology -----------------------------------------------------------

    def register(self, node: Node) -> None:
        """Attach a node to the medium (its socket opens in :meth:`open`)."""
        if node.node_id in self.nodes:
            raise SimulationError(f"node {node.node_id} already registered")
        self.nodes[node.node_id] = node

    def node_ids(self) -> Tuple[int, ...]:
        """All registered node ids, sorted."""
        return tuple(sorted(self.nodes))

    # -- socket lifecycle ---------------------------------------------------

    async def open(self, node_id: int) -> int:
        """Bind (or re-bind) the node's UDP socket; returns its port."""
        if node_id not in self.nodes:
            raise SimulationError(f"unknown node {node_id}")
        self.close(node_id)
        transport, _ = await self.runtime.loop.create_datagram_endpoint(
            lambda: _NodeProtocol(self, node_id),
            local_addr=("127.0.0.1", 0))
        port = transport.get_extra_info("sockname")[1]
        self._transports[node_id] = transport
        self.ports[node_id] = port
        return port

    async def open_all(self) -> None:
        """Bind a socket for every registered node."""
        for node_id in self.node_ids():
            await self.open(node_id)

    def close(self, node_id: int) -> None:
        """Close the node's socket (datagrams in flight to it are lost)."""
        transport = self._transports.pop(node_id, None)
        if transport is not None:
            transport.close()
        self.ports.pop(node_id, None)

    def close_all(self) -> None:
        """Close every socket (end of run)."""
        for node_id in list(self._transports):
            self.close(node_id)

    # -- sending ------------------------------------------------------------

    def send(self, src: int, dst: int, message: WireMessage) -> None:
        """Inject one message from ``src`` to ``dst``.

        Injected loss and duplication are decided at send time with
        independent seeded draws; real UDP may add its own loss,
        reordering and (in principle) duplication on top.
        """
        if dst not in self.nodes:
            raise SimulationError(f"unknown destination {dst}")
        self.metrics.sent += 1
        self.metrics.bytes_sent += estimate_size(message)
        self.metrics.by_type[message.type] = \
            self.metrics.by_type.get(message.type, 0) + 1

        if src == dst:
            # Loopback: reliable, in-process, never serialised.
            self.runtime.call_soon(self._deliver, src, dst, message)
            return
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.metrics.lost += 1
            return
        data = wire.encode(src, message)
        self._transmit(src, dst, data)
        if (self.duplicate_rate
                and self.rng.random() < self.duplicate_rate):
            self.metrics.duplicated += 1
            self._transmit(src, dst, data)

    def multisend(self, src: int, message: WireMessage,
                  targets: Optional[Tuple[int, ...]] = None) -> None:
        """The paper's ``multisend`` macro: send to every process,
        including the sender itself (Section 3.1, footnote 2).

        ``targets`` restricts the send to a view's member set; ids with
        no socket yet are skipped (their stack is still being built)."""
        if targets is None:
            for dst in self.nodes:
                self.send(src, dst, message)
            return
        for dst in targets:
            if dst in self.nodes:
                self.send(src, dst, message)

    # -- internals ----------------------------------------------------------

    def _transmit(self, src: int, dst: int, data: bytes) -> None:
        transport = self._transports.get(src)
        port = self.ports.get(dst)
        if transport is None or transport.is_closing() or port is None:
            # Sender has no socket (its process is down) or the
            # destination is unreachable: the datagram is simply lost.
            self.metrics.lost += 1
            return
        if self.max_send_buffer is not None:
            buffered = transport.get_write_buffer_size()
            if buffered > self.send_buffer_high_water:
                self.send_buffer_high_water = buffered
            if buffered >= self.max_send_buffer:
                # Bounded send queue: dropping here is ordinary channel
                # loss to the layers above (fair loss is preserved — the
                # buffer drains between sends).
                self.send_overflows += 1
                self.metrics.lost += 1
                return
        transport.sendto(data, ("127.0.0.1", port))

    def _receive(self, dst: int, data: bytes) -> None:
        try:
            src, message = wire.decode(data)
        except wire.WireCodecError:
            self.metrics.lost += 1
            return
        self._deliver(src, dst, message)

    def _deliver(self, src: int, dst: int, message: WireMessage) -> None:
        node = self.nodes[dst]
        if node.deliver(message, src):
            self.metrics.delivered += 1
        else:
            self.metrics.dropped_down += 1
