"""Localhost UDP transport for the live runtime.

:class:`LiveNetwork` gives every node its own UDP socket bound to an
ephemeral port on 127.0.0.1 and implements the same fair-loss channel
contract as the simulated :class:`~repro.transport.network.Network`
(the :class:`~repro.runtime.api.TransportMedium` protocol), so the
transport :class:`~repro.transport.endpoint.Endpoint` stacks on it
unchanged:

* channels are not FIFO and may drop or duplicate datagrams — UDP
  provides this for real, and configurable *injected* loss/duplication
  (drawn from a seeded stream) keeps the paper's channel model testable
  even on a loopback interface that rarely loses anything;
* messages to a down node are lost: a killed node's socket is closed, so
  datagrams addressed to it vanish exactly like messages to a crashed
  process (Section 2.1);
* self-addressed messages stay reliable and never touch the network
  (the paper's loopback footnote), implemented as a direct callback.

Killing and restarting a node re-binds a *fresh* socket on a new
ephemeral port; the shared port map is updated so peers reach the
recovered process, emulating a process restart without fixed port
assignments.

**Datagram coalescing** (wire v2): messages are encoded as
length-prefixed binary frames (:func:`repro.runtime.wire.encode_frame`)
and buffered per ``(src, dst)`` pair; the buffer flushes as one datagram
when it would exceed ``max_frame_bytes`` or on the next event-loop turn
(``flush_delay=0``), so every message a single callback emits — a
``multisend``, a protocol round's fan-out, a stubborn batch plus its
piggybacked acks — shares one ``sendto`` system call and one receive
wakeup instead of paying per message.  Frames buffered by a node that
crashes before its flush are dropped with the rest of its volatile
state.  ``wire_version=1`` keeps the original one-JSON-datagram-per-
message path for honest A/B comparison; decoding accepts both versions
either way.

**Datagram size guard**: an encoded frame larger than
``max_datagram_bytes`` (default 65507, the UDP/IPv4 payload limit) is
counted (``oversize_drops``) and surfaced to the caller as a typed
:class:`OversizeDatagramError` *before* the send path touches the
socket — previously ``transport.sendto`` raised a raw ``OSError`` from
inside asyncio's datagram plumbing.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, SimulationError
from repro.runtime import wire
from repro.runtime.live import LiveRuntime
from repro.runtime.node import Node
from repro.sizing import estimate_size
from repro.transport.message import WireMessage
from repro.transport.network import NetworkMetrics

__all__ = ["LiveNetwork", "OversizeDatagramError"]


class OversizeDatagramError(ReproError):
    """An encoded message exceeds the transport's datagram limit.

    Raised synchronously out of ``send``/``multisend`` so the caller
    fails cleanly (and the drop is counted) instead of ``sendto``
    raising ``OSError: Message too long`` from inside the event loop.
    """

    def __init__(self, message_type: str, size: int, limit: int):
        super().__init__(
            f"encoded {message_type!r} is {size} bytes; the datagram "
            f"limit is {limit}")
        self.message_type = message_type
        self.size = size
        self.limit = limit


class _NodeProtocol(asyncio.DatagramProtocol):
    """Receive path of one node's socket."""

    def __init__(self, network: "LiveNetwork", node_id: int):
        self.network = network
        self.node_id = node_id

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.network._receive(self.node_id, data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.network.metrics.lost += 1


class LiveNetwork:
    """The UDP medium connecting the nodes of a live cluster.

    Parameters
    ----------
    runtime:
        The owning :class:`LiveRuntime` (sockets attach to its loop).
    rng:
        Seeded stream for the injected loss/duplication draws
        (``runtime.rng("network")`` by convention).
    loss_rate, duplicate_rate:
        Injected Bernoulli drop/duplicate probabilities on top of
        whatever the real network does.  ``loss_rate`` must stay < 1 to
        preserve fair loss.
    max_send_buffer:
        Byte bound on a sender socket's kernel write buffer.  When the
        buffer is over the bound the datagram is dropped and counted
        (``send_overflows``) instead of queued without limit — the live
        analogue of the simulator's bounded stubborn backlog.  ``None``
        (default) disables the bound.
    wire:
        Wire/framing configuration (:class:`~repro.runtime.wire.WireConfig`):
        codec version, coalescing bounds, datagram size limit.  The
        default is the v2 binary codec with same-turn coalescing.
    """

    def __init__(self, runtime: LiveRuntime,
                 rng: Optional[random.Random] = None,
                 loss_rate: float = 0.0,
                 duplicate_rate: float = 0.0,
                 max_send_buffer: Optional[int] = None,
                 wire_config: Optional[wire.WireConfig] = None) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(
                f"loss_rate {loss_rate} breaks the fair-loss assumption")
        if not 0.0 <= duplicate_rate <= 1.0:
            raise SimulationError(f"bad duplicate_rate {duplicate_rate}")
        self.runtime = runtime
        self.rng = rng if rng is not None else runtime.rng("network")
        self.loss_rate = loss_rate
        self.duplicate_rate = duplicate_rate
        if max_send_buffer is not None and max_send_buffer < 1:
            raise SimulationError(f"bad max_send_buffer {max_send_buffer}")
        self.max_send_buffer = max_send_buffer
        self.wire_config = wire_config or wire.WireConfig()
        self.send_overflows = 0
        self.send_buffer_high_water = 0
        # Framing/coalescing counters (wall-clock side, never gated on).
        self.oversize_drops = 0
        self.datagrams_sent = 0
        self.frames_sent = 0
        self.frames_coalesced = 0  # frames that shared a datagram
        self.wire_bytes_sent = 0   # actual encoded bytes through sendto
        self.nodes: Dict[int, Node] = {}
        self.ports: Dict[int, int] = {}
        self.metrics = NetworkMetrics()
        self._transports: Dict[int, asyncio.DatagramTransport] = {}
        # Per-(src, dst) coalescing buffers: encoded frames + byte count,
        # plus the scheduled flush handle (volatile, dies with the src).
        self._out: Dict[Tuple[int, int], List[bytes]] = {}
        self._out_bytes: Dict[Tuple[int, int], int] = {}
        self._flush_handles: Dict[Tuple[int, int], asyncio.Handle] = {}

    # -- topology -----------------------------------------------------------

    def register(self, node: Node) -> None:
        """Attach a node to the medium (its socket opens in :meth:`open`)."""
        if node.node_id in self.nodes:
            raise SimulationError(f"node {node.node_id} already registered")
        self.nodes[node.node_id] = node

    def node_ids(self) -> Tuple[int, ...]:
        """All registered node ids, sorted."""
        return tuple(sorted(self.nodes))

    # -- socket lifecycle ---------------------------------------------------

    async def open(self, node_id: int) -> int:
        """Bind (or re-bind) the node's UDP socket; returns its port."""
        if node_id not in self.nodes:
            raise SimulationError(f"unknown node {node_id}")
        self.close(node_id)
        transport, _ = await self.runtime.loop.create_datagram_endpoint(
            lambda: _NodeProtocol(self, node_id),
            local_addr=("127.0.0.1", 0))
        port = transport.get_extra_info("sockname")[1]
        self._transports[node_id] = transport
        self.ports[node_id] = port
        return port

    async def open_all(self) -> None:
        """Bind a socket for every registered node."""
        for node_id in self.node_ids():
            await self.open(node_id)

    def close(self, node_id: int) -> None:
        """Close the node's socket (datagrams in flight to it are lost).

        Frames the node had buffered for coalescing are volatile sender
        state and vanish with the process, exactly like the simulated
        stubborn backlog on a crash.
        """
        transport = self._transports.pop(node_id, None)
        if transport is not None:
            transport.close()
        self.ports.pop(node_id, None)
        for key in [k for k in self._out if k[0] == node_id]:
            self._out.pop(key, None)
            self._out_bytes.pop(key, None)
            handle = self._flush_handles.pop(key, None)
            if handle is not None:
                handle.cancel()

    def close_all(self) -> None:
        """Close every socket (end of run)."""
        for node_id in list(self._transports):
            self.close(node_id)

    # -- sending ------------------------------------------------------------

    def send(self, src: int, dst: int, message: WireMessage) -> None:
        """Inject one message from ``src`` to ``dst``.

        Injected loss and duplication are decided at send time with
        independent seeded draws; real UDP may add its own loss,
        reordering and (in principle) duplication on top.

        Raises :class:`OversizeDatagramError` (after counting the drop)
        when the encoded message cannot fit one datagram — fragmenting
        is a layer this transport deliberately does not have.
        """
        if dst not in self.nodes:
            raise SimulationError(f"unknown destination {dst}")
        self.metrics.sent += 1
        self.metrics.bytes_sent += estimate_size(message)
        self.metrics.by_type[message.type] = \
            self.metrics.by_type.get(message.type, 0) + 1

        if src == dst:
            # Loopback: reliable, in-process, never serialised.
            self.runtime.call_soon(self._deliver, src, dst, message)
            return
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.metrics.lost += 1
            return
        config = self.wire_config
        duplicated = bool(self.duplicate_rate
                          and self.rng.random() < self.duplicate_rate)
        if duplicated:
            self.metrics.duplicated += 1
        if config.coalesce:
            frame = wire.encode_frame(src, message)
            self._check_size(message, len(frame))
            self._enqueue(src, dst, frame)
            if duplicated:
                self._enqueue(src, dst, frame)
            return
        data = wire.encode(src, message, version=config.version)
        self._check_size(message, len(data))
        self.frames_sent += 1
        self._transmit(src, dst, data)
        if duplicated:
            self.frames_sent += 1
            self._transmit(src, dst, data)

    def multisend(self, src: int, message: WireMessage,
                  targets: Optional[Tuple[int, ...]] = None) -> None:
        """The paper's ``multisend`` macro: send to every process,
        including the sender itself (Section 3.1, footnote 2).

        ``targets`` restricts the send to a view's member set; ids with
        no socket yet are skipped (their stack is still being built)."""
        if targets is None:
            for dst in self.nodes:
                self.send(src, dst, message)
            return
        for dst in targets:
            if dst in self.nodes:
                self.send(src, dst, message)

    # -- internals ----------------------------------------------------------

    def _check_size(self, message: WireMessage, size: int) -> None:
        limit = self.wire_config.max_datagram_bytes
        if size > limit:
            self.oversize_drops += 1
            self.metrics.lost += 1
            raise OversizeDatagramError(message.type, size, limit)

    def _enqueue(self, src: int, dst: int, frame: bytes) -> None:
        """Buffer one v2 frame; flush by size now or by delay later."""
        key = (src, dst)
        buffered = self._out_bytes.get(key, 0)
        if buffered and buffered + len(frame) > \
                self.wire_config.max_frame_bytes:
            self._flush(key)
        buf = self._out.setdefault(key, [])
        buf.append(frame)
        self._out_bytes[key] = self._out_bytes.get(key, 0) + len(frame)
        self.frames_sent += 1
        if key not in self._flush_handles:
            delay = self.wire_config.flush_delay
            if delay > 0:
                handle = self.runtime.schedule(delay, self._flush, key)
            else:
                handle = self.runtime.call_soon(self._flush, key)
            self._flush_handles[key] = handle

    def _flush(self, key: Tuple[int, int]) -> None:
        """Transmit one (src, dst) buffer as a single datagram."""
        handle = self._flush_handles.pop(key, None)
        if handle is not None:
            handle.cancel()
        frames = self._out.pop(key, None)
        self._out_bytes.pop(key, None)
        if not frames:
            return
        if len(frames) > 1:
            self.frames_coalesced += len(frames) - 1
        self._transmit(key[0], key[1], b"".join(frames))

    def _transmit(self, src: int, dst: int, data: bytes) -> None:
        transport = self._transports.get(src)
        port = self.ports.get(dst)
        if transport is None or transport.is_closing() or port is None:
            # Sender has no socket (its process is down) or the
            # destination is unreachable: the datagram is simply lost.
            self.metrics.lost += 1
            return
        if self.max_send_buffer is not None:
            buffered = transport.get_write_buffer_size()
            if buffered > self.send_buffer_high_water:
                self.send_buffer_high_water = buffered
            if buffered >= self.max_send_buffer:
                # Bounded send queue: dropping here is ordinary channel
                # loss to the layers above (fair loss is preserved — the
                # buffer drains between sends).
                self.send_overflows += 1
                self.metrics.lost += 1
                return
        self.datagrams_sent += 1
        self.wire_bytes_sent += len(data)
        transport.sendto(data, ("127.0.0.1", port))

    def _receive(self, dst: int, data: bytes) -> None:
        try:
            arrivals = wire.decode_datagram(data)
        except wire.WireCodecError:
            self.metrics.lost += 1
            return
        for src, message in arrivals:
            self._deliver(src, dst, message)

    def _deliver(self, src: int, dst: int, message: WireMessage) -> None:
        node = self.nodes.get(dst)
        if node is None:
            self.metrics.dropped_down += 1
            return
        if node.deliver(message, src):
            self.metrics.delivered += 1
        else:
            self.metrics.dropped_down += 1
