"""Live implementation of the runtime interface over asyncio.

:class:`LiveRuntime` runs the *same* generator-based protocol code as the
deterministic simulator, but against a real event loop:

* the clock is the loop's monotonic clock, rebased so ``now`` starts at
  0.0 (protocol timeouts are written in seconds and work unchanged);
* ``schedule`` maps onto ``loop.call_later`` and ``call_soon`` onto
  ``loop.call_soon`` — the only two operations the task/event primitives
  need;
* tasks remain cooperative generators stepped by callbacks, so the
  single-threaded atomicity assumption of the paper ("statements
  associated with message receptions are executed atomically") still
  holds: the asyncio loop never runs two callbacks concurrently.

What is *not* preserved is determinism: callback ordering depends on
wall-clock timing and the OS scheduler.  The protocols tolerate this by
construction — the paper's model is asynchronous — and the conformance
suite (tests/integration/test_runtime_conformance.py) checks that both
runtimes A-deliver the same totally-ordered stream for the same workload.

Exceptions raised by protocol callbacks are captured on
:attr:`LiveRuntime.errors` (asyncio would otherwise just log them);
harnesses re-raise them after the run so failures are loud.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.runtime.api import Runtime
from repro.runtime.primitives import Event

__all__ = ["LiveRuntime"]


class _FutureWaiter:
    """Adapter letting ``run_until_event`` park on an asyncio future."""

    __slots__ = ("future",)

    def __init__(self, future: "asyncio.Future[Any]"):
        self.future = future

    @property
    def dead(self) -> bool:
        return self.future.done()

    def _resume(self, value: Any) -> None:  # called by Event.fire
        if not self.future.done():
            self.future.set_result(value)


class LiveRuntime(Runtime):
    """Real-time runtime: asyncio loop, wall clock, captured errors.

    Parameters
    ----------
    seed:
        Root seed for the named RNG streams (drives the *injected*
        loss/duplication of :class:`~repro.runtime.live_net.LiveNetwork`;
        timing remains wall-clock and therefore non-deterministic).
    loop:
        An event loop to drive; a fresh one is created (and owned, i.e.
        closed by :meth:`close`) when omitted.
    """

    def __init__(self, seed: int = 0,
                 loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        super().__init__(seed=seed)
        self._owns_loop = loop is None
        self.loop = loop if loop is not None else asyncio.new_event_loop()
        self._epoch = self.loop.time()
        self._event_count = 0
        # (exception, context) pairs from protocol callbacks.
        self.errors: List[Tuple[BaseException, str]] = []

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds of wall-clock time since this runtime was created."""
        return self.loop.time() - self._epoch

    def jump_clock(self, delta: float) -> None:
        """Skew the runtime clock ``delta`` seconds forward.

        Models an NTP step or a VM pause: already-armed timers keep
        their real delays, but every reader of :attr:`now` — adaptive
        failure-detector timeouts above all — sees time leap.  Used by
        the chaos engine's clock-jump nemesis; the protocols must
        tolerate it because the paper's model is fully asynchronous.
        """
        if delta < 0:
            raise SimulationError(f"clock can only jump forward, not {delta}")
        self._epoch -= delta

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (useful as a work metric)."""
        return self._event_count

    # -- scheduling ---------------------------------------------------------

    def _step(self, callback: Callable, args: tuple) -> None:
        self._event_count += 1
        try:
            callback(*args)
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised later
            self.errors.append((exc, repr(callback)))

    def schedule(self, delay: float, callback: Callable,
                 *args: Any) -> asyncio.TimerHandle:
        """Run ``callback(*args)`` after ``delay`` wall-clock seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.loop.call_later(delay, self._step, callback, args)

    def call_soon(self, callback: Callable, *args: Any) -> asyncio.Handle:
        """Run ``callback(*args)`` on the next loop iteration."""
        return self.loop.call_soon(self._step, callback, args)

    # -- running -------------------------------------------------------------

    def run_for(self, seconds: float) -> None:
        """Drive the loop for ``seconds`` of wall-clock time."""
        self.loop.run_until_complete(asyncio.sleep(seconds))

    def run_until_event(self, event: Event,
                        limit: Optional[float] = None) -> Any:
        """Drive the loop until ``event`` fires; returns its value.

        Raises :class:`SimulationError` if ``limit`` wall-clock seconds
        pass first — the live analogue of the simulator's deadlock
        detector.
        """
        if event.fired:
            return event.value
        future: "asyncio.Future[Any]" = self.loop.create_future()
        event._add_waiter(_FutureWaiter(future))  # type: ignore[arg-type]

        async def wait() -> Any:
            if limit is None:
                return await future
            try:
                return await asyncio.wait_for(future, limit)
            except asyncio.TimeoutError:
                raise SimulationError(
                    f"timeout: event {event.name!r} not fired "
                    f"within {limit}s") from None

        return self.loop.run_until_complete(wait())

    def check_errors(self) -> None:
        """Re-raise the first exception captured from a callback."""
        if self.errors:
            exc, origin = self.errors[0]
            raise SimulationError(
                f"{len(self.errors)} callback error(s); first from "
                f"{origin}: {exc!r}") from exc

    def close(self) -> None:
        """Shut the loop down (only if this runtime created it)."""
        if self._owns_loop and not self.loop.is_closed():
            self.loop.close()
