"""Structured event tracing for runs.

Attach a :class:`Tracer` to a runtime (``sim.tracer = Tracer()``) and
the instrumented layers record what the protocol *did* — crashes,
recoveries, round commits, checkpoints, state transfers, decisions,
suspicion changes — each stamped with the runtime clock and node id.
Because simulated runs are deterministic, a sim trace is a complete,
replayable explanation of an execution; the harness and the CLI use it
for post-mortem debugging and the tests use it to assert *how* an
outcome was reached (e.g. "the late node caught up via state transfer,
not replay").  On the live runtime the same tracer records wall-clock
timestamps.

Tracing is strictly optional: with no tracer attached the instrumentation
is a single attribute check per event.
"""

from __future__ import annotations

from collections import Counter, deque
from itertools import islice
from typing import (Any, Deque, Dict, Iterable, List, NamedTuple, Optional,
                    Set)

__all__ = ["TraceEvent", "Tracer", "CATEGORIES"]

CATEGORIES = (
    "node",            # start / crash / recover
    "round",           # an AB round committed
    "checkpoint",      # durable checkpoint taken
    "state-transfer",  # state message sent / adopted
    "decision",        # a consensus instance decided
    "fd",              # failure-detector suspicion changes
)


class TraceEvent(NamedTuple):
    """One recorded protocol event."""

    time: float
    category: str
    node: int
    action: str
    details: Dict[str, Any]

    def format(self) -> str:
        """One-line human-readable rendering."""
        details = " ".join(f"{key}={value!r}"
                           for key, value in sorted(self.details.items()))
        return (f"[{self.time:10.4f}] n{self.node} "
                f"{self.category}/{self.action} {details}").rstrip()


class Tracer:
    """Bounded in-memory event recorder.

    Parameters
    ----------
    categories:
        Which categories to record (default: all).
    max_events:
        Ring-buffer bound; the oldest events are dropped beyond it.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 max_events: int = 100_000):
        requested = set(categories) if categories is not None \
            else set(CATEGORIES)
        unknown = requested - set(CATEGORIES)
        if unknown:
            raise ValueError(f"unknown trace categories: {sorted(unknown)}")
        self.categories: Set[str] = requested
        self.max_events = max_events
        # A deque with maxlen evicts the oldest event in O(1); the old
        # list-based ring did an O(n) front-shift on *every* record once
        # at capacity.
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.dropped = 0

    def record(self, time: float, category: str, node: int, action: str,
               **details: Any) -> None:
        """Record one event (no-op for filtered categories).

        Raises :class:`ValueError` for a category that does not exist at
        all — a typo at an instrumentation site must fail loudly, not
        silently drop the events it was supposed to capture.
        """
        if category not in self.categories:
            if category not in CATEGORIES:
                raise ValueError(
                    f"unknown trace category {category!r}; "
                    f"known: {sorted(CATEGORIES)}")
            return
        if len(self.events) == self.max_events:
            self.dropped += 1
        self.events.append(TraceEvent(time, category, node, action,
                                      details))

    # -- queries ------------------------------------------------------------

    def select(self, category: Optional[str] = None,
               node: Optional[int] = None,
               action: Optional[str] = None) -> List[TraceEvent]:
        """Events matching every given filter."""
        return [event for event in self.events
                if (category is None or event.category == category)
                and (node is None or event.node == node)
                and (action is None or event.action == action)]

    def counts(self) -> Dict[str, int]:
        """Events per ``category/action`` pair."""
        return dict(Counter(f"{event.category}/{event.action}"
                            for event in self.events))

    def format_text(self, limit: Optional[int] = None) -> str:
        """The trace (or its tail) as printable text."""
        events: Iterable[TraceEvent] = self.events
        if limit is not None:
            events = islice(self.events,
                            max(0, len(self.events) - limit), None)
        lines = [event.format() for event in events]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier events dropped")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
