"""Runtime abstraction: scheduler, tasks, processes, seeded randomness.

This package is the substrate every protocol layer is written against:

* :class:`~repro.runtime.api.Runtime` — the interface (clock, timers,
  task spawn/join, ``Event``/``Signal``/``AnyOf`` waiting, seeded RNG
  streams, tracing).
* :class:`~repro.runtime.sim.SimRuntime` (alias ``Simulator``) — the
  deterministic virtual-time implementation.
* :class:`~repro.runtime.node.Node` /
  :class:`~repro.runtime.node.NodeComponent` — the crash-recovery
  process model.
* :class:`~repro.runtime.rng.SeedSequence` — named seeded randomness.
* :class:`~repro.runtime.trace.Tracer` — structured event recording.

The asyncio/UDP implementation lives in :mod:`repro.runtime.live` and
:mod:`repro.runtime.live_net`.  It is deliberately **not** imported here:
protocol modules import this package at module level, and keeping the
live modules out of the package root (a) keeps the deterministic import
surface free of wall-clock machinery, which the static analyzer scopes
differently (see docs/ANALYSIS.md), and (b) avoids an import cycle
(``live_net`` builds on ``repro.transport``, which itself builds on this
package).  Import them explicitly::

    from repro.runtime.live import LiveRuntime
    from repro.runtime.live_net import LiveNetwork
"""

from repro.runtime.api import Runtime, StorageFactory, TimerHandle, \
    TransportMedium
from repro.runtime.node import Node, NodeComponent
from repro.runtime.primitives import AnyOf, Event, Signal, Task
from repro.runtime.rng import SeedSequence
from repro.runtime.sim import SimRuntime, Simulator, Timer
from repro.runtime.trace import CATEGORIES, TraceEvent, Tracer

__all__ = [
    "AnyOf",
    "CATEGORIES",
    "Event",
    "Node",
    "NodeComponent",
    "Runtime",
    "SeedSequence",
    "Signal",
    "SimRuntime",
    "Simulator",
    "StorageFactory",
    "Task",
    "Timer",
    "TimerHandle",
    "TraceEvent",
    "TransportMedium",
    "Tracer",
]
