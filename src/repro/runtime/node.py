"""Crash-recovery process (node) abstraction.

A :class:`Node` models one process of the paper's system model
(Section 2.1):

* while *up* it runs tasks at its own speed;
* a *crash* wipes its volatile memory (tasks, message handlers, input
  buffer) but not its stable storage;
* a *recovery* re-runs every component's start hook — the paper's single
  "upon initialization or recovery" entry point — so initial start and
  recovery share one code path.

Protocol layers are :class:`NodeComponent` subclasses stacked on a node.
Components register message handlers and spawn tasks in ``on_start``;
both are torn down automatically on crash.

A node is runtime-agnostic: it runs unchanged on
:class:`~repro.runtime.sim.SimRuntime` (where "crash" is a bookkeeping
event in virtual time) and on :class:`~repro.runtime.live.LiveRuntime`
(where the harness additionally closes the node's UDP socket and reopens
its storage directory to emulate a real process kill).  The owning
runtime is stored under the historical attribute name ``sim``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.errors import ProcessDown, SimulationError
from repro.runtime.api import Runtime
from repro.runtime.primitives import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.stable import StableStorage

__all__ = ["Node", "NodeComponent"]


class NodeComponent:
    """Base class for protocol layers stacked on a :class:`Node`.

    Lifecycle hooks (all optional to override):

    ``on_start()``
        Called when the node first starts *and* after every recovery.
        Register message handlers and spawn tasks here; rebuild volatile
        state from stable storage.
    ``on_crash()``
        Called at the instant of a crash, after tasks are killed and
        handlers cleared.  Drop volatile state here.
    """

    name = "component"

    def __init__(self) -> None:
        self.node: Optional[Node] = None

    def attach(self, node: "Node") -> None:
        """Bind the component to its node (called by ``Node.add_component``)."""
        self.node = node

    def on_start(self) -> None:
        """Initialisation/recovery hook (paper: 'upon initialization or recovery')."""

    def on_crash(self) -> None:
        """Crash hook: volatile state must be considered lost."""


class Node:
    """One crash-recovery process.

    Parameters
    ----------
    sim:
        The owning runtime.
    node_id:
        Dense integer identity (``0..n-1``).
    storage:
        The node's stable storage; survives crashes by construction.
    """

    def __init__(self, sim: Runtime, node_id: int,
                 storage: "StableStorage") -> None:
        self.sim = sim
        self.node_id = node_id
        self.storage = storage
        self.up = False
        self.components: List[NodeComponent] = []
        self._tasks: List[Task] = []
        self._handlers: Dict[str, Callable[[Any, int], None]] = {}
        self._started = False
        # Statistics for the harness.
        self.crash_count = 0
        self.recovery_count = 0
        self.crash_times: List[float] = []
        self.recovery_times: List[float] = []
        self.last_up_at = 0.0
        self.total_uptime = 0.0
        self.recovery_durations: List[float] = []
        self._recovering_since: Optional[float] = None
        # Gray failure: a slow disk stalls the whole (single-threaded)
        # process.  While now < stall_until, inbound messages are
        # deferred, not dropped — equivalent to extra channel delay,
        # which the asynchronous model already permits.
        self.stall_until = 0.0

    # -- composition ---------------------------------------------------------

    def add_component(self, component: NodeComponent) -> NodeComponent:
        """Stack a protocol layer on this node (before :meth:`start`)."""
        if self._started:
            raise SimulationError(
                "components must be added before the node starts")
        component.attach(self)
        self.components.append(component)
        return component

    def get_component(self, cls: type) -> Any:
        """Return the first component of the given class (or raise)."""
        for component in self.components:
            if isinstance(component, cls):
                return component
        raise KeyError(f"node {self.node_id} has no component {cls.__name__}")

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Bring the node up for the first time."""
        if self._started:
            raise SimulationError(f"node {self.node_id} already started")
        self._started = True
        self.up = True
        self.last_up_at = self.sim.now
        self.sim.trace("node", self.node_id, "start")
        for component in self.components:
            component.on_start()

    def crash(self) -> None:
        """Crash the node: kill tasks, clear handlers, lose volatile state."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        self.sim.trace("node", self.node_id, "crash")
        self.crash_times.append(self.sim.now)
        self.total_uptime += self.sim.now - self.last_up_at
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.kill()
        self._handlers.clear()
        self.stall_until = 0.0
        for component in self.components:
            component.on_crash()

    def recover(self) -> None:
        """Bring a crashed node back up and re-run every start hook."""
        if self.up:
            return
        if not self._started:
            raise SimulationError(f"node {self.node_id} never started")
        self.up = True
        self.recovery_count += 1
        self.sim.trace("node", self.node_id, "recover")
        self.recovery_times.append(self.sim.now)
        self.last_up_at = self.sim.now
        self._recovering_since = self.sim.now
        for component in self.components:
            component.on_start()
        if self._recovering_since is not None:
            self.recovery_durations.append(self.sim.now - self._recovering_since)
            self._recovering_since = None

    def mark_recovery_complete(self) -> None:
        """Record the end of the recovery procedure (replay finished).

        Components whose recovery work is asynchronous (e.g. the replay
        loop of the Atomic Broadcast layer) call this when they are caught
        up, so recovery-duration metrics reflect real replay time.
        """
        if self._recovering_since is not None:
            self.recovery_durations.append(self.sim.now - self._recovering_since)
            self._recovering_since = None

    # -- tasks ------------------------------------------------------------------

    def spawn(self, gen: Generator, name: str) -> Task:
        """Spawn a task that is automatically killed when the node crashes."""
        if not self.up:
            raise ProcessDown(f"node {self.node_id} is down")
        task = self.sim.spawn(gen, name=f"n{self.node_id}:{name}")
        self._tasks.append(task)
        if len(self._tasks) > 64:  # drop finished tasks opportunistically
            self._tasks = [t for t in self._tasks if t.alive]
        return task

    # -- message dispatch --------------------------------------------------------

    def register_handler(self, msg_type: str,
                         handler: Callable[[Any, int], None]) -> None:
        """Route incoming messages with ``msg.type == msg_type`` to ``handler``.

        Handlers run atomically with respect to each other and to task
        steps (the runtime is single-threaded), matching the paper's
        "statements associated with message receptions are executed
        atomically".
        """
        self._handlers[msg_type] = handler

    def stall(self, duration: float) -> None:
        """Gray failure: freeze message processing for ``duration``.

        Stalls accumulate (a queue of slow disk writes pushes the horizon
        out further); a crash clears the stall with the rest of the
        volatile state.
        """
        if duration <= 0:
            return
        base = max(self.stall_until, self.sim.now)
        self.stall_until = base + duration

    def deliver(self, message: Any, sender: int) -> bool:
        """Called by the transport when a message arrives.

        Messages arriving while the node is down are lost (Section 2.1).
        Messages arriving while the node is *stalled* are deferred until
        the stall horizon passes (the process is slow, not crashed).
        Returns ``True`` if the message was consumed.
        """
        if not self.up:
            return False
        if self.sim.now < self.stall_until:
            # Re-present the message once the stall ends; the horizon may
            # have grown by then, in which case it defers again.
            self.sim.schedule(self.stall_until - self.sim.now,
                              self.deliver, message, sender)
            return True
        handler = self._handlers.get(message.type)
        if handler is None:
            return False
        handler(message, sender)
        return True

    # -- metrics -------------------------------------------------------------------

    def uptime(self) -> float:
        """Total time this node has spent up."""
        total = self.total_uptime
        if self.up:
            total += self.sim.now - self.last_up_at
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "down"
        return f"<Node {self.node_id} {state}>"
