"""The :class:`Runtime` interface: everything protocols take from a scheduler.

The protocol layers (``repro.core``, ``repro.consensus``, ``repro.quorum``,
``repro.multigroup``) were written against the discrete-event simulator.
This module names the exact contract they actually use so the same code
can run on more than one substrate:

* a **clock** (:attr:`Runtime.now`) and **timers**
  (:meth:`Runtime.schedule` / :meth:`Runtime.call_soon`);
* **task** spawn/join (:meth:`Runtime.spawn`, generator-based
  :class:`~repro.runtime.primitives.Task`);
* **waiting** primitives (:meth:`Runtime.event`, :meth:`Runtime.signal`,
  :class:`~repro.runtime.primitives.AnyOf`);
* **seeded randomness** (:meth:`Runtime.rng` — named streams derived
  from one root seed);
* structured **tracing** (:meth:`Runtime.trace`).

Two implementations exist:

* :class:`~repro.runtime.sim.SimRuntime` — the deterministic virtual-time
  scheduler (the paper-faithful simulator; byte-for-byte reproducible).
* :class:`~repro.runtime.live.LiveRuntime` — a real asyncio event loop
  with wall-clock timers and localhost UDP transport
  (:mod:`repro.runtime.live_net`).

The two remaining dependencies of a protocol stack — the **stable-storage
handle** and the **transport endpoint** — are per-node, not per-runtime:
storage is injected into each :class:`~repro.runtime.node.Node` (a
:data:`StorageFactory`), and :class:`~repro.transport.endpoint.Endpoint`
is constructed over any object satisfying :class:`TransportMedium`
(simulated :class:`~repro.transport.network.Network` or UDP-backed
:class:`~repro.runtime.live_net.LiveNetwork`).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Tuple

from repro.runtime.primitives import Event, Signal, Task
from repro.runtime.rng import SeedSequence

if TYPE_CHECKING:  # type-only: storage/transport sit above the runtime
    from repro.storage.stable import StableStorage
    from repro.runtime.trace import Tracer

try:  # typing.Protocol: 3.8+; guarded anyway so the module stays portable
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

__all__ = ["Runtime", "TimerHandle", "TransportMedium", "StorageFactory"]


@runtime_checkable
class TimerHandle(Protocol):
    """What :meth:`Runtime.schedule` returns: a cancellable timer.

    The simulator returns its heap entry
    (:class:`~repro.runtime.sim.Timer`); the live runtime returns an
    :class:`asyncio.TimerHandle`.  Protocol code only ever cancels them.
    """

    def cancel(self) -> None: ...


@runtime_checkable
class TransportMedium(Protocol):
    """The fair-loss channel contract the transport endpoint builds on.

    Section 3.1 of the paper: unreliable, non-FIFO, fair channels between
    every pair of processes.  Implementations: simulated
    :class:`~repro.transport.network.Network` and UDP
    :class:`~repro.runtime.live_net.LiveNetwork`.
    """

    def register(self, node: Any) -> None: ...

    def node_ids(self) -> Tuple[int, ...]: ...

    def send(self, src: int, dst: int, message: Any) -> None: ...

    def multisend(self, src: int, message: Any,
                  targets: Optional[Tuple[int, ...]] = None) -> None: ...


# Per-node stable storage injection: ``factory(node_id) -> StableStorage``.
StorageFactory = Callable[[int], "StableStorage"]


class Runtime(ABC):
    """Abstract scheduler: clock + timers + tasks + waiting + seeded RNG.

    Subclasses provide the clock and the callback queue; everything else
    (tasks, events, signals) is built here from those two operations, so
    the concurrency semantics protocols observe are identical on every
    implementation.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seeds = SeedSequence(seed)
        # Optional structured tracer (see repro.runtime.trace);
        # instrumented layers call self.trace(...) which no-ops when unset.
        self.tracer: Optional["Tracer"] = None

    # -- clock -------------------------------------------------------------

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time (virtual seconds on sim, wall seconds on live)."""

    # -- scheduling ---------------------------------------------------------

    @abstractmethod
    def schedule(self, delay: float, callback: Callable,
                 *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` time units."""

    @abstractmethod
    def call_soon(self, callback: Callable, *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` as soon as possible, after the
        currently-executing callback returns."""

    def spawn(self, gen: Generator, name: str = "task") -> Task:
        """Start a new task from a generator and schedule its first step."""
        task = Task(self, gen, name)
        self.call_soon(task._resume, None)
        return task

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot event bound to this runtime."""
        return Event(self, name)

    def signal(self, name: str = "") -> Signal:
        """Create a fresh multi-fire signal bound to this runtime."""
        return Signal(self, name)

    # -- seeded randomness ---------------------------------------------------

    def rng(self, name: str) -> random.Random:
        """The named seeded random stream (memoised per name)."""
        return self.seeds.stream(name)

    # -- tracing -------------------------------------------------------------

    def trace(self, category: str, node: int, action: str,
              **details: Any) -> None:
        """Record a protocol event if a tracer is attached."""
        if self.tracer is not None:
            self.tracer.record(self.now, category, node, action, **details)
