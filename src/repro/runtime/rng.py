"""Named, seeded random-number streams.

Every source of randomness in a simulation (network delays, message loss,
workload arrivals, fault injection) draws from its own named child stream
derived from a single root seed.  This keeps runs bit-for-bit reproducible
*and* decoupled: adding a draw to one stream does not perturb the others,
so experiments that toggle a feature stay comparable.

The live runtime uses the same mechanism for its injected loss/duplicate
draws, so a live run's *fault pattern* is reproducible even though its
timing is not.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["SeedSequence"]


class SeedSequence:
    """Derives independent :class:`random.Random` streams from a root seed.

    >>> seeds = SeedSequence(42)
    >>> net = seeds.stream("network")
    >>> wl = seeds.stream("workload")
    >>> seeds.stream("network") is net   # streams are memoised
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        # The one sanctioned random.Random construction: this *is* the
        # seed boundary every other draw in the system flows from.
        stream = random.Random(self.derive(name))  # repro: noqa(DET004) -- the sanctioned seed boundary itself
        self._streams[name] = stream
        return stream

    def derive(self, name: str) -> int:
        """Derive a deterministic 64-bit child seed for ``name``."""
        digest = hashlib.sha256(
            f"{self.root_seed}/{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def child(self, name: str) -> "SeedSequence":
        """A nested seed sequence, for per-node stream families."""
        return SeedSequence(self.derive(name))
