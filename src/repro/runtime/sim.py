"""Deterministic discrete-event implementation of the runtime interface.

:class:`SimRuntime` is the virtual-time substrate the paper's evaluation
runs on — a virtual clock plus a priority queue of callbacks.  It is
intentionally small and dependency-free.

Determinism: two events scheduled at the same virtual time are delivered
in scheduling order (a monotone sequence number breaks ties), so a run is
a pure function of the seed used by the surrounding layers.  This is the
contract the whole test suite and every benchmark table relies on; the
static analyzer's DET rules police the inputs (no wall clock, no OS
entropy, no unseeded randomness) inside this implementation and the
layers above it.

``Simulator`` is kept as an alias: the class was born under that name and
the test suite, benchmarks and docs refer to it extensively.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.runtime.api import Runtime
from repro.runtime.primitives import Event

__all__ = ["SimRuntime", "Simulator", "Timer"]


class Timer:
    """A cancellable handle for a scheduled callback (the heap entry)."""

    __slots__ = ("when", "seq", "_callback", "_args", "cancelled", "_owner")

    def __init__(self, when: float, seq: int, callback: Callable, args: tuple,
                 owner: Optional["SimRuntime"] = None):
        self.when = when
        self.seq = seq
        self._callback = callback
        self._args = args
        self.cancelled = False
        self._owner = owner

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        if self.cancelled:
            return
        self.cancelled = True
        self._callback = None
        self._args = ()
        if self._owner is not None:
            self._owner._note_cancelled()

    def _fire(self) -> None:
        if not self.cancelled:
            callback, args = self._callback, self._args
            self.cancelled = True  # timers are one-shot
            self._callback = None
            self._args = ()
            callback(*args)

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class SimRuntime(Runtime):
    """The virtual-time event loop.

    A simulation is a pure function of its initial configuration: ties in
    the schedule are broken by insertion order, and all randomness in the
    layers above flows from named seeded streams
    (:mod:`repro.runtime.rng`).
    """

    # Compaction kicks in once this many dead entries accumulate AND they
    # outnumber the live ones; below the floor the O(n) rebuild is not
    # worth its constant factor.
    _COMPACT_FLOOR = 64

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self._now = 0.0
        self._heap: List[Timer] = []
        self._seq = 0
        self._event_count = 0
        # Cancelled timers still sitting in the heap.  Long runs of
        # stubborn retransmission / heartbeat timers cancel constantly;
        # without compaction the dead entries linger until popped and
        # every push pays log(dead + live).
        self._cancelled_in_heap = 0
        self.compactions = 0

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (useful as a work metric)."""
        return self._event_count

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Timer:
        """Run ``callback(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        timer = Timer(self._now + delay, self._seq, callback, args,
                      owner=self)
        self._seq += 1
        heapq.heappush(self._heap, timer)
        return timer

    def _note_cancelled(self) -> None:
        """A heap entry died; compact lazily once the dead dominate.

        Rebuilding from the live entries is deterministic: ``(when, seq)``
        keys are unique, so the pop order of a re-heapified subset is
        identical to popping the original heap and skipping the dead.
        """
        self._cancelled_in_heap += 1
        if (self._cancelled_in_heap > self._COMPACT_FLOOR
                and self._cancelled_in_heap * 2 > len(self._heap)):
            self._heap = [t for t in self._heap if not t.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_in_heap = 0
            self.compactions += 1

    def call_soon(self, callback: Callable, *args: Any) -> Timer:
        """Run ``callback(*args)`` at the current virtual time, after the
        currently-executing callback returns."""
        return self.schedule(0.0, callback, *args)

    # -- running -------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have run.  Returns the final virtual time.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        processed = 0
        while self._heap:
            timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                self._cancelled_in_heap -= 1
                continue
            if until is not None and timer.when > until:
                break
            if max_events is not None and processed >= max_events:
                break
            heapq.heappop(self._heap)
            self._now = timer.when
            self._event_count += 1
            processed += 1
            timer._fire()
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_event(self, event: Event,
                        limit: Optional[float] = None) -> Any:
        """Run until ``event`` fires; returns its value.

        Raises :class:`SimulationError` if the queue drains (or ``limit``
        passes) without the event firing — a deadlock detector for tests.
        """
        while not event.fired:
            if self.pending() == 0:
                raise SimulationError(
                    f"deadlock: event {event.name!r} never fired "
                    f"(queue drained at t={self._now})")
            if limit is not None and self._heap[0].when > limit:
                raise SimulationError(
                    f"timeout: event {event.name!r} not fired by t={limit}")
            self.run(max_events=1)
        return event.value

    def pending(self) -> int:
        """Number of live (non-cancelled) timers in the queue."""
        return len(self._heap) - self._cancelled_in_heap


# Historical name, used pervasively by tests, benchmarks and docs.
Simulator = SimRuntime
