"""Runtime-agnostic concurrency primitives.

These classes implement the cooperative-task model every protocol in this
repository is written against:

* :class:`Task` — a cooperative coroutine implemented as a Python
  generator.  A task advances by ``yield``-ing *wait requests*:

  - ``yield 1.5`` — sleep for 1.5 time units;
  - ``yield event`` — block until the :class:`Event` fires, the ``yield``
    evaluates to the event's value;
  - ``yield other_task`` — join another task, evaluating to its result;
  - ``yield None`` — yield the CPU and resume at the same time.

* :class:`Event` — a one-shot trigger carrying a value.
* :class:`Signal` — a multi-fire broadcast used to implement the paper's
  "wait until <condition>" statements: waiters re-check their predicate
  each time the signal fires.
* :class:`AnyOf` — a wait request satisfied by the first of several
  events.

None of them care *what* advances time: they only ever talk to their
runtime through :meth:`Runtime.call_soon` and :meth:`Runtime.schedule`,
so the exact same protocol code runs on the deterministic virtual-time
scheduler (:class:`~repro.runtime.sim.SimRuntime`) and on a real asyncio
event loop (:class:`~repro.runtime.live.LiveRuntime`).

The owning runtime is stored under the historical attribute name ``sim``
(the primitives predate the runtime split); protocol code reads clocks
and spawns helpers through it either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, \
    Optional

from repro.errors import SimulationError, TaskKilled

if TYPE_CHECKING:  # kept out of runtime: the primitives stay dependency-free
    from repro.runtime.api import Runtime, TimerHandle

__all__ = ["Task", "Event", "Signal", "AnyOf"]


class Event:
    """A one-shot trigger that tasks can wait on.

    Firing an already-fired event is an error; use :class:`Signal` for
    recurring notifications.
    """

    __slots__ = ("sim", "fired", "value", "_waiters", "name")

    def __init__(self, sim: "Runtime", name: str = ""):
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._waiters: List["Task"] = []
        self.name = name

    def fire(self, value: Any = None) -> None:
        """Trigger the event, waking every waiting task with ``value``."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            if not task.dead:
                self.sim.call_soon(task._resume, value)

    def _add_waiter(self, task: "Task") -> None:
        if self.fired:
            self.sim.call_soon(task._resume, self.value)
        else:
            self._waiters.append(task)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else f"{len(self._waiters)} waiters"
        return f"<Event {self.name!r} {state}>"


class Signal:
    """A multi-fire broadcast: each :meth:`wait` observes the *next* fire.

    This is the building block for the paper's ``wait until <predicate>``
    statements::

        while not predicate():
            yield signal.wait()

    The loop re-checks the predicate after every notification, so spurious
    wake-ups are harmless.
    """

    __slots__ = ("sim", "_event", "name")

    def __init__(self, sim: "Runtime", name: str = ""):
        self.sim = sim
        self.name = name
        self._event: Optional[Event] = None

    def wait(self) -> Event:
        """Return an event that fires at the next :meth:`notify`."""
        if self._event is None or self._event.fired:
            self._event = Event(self.sim, name=f"signal:{self.name}")
        return self._event

    def notify(self, value: Any = None) -> None:
        """Wake every task currently waiting on the signal."""
        if self._event is not None and not self._event.fired:
            event, self._event = self._event, None
            event.fire(value)


class AnyOf:
    """Wait request satisfied by whichever of several events fires first.

    ``yield AnyOf([e1, e2])`` evaluates to the ``(event, value)`` pair of
    the first event to fire.  Events that fire later are ignored by this
    waiter (but remain fired for other waiters).
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")


class Task:
    """A cooperative coroutine driven by a runtime.

    Tasks are created through :meth:`Runtime.spawn`.  A task finishes
    when its generator returns (its ``StopIteration`` value becomes the
    task result) and may be force-terminated with :meth:`kill`, which
    throws :class:`~repro.errors.TaskKilled` into the generator.
    """

    __slots__ = ("sim", "gen", "name", "dead", "finished", "result",
                 "_done_event", "_sleep_timer", "_running")

    def __init__(self, sim: "Runtime", gen: Generator, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.dead = False        # killed or finished: will never resume
        self.finished = False    # ran to completion normally
        self.result: Any = None
        self._done_event: Optional[Event] = None
        self._sleep_timer: Optional["TimerHandle"] = None
        self._running = False

    # -- public API ------------------------------------------------------

    def kill(self) -> None:
        """Terminate the task, unwinding ``finally`` blocks in its body."""
        if self.dead:
            return
        self.dead = True
        if self._sleep_timer is not None:
            self._sleep_timer.cancel()
            self._sleep_timer = None
        if self._running:
            # The task is killing itself from inside its own body: let the
            # exception propagate out of the current resume step.
            raise TaskKilled(self.name)
        try:
            self.gen.close()
        except RuntimeError:  # pragma: no cover - generator already running
            pass
        self._finish(None)

    def done_event(self) -> Event:
        """An event fired (with the task result) when the task completes."""
        if self._done_event is None:
            self._done_event = Event(self.sim, name=f"done:{self.name}")
            if self.dead:
                self._done_event.fire(self.result)
        return self._done_event

    @property
    def alive(self) -> bool:
        return not self.dead

    # -- kernel internals -------------------------------------------------

    def _finish(self, result: Any) -> None:
        self.dead = True
        self.result = result
        if self._done_event is not None and not self._done_event.fired:
            self._done_event.fire(result)

    def _resume(self, value: Any = None) -> None:
        if self.dead:
            return
        self._sleep_timer = None
        self._running = True
        try:
            request = self.gen.send(value)
        except StopIteration as stop:
            self._running = False
            self.finished = True
            self._finish(stop.value)
            return
        except TaskKilled:
            self._running = False
            self._finish(None)
            return
        finally:
            self._running = False
        self._wait_on(request)

    def _resume_anyof(self, events: List[Event], fired: Event) -> None:
        """Resume an AnyOf wait with the (event, value) pair that won."""
        if self.dead:
            return
        self._resume((fired, fired.value))

    def _wait_on(self, request: Any) -> None:
        if self.dead:  # killed itself during the step
            return
        if request is None:
            self.sim.call_soon(self._resume, None)
        elif isinstance(request, (int, float)):
            if request < 0:
                raise SimulationError(
                    f"task {self.name!r} yielded negative sleep {request}")
            self._sleep_timer = self.sim.schedule(request, self._resume, None)
        elif isinstance(request, Event):
            request._add_waiter(self)
        elif isinstance(request, Task):
            request.done_event()._add_waiter(self)
        elif isinstance(request, AnyOf):
            self._add_anyof_waiter(request)
        else:
            raise SimulationError(
                f"task {self.name!r} yielded unsupported request "
                f"{request!r}; expected float, Event, Task, AnyOf or None")

    def _add_anyof_waiter(self, request: AnyOf) -> None:
        resumed = [False]

        def wake(event: Event) -> None:
            if resumed[0] or self.dead:
                return
            resumed[0] = True
            self._resume((event, event.value))

        for event in request.events:
            waiter = _AnyOfWaiter(self, event, wake)
            event._add_waiter(waiter)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "dead" if self.dead else "alive"
        return f"<Task {self.name!r} {state}>"


class _AnyOfWaiter:
    """Adapter letting a single task wait on several events at once."""

    __slots__ = ("task", "event", "wake")

    def __init__(self, task: Task, event: Event, wake: Callable):
        self.task = task
        self.event = event
        self.wake = wake

    @property
    def dead(self) -> bool:
        return self.task.dead

    def _resume(self, value: Any) -> None:  # called by Event.fire
        self.wake(self.event)
