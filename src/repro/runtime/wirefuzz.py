"""Seeded fuzzing of the wire codec (property + adversarial suites).

Two properties of :mod:`repro.runtime.wire` are load-bearing for the
live runtime and checked here mechanically:

* **Round-trip identity across versions** — for every registered
  message class, a message built from random field values must survive
  ``encode → decode`` under wire v1 *and* v2, and both versions must
  decode to the same sender, the same type and equal field values
  (``nan`` compared by identity of kind, not ``==``).  This is what
  makes the version knob an honest A/B: the two formats are different
  bytes for the same meaning.
* **Total decoder** — feeding :func:`~repro.runtime.wire.decode_datagram`
  arbitrary bytes (random blobs, bit-flipped valid datagrams, truncated
  tails, length-field lies) must either return decoded messages or raise
  :class:`~repro.runtime.wire.WireCodecError`.  Any other exception is a
  crash a malformed UDP packet could trigger remotely.

Everything is driven by one seed, so a reported defect reproduces from
its printed iteration seed.  The ``repro wirefuzz`` CLI command runs
both suites (CI runs it as a bounded smoke step); the property tests
reuse the same engine with fixed seeds.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.runtime import wire
from repro.transport.message import WireMessage

__all__ = ["FuzzReport", "fuzz_roundtrip", "fuzz_decode", "run_fuzz",
           "registered_classes", "random_fields", "equivalent"]


class FuzzReport:
    """Outcome of a fuzz run: counters plus reproducible defect records."""

    def __init__(self) -> None:
        self.roundtrips = 0
        self.decode_attempts = 0
        self.clean_rejections = 0
        self.accepted = 0
        # (suite, iteration seed, description) triples; empty when ok.
        self.defects: List[Tuple[str, int, str]] = []

    @property
    def ok(self) -> bool:
        return not self.defects

    def merge(self, other: "FuzzReport") -> "FuzzReport":
        self.roundtrips += other.roundtrips
        self.decode_attempts += other.decode_attempts
        self.clean_rejections += other.clean_rejections
        self.accepted += other.accepted
        self.defects.extend(other.defects)
        return self

    def summary(self) -> str:
        state = "ok" if self.ok else f"{len(self.defects)} DEFECTS"
        return (f"wire fuzz: {state} — {self.roundtrips} round-trips, "
                f"{self.decode_attempts} adversarial decodes "
                f"({self.accepted} accepted, "
                f"{self.clean_rejections} cleanly rejected)")


def registered_classes() -> List[Tuple[str, Type[WireMessage]]]:
    """Every imported message class with an unambiguous tag, sorted.

    Classes are discovered the same way the decoder dispatches, so the
    fuzzed universe is exactly the decodable universe.  The protocol
    stacks are imported first so every tag in the type-id table has its
    class present even when the caller never touched those layers.
    """
    import repro.multigroup.multicast  # noqa: F401
    import repro.quorum.register  # noqa: F401
    found: Dict[str, Optional[Type[WireMessage]]] = {}
    wire._walk(WireMessage, found)
    return sorted((tag, cls) for tag, cls in found.items()
                  if cls is not None and tag != WireMessage.type)


def _scalar(rng: random.Random) -> Any:
    kind = rng.randrange(8)
    if kind == 0:
        return None
    if kind == 1:
        return rng.random() < 0.5
    if kind == 2:
        return rng.randrange(-2 ** 63, 2 ** 63)
    if kind == 3:
        # The awkward floats on purpose: nan, infinities, signed zero.
        return rng.choice([math.nan, math.inf, -math.inf, -0.0, 0.0,
                           rng.uniform(-1e18, 1e18)])
    if kind == 4:
        length = rng.randrange(0, 12)
        return "".join(chr(rng.choice([rng.randrange(32, 127),
                                       rng.randrange(0x100, 0x3000)]))
                       for _ in range(length))
    if kind == 5:
        return rng.randrange(0, 2 ** 200)  # varint stress
    if kind == 6:
        return ""
    return rng.randrange(-10, 10)


def _no_nan(value: Any) -> Any:
    # nan inside a set member or dict key defeats ==-based container
    # equality (nan != nan), so round-trip *verification* is impossible
    # even when the codec is exact; keep nan out of hashable contexts
    # (direct nan field values still exercise the nan paths).
    if isinstance(value, float) and math.isnan(value):
        return 0.0
    if isinstance(value, tuple):
        return tuple(_no_nan(item) for item in value)
    return value


def _hashable(rng: random.Random) -> Any:
    if rng.random() < 0.2:
        return _no_nan(tuple(_scalar(rng)
                             for _ in range(rng.randrange(0, 3))))
    return _no_nan(_scalar(rng))


def random_value(rng: random.Random, depth: int = 0) -> Any:
    """A random value from the codec's supported universe (minus bytes,
    which wire v1's storage codec deliberately rejects)."""
    if depth >= 3 or rng.random() < 0.55:
        return _scalar(rng)
    kind = rng.randrange(5)
    count = rng.randrange(0, 4)
    if kind == 0:
        return [random_value(rng, depth + 1) for _ in range(count)]
    if kind == 1:
        return tuple(random_value(rng, depth + 1) for _ in range(count))
    if kind == 2:
        return {_hashable(rng) for _ in range(count)}
    if kind == 3:
        return frozenset(_hashable(rng) for _ in range(count))
    return {_hashable(rng): random_value(rng, depth + 1)
            for _ in range(count)}


def random_fields(cls: Type[WireMessage],
                  rng: random.Random) -> Dict[str, Any]:
    """Random field values for one message class."""
    return {name: random_value(rng) for name in cls.fields}


def equivalent(left: Any, right: Any) -> bool:
    """Deep equality where ``nan == nan`` and ``-0.0 != 0.0``."""
    if isinstance(left, float) or isinstance(right, float):
        if not (isinstance(left, float) and isinstance(right, float)):
            return False
        if math.isnan(left) or math.isnan(right):
            return math.isnan(left) and math.isnan(right)
        return left == right and \
            math.copysign(1.0, left) == math.copysign(1.0, right)
    if isinstance(left, (list, tuple)):
        return type(left) is type(right) and len(left) == len(right) and \
            all(equivalent(a, b) for a, b in zip(left, right))
    if isinstance(left, dict):
        if not isinstance(right, dict) or len(left) != len(right):
            return False
        return all(key in right and equivalent(value, right[key])
                   for key, value in left.items())
    if isinstance(left, (set, frozenset)):
        return type(left) is type(right) and len(left) == len(right) and \
            left == right
    return type(left) is type(right) and bool(left == right)


def fuzz_roundtrip(iterations: int = 200, seed: int = 0) -> FuzzReport:
    """Cross-version round-trip fuzzing over every registered class."""
    report = FuzzReport()
    classes = registered_classes()
    master = random.Random(seed)  # repro: noqa(DET004) -- fuzz harness: explicitly seeded by the caller
    for iteration in range(iterations):
        sub_seed = master.randrange(2 ** 63)
        rng = random.Random(sub_seed)  # repro: noqa(DET004) -- per-iteration stream; sub_seed printed for replay
        tag, cls = classes[iteration % len(classes)]
        fields = random_fields(cls, rng)
        sender = rng.choice([0, 1, rng.randrange(0, 2 ** 32),
                             rng.randrange(2 ** 32, 2 ** 40)])
        message = wire.rebuild(tag, fields)
        try:
            decoded = {}
            for version in (1, 2):
                data = wire.encode(sender, message, version=version)
                decoded[version] = wire.decode(data)
        except wire.WireCodecError as exc:
            report.defects.append(
                ("roundtrip", sub_seed, f"{tag}: encode/decode raised {exc}"))
            continue
        except Exception as exc:  # noqa: BLE001 - the property under test
            report.defects.append(
                ("roundtrip", sub_seed,
                 f"{tag}: non-codec exception {type(exc).__name__}: {exc}"))
            continue
        for version, (got_sender, got) in decoded.items():
            if got_sender != sender:
                report.defects.append(
                    ("roundtrip", sub_seed,
                     f"{tag} v{version}: sender {got_sender} != {sender}"))
            elif type(got) is not cls:
                report.defects.append(
                    ("roundtrip", sub_seed,
                     f"{tag} v{version}: decoded {type(got).__name__}"))
            else:
                for name in cls.fields:
                    if not equivalent(fields[name], getattr(got, name)):
                        report.defects.append(
                            ("roundtrip", sub_seed,
                             f"{tag} v{version}: field {name!r} "
                             f"{fields[name]!r} != {getattr(got, name)!r}"))
        report.roundtrips += 1
    return report


def _adversarial_blob(rng: random.Random) -> bytes:
    """One malformed-or-maybe-valid datagram."""
    strategy = rng.randrange(5)
    if strategy == 0:
        return bytes(rng.randrange(256)
                     for _ in range(rng.randrange(0, 160)))
    # The remaining strategies mutate a structurally valid datagram.
    classes = registered_classes()
    tag, cls = classes[rng.randrange(len(classes))]
    message = wire.rebuild(tag, random_fields(cls, rng))
    try:
        data = bytearray(wire.encode(rng.randrange(0, 2 ** 32), message,
                                     version=rng.choice([1, 2])))
    except wire.WireCodecError:
        return b""
    if strategy == 1 and data:  # bit flip
        position = rng.randrange(len(data))
        data[position] ^= 1 << rng.randrange(8)
    elif strategy == 2:  # truncate
        data = data[:rng.randrange(0, len(data) + 1)]
    elif strategy == 3 and len(data) >= wire.HEADER.size:  # length lies
        data[-rng.randrange(1, wire.HEADER.size):] = b""
        data += bytes(rng.randrange(256) for _ in range(rng.randrange(8)))
    elif strategy == 4:  # concatenate junk behind a valid datagram
        data += bytes(rng.randrange(256)
                      for _ in range(rng.randrange(1, 32)))
    return bytes(data)


def fuzz_decode(iterations: int = 2000, seed: int = 0) -> FuzzReport:
    """Adversarial decoding: anything but WireCodecError is a defect."""
    report = FuzzReport()
    master = random.Random(seed)  # repro: noqa(DET004) -- fuzz harness: explicitly seeded by the caller
    for _ in range(iterations):
        sub_seed = master.randrange(2 ** 63)
        rng = random.Random(sub_seed)  # repro: noqa(DET004) -- per-iteration stream; sub_seed printed for replay
        blob = _adversarial_blob(rng)
        report.decode_attempts += 1
        try:
            wire.decode_datagram(blob)
            report.accepted += 1
        except wire.WireCodecError:
            report.clean_rejections += 1
        except Exception as exc:  # noqa: BLE001 - the property under test
            report.defects.append(
                ("decode", sub_seed,
                 f"{type(exc).__name__}: {exc} on {blob[:64]!r}"))
    return report


def run_fuzz(iterations: int = 500, seed: int = 0) -> FuzzReport:
    """Both suites under one seed (the CLI/CI entry point)."""
    report = fuzz_roundtrip(iterations, seed)
    return report.merge(fuzz_decode(iterations * 4, seed + 1))
