"""Small statistics helpers (no numpy dependency in the hot path)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

__all__ = ["percentile", "percentile_of_sorted", "summarize", "mean",
           "stdev"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0 <= q <= 100), linear interpolation."""
    return percentile_of_sorted(sorted(values), q)


def percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` for a sample that is *already sorted*.

    Summaries take several percentiles of one sample; sorting once and
    reusing the ordered list beats re-sorting per percentile.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean/median/p95/p99/min/max summary of a sample."""
    sample: List[float] = list(values)
    # One sort serves p50/p95/p99/min/max; the mean is summed in sample
    # order so results stay bit-identical to summing before sorting.
    ordered: List[float] = sorted(sample)
    return {
        "count": float(len(ordered)),
        "mean": mean(sample),
        "p50": percentile_of_sorted(ordered, 50),
        "p95": percentile_of_sorted(ordered, 95),
        "p99": percentile_of_sorted(ordered, 99),
        "min": ordered[0] if ordered else 0.0,
        "max": ordered[-1] if ordered else 0.0,
    }
