"""Small statistics helpers (no numpy dependency in the hot path)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

__all__ = ["percentile", "summarize", "mean", "stdev"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0 <= q <= 100), linear interpolation."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean/median/p95/p99/min/max summary of a sample."""
    sample: List[float] = list(values)
    return {
        "count": float(len(sample)),
        "mean": mean(sample),
        "p50": percentile(sample, 50),
        "p95": percentile(sample, 95),
        "p99": percentile(sample, 99),
        "min": min(sample) if sample else 0.0,
        "max": max(sample) if sample else 0.0,
    }
