"""Run-level metric collection.

The :class:`MetricsCollector` is the omniscient observer of a simulation:
it records every ``A-broadcast`` submission and every delivery at every
node, with virtual timestamps, and aggregates storage/network counters at
the end of the run.  The harness uses it both for reporting (latency,
throughput, log operations) and for verifying the Atomic Broadcast
properties post-hoc.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.ids import MessageId
from repro.metrics.stats import summarize

__all__ = ["MetricsCollector", "RunMetrics"]


class MetricsCollector:
    """Accumulates per-run observations (lives outside the fault model)."""

    def __init__(self) -> None:
        self.broadcast_times: Dict[MessageId, float] = {}
        self.broadcast_payloads: Dict[MessageId, Any] = {}
        # (node, incarnation, message, time) per delivery upcall, in order.
        self.deliveries: List[Tuple[int, int, MessageId, float]] = []
        self.first_delivery: Dict[MessageId, float] = {}
        self.delivery_latencies: List[float] = []
        # Deliveries whose broadcast was never recorded (e.g. a message
        # observed only through recovery replay of pre-instrumentation
        # state): counted here, excluded from the latency distribution.
        self.latency_skipped = 0
        # Consensus decision archive: instance -> decided value, plus any
        # disagreements observed (which verification turns into failures).
        self.decisions: Dict[int, Any] = {}
        self.decision_conflicts: List[Tuple[int, Any, Any]] = []
        # Membership archive: every view install at every node, in
        # observation order — (node, epoch, members, time, origin).
        # ``views_by_epoch`` records the first member set seen per epoch;
        # a node installing a *different* member set under the same epoch
        # lands in ``view_conflicts`` (verification turns it into a
        # failure: views must be uniform across the cluster).
        self.view_installs: List[Tuple[int, int, Tuple[int, ...], float,
                                       str]] = []
        self.views_by_epoch: Dict[int, Tuple[int, ...]] = {}
        self.view_conflicts: List[Tuple[int, int, Tuple[int, ...],
                                        Tuple[int, ...]]] = []

    # -- recording hooks -----------------------------------------------------

    def note_broadcast(self, mid: MessageId, payload: Any,
                       time: float) -> None:
        """Record an ``A-broadcast`` submission.

        First submission wins: a duplicate ``mid`` (a recovered sender
        re-submitting the same message identity) keeps the original
        timestamp and payload, so latency is always measured from the
        *first* time the message entered the system and duplicate
        elimination downstream stays consistent with the metrics.
        """
        if mid not in self.broadcast_times:
            self.broadcast_times[mid] = time
            self.broadcast_payloads[mid] = payload

    def note_delivery(self, node_id: int, mid: MessageId, time: float,
                      incarnation: int = 0) -> None:
        """Record one delivery upcall at one node.

        A delivery whose broadcast was never recorded is kept in the
        delivery log (ordering verification must still see it) but
        contributes **no** latency sample — there is no send time to
        subtract.  Such events are counted in ``latency_skipped`` so a
        run can assert the omission instead of discovering a silently
        thinner latency distribution.
        """
        self.deliveries.append((node_id, incarnation, mid, time))
        if mid not in self.first_delivery:
            self.first_delivery[mid] = time
            sent = self.broadcast_times.get(mid)
            if sent is not None:
                self.delivery_latencies.append(time - sent)
            else:
                self.latency_skipped += 1

    def note_decision(self, k: int, value: Any) -> None:
        """Archive a consensus decision (survives log garbage collection)."""
        existing = self.decisions.get(k)
        if existing is None:
            self.decisions[k] = value
        elif existing != value:
            self.decision_conflicts.append((k, existing, value))

    def note_view_install(self, node_id: int, epoch: int,
                          members: Tuple[int, ...], time: float,
                          origin: str) -> None:
        """Record one view install at one node (delivery or adoption)."""
        members = tuple(members)
        self.view_installs.append((node_id, epoch, members, time, origin))
        existing = self.views_by_epoch.get(epoch)
        if existing is None:
            self.views_by_epoch[epoch] = members
        elif existing != members:
            self.view_conflicts.append((node_id, epoch, existing, members))

    # -- derived views ---------------------------------------------------------

    def delivered_ids(self, node_id: int,
                      incarnation: Optional[int] = None) -> List[MessageId]:
        """Delivery order observed at one node.

        A recovering node may re-deliver its history (the replay
        procedure); restrict to one ``incarnation`` to get the sequence a
        single process lifetime observed.
        """
        return [mid for node, inc, mid, _ in self.deliveries
                if node == node_id
                and (incarnation is None or inc == incarnation)]

    def incarnations_of(self, node_id: int) -> List[int]:
        """All incarnation indices that delivered anything at a node."""
        seen: List[int] = []
        for node, inc, _, _ in self.deliveries:
            if node == node_id and inc not in seen:
                seen.append(inc)
        return seen

    def broadcast_ids(self) -> Set[MessageId]:
        """Every message id ever submitted to ``A-broadcast``."""
        return set(self.broadcast_times)


class RunMetrics:
    """The final report of one scenario run."""

    def __init__(self, duration: float,
                 collector: MetricsCollector,
                 storage_by_node: Dict[int, Dict[str, int]],
                 storage_prefix_ops: Dict[int, Dict[str, int]],
                 storage_prefix_bytes: Dict[int, Dict[str, int]],
                 storage_residency: Dict[int, int],
                 network: Dict[str, int],
                 node_stats: Dict[int, Dict[str, Any]],
                 stubborn: Optional[Dict[str, int]] = None,
                 faults_injected: Optional[Dict[str, int]] = None,
                 flow: Optional[Dict[int, Dict[str, Any]]] = None):
        self.duration = duration
        self.collector = collector
        self.storage_by_node = storage_by_node
        self.storage_prefix_ops = storage_prefix_ops
        self.storage_prefix_bytes = storage_prefix_bytes
        self.storage_residency = storage_residency
        self.network = network
        self.node_stats = node_stats
        # Retransmission counters of the stubborn channel, when one was
        # stacked on the medium (None otherwise).
        self.stubborn = stubborn
        # Fault-injection counters from the chaos engine (None outside
        # chaos runs).
        self.faults_injected = faults_injected
        # Per-node admission-control snapshots (None without a flow
        # config — the default).
        self.flow = flow

    # -- headline numbers ---------------------------------------------------------

    @property
    def messages_broadcast(self) -> int:
        return len(self.collector.broadcast_times)

    @property
    def messages_delivered(self) -> int:
        return len(self.collector.first_delivery)

    @property
    def throughput(self) -> float:
        """Messages ordered per unit of virtual time."""
        if self.duration <= 0:
            return 0.0
        return self.messages_delivered / self.duration

    def latency_summary(self) -> Dict[str, float]:
        """Broadcast-to-first-delivery latency distribution."""
        return summarize(self.collector.delivery_latencies)

    def total_log_ops(self) -> int:
        """Durable writes across all nodes."""
        return sum(s["log_ops"] for s in self.storage_by_node.values())

    def total_bytes_logged(self) -> int:
        """Durable bytes written across all nodes."""
        return sum(s["bytes_logged"] for s in self.storage_by_node.values())

    def total_retransmissions(self) -> int:
        """Stubborn-channel retransmissions (0 without the layer)."""
        if not self.stubborn:
            return 0
        return self.stubborn.get("retransmissions", 0)

    def total_acks(self) -> int:
        """Stubborn-channel acknowledgements received (0 without the layer)."""
        if not self.stubborn:
            return 0
        return self.stubborn.get("acks_received", 0)

    def total_backlog_overflows(self) -> int:
        """Stubborn-backlog drops from the bounded queue (0 without it)."""
        if not self.stubborn:
            return 0
        return self.stubborn.get("backlog_overflows", 0)

    def total_flow_accepted(self) -> int:
        """Submissions admitted by flow control (0 without a flow config)."""
        if not self.flow:
            return 0
        return sum(s["accepted"] for s in self.flow.values())

    def total_flow_rejected(self) -> int:
        """Submissions rejected by flow control (0 without a flow config)."""
        if not self.flow:
            return 0
        return sum(s["rejected"] for s in self.flow.values())

    def total_quarantined(self) -> int:
        """Corrupt stored records detected and quarantined across nodes."""
        return sum(s.get("quarantined", 0)
                   for s in self.storage_by_node.values())

    def total_faults_injected(self) -> int:
        """Faults the chaos engine injected into this run (0 outside chaos)."""
        if not self.faults_injected:
            return 0
        return sum(self.faults_injected.values())

    def log_ops_by_prefix(self) -> Dict[str, int]:
        """Durable writes per storage-key prefix, summed over nodes."""
        totals: Dict[str, int] = {}
        for per_node in self.storage_prefix_ops.values():
            for prefix, count in per_node.items():
                totals[prefix] = totals.get(prefix, 0) + count
        return totals

    def bytes_by_prefix(self) -> Dict[str, int]:
        """Durable bytes per storage-key prefix, summed over nodes."""
        totals: Dict[str, int] = {}
        for per_node in self.storage_prefix_bytes.values():
            for prefix, count in per_node.items():
                totals[prefix] = totals.get(prefix, 0) + count
        return totals

    def log_ops_per_delivery(self, prefixes: Optional[Set[str]] = None) -> float:
        """Durable writes per ordered message (optionally per prefix set)."""
        delivered = self.messages_delivered
        if delivered == 0:
            return 0.0
        if prefixes is None:
            return self.total_log_ops() / delivered
        by_prefix = self.log_ops_by_prefix()
        return sum(by_prefix.get(p, 0) for p in prefixes) / delivered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RunMetrics(delivered={self.messages_delivered}/"
                f"{self.messages_broadcast}, "
                f"throughput={self.throughput:.1f}/s, "
                f"log_ops={self.total_log_ops()})")
