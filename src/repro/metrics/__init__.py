"""Metric collection and statistics for scenario runs."""

from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.stats import mean, percentile, stdev, summarize

__all__ = [
    "MetricsCollector",
    "RunMetrics",
    "mean",
    "percentile",
    "stdev",
    "summarize",
]
