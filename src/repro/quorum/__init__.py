"""Quorum-based replication substrate (Section 6.3 companion)."""

from repro.quorum.register import QuorumRegister

__all__ = ["QuorumRegister"]
