"""Quorum-based replicated register in the crash-recovery model.

Section 6.3 points at the companion report bridging Atomic Broadcast
with quorum-based (weighted-voting) replica management.  This module
provides the quorum side of that bridge: a multi-writer multi-reader
atomic register in the ABD style, adapted to this repository's model:

* replicas **log** their ``(timestamp, value)`` state before
  acknowledging, so a crash-and-recover replica never regresses — the
  quorum intersection argument survives recoveries exactly like the
  consensus acceptor state does;
* all phases run over the **fair-loss** channel with periodic
  retransmission until a majority responds;
* a crash during an operation kills the client task; like
  ``A-broadcast``, an unacknowledged operation may or may not have taken
  effect.

Operations (both are cooperative generators, like every blocking call in
this library):

``write(value)``
    phase 1 — query a majority for the highest timestamp;
    phase 2 — store ``(max+1, self)`` at a majority.
``read()``
    phase 1 — query a majority, pick the highest-timestamped value;
    phase 2 — write it back to a majority (the ABD read-repair that
    makes reads atomic rather than merely regular).

The X3 benchmark compares this register against a register replicated
through Atomic Broadcast: quorums win on per-operation latency and
message count, AB wins on ordering power (it serialises arbitrary
read-modify-write commands, which no static-quorum register can).
"""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

from repro.errors import ProcessDown
from repro.runtime import AnyOf, NodeComponent, Signal
from repro.transport.endpoint import Endpoint
from repro.transport.message import WireMessage

__all__ = ["QuorumRegister"]

# Timestamps order writes: (number, writer id), lexicographic.
Timestamp = Tuple[int, int]

ZERO: Timestamp = (0, -1)


class QueryRequest(WireMessage):
    """Phase 1 of both operations: what is your (ts, value)?"""

    type = "qr.query"
    fields = ("op",)

    def __init__(self, op: tuple):
        self.op = op


class QueryReply(WireMessage):
    type = "qr.query-ack"
    fields = ("op", "ts", "value")

    def __init__(self, op: tuple, ts: Timestamp, value: Any):
        self.op = op
        self.ts = ts
        self.value = value


class StoreRequest(WireMessage):
    """Phase 2: adopt (ts, value) if newer than what you hold."""

    type = "qr.store"
    fields = ("op", "ts", "value")

    def __init__(self, op: tuple, ts: Timestamp, value: Any):
        self.op = op
        self.ts = ts
        self.value = value


class StoreReply(WireMessage):
    type = "qr.store-ack"
    fields = ("op",)

    def __init__(self, op: tuple):
        self.op = op


class _Op:
    """Volatile per-operation quorum tally."""

    __slots__ = ("replies", "acks", "signal")

    def __init__(self, signal: Signal):
        self.replies: Dict[int, Tuple[Timestamp, Any]] = {}
        self.acks: Set[int] = set()
        self.signal = signal


class QuorumRegister(NodeComponent):
    """One node's replica + client of the register."""

    name = "quorum-register"

    STATE_KEY = ("qr", "state")
    INCARNATION_KEY = ("qr", "incarnation")

    def __init__(self, endpoint: Endpoint,
                 retransmit_interval: float = 0.3):
        super().__init__()
        self.endpoint = endpoint
        self.retransmit_interval = retransmit_interval
        self._ts: Timestamp = ZERO
        self._value: Any = None
        self._ops: Dict[tuple, _Op] = {}
        self._incarnation = 0
        self._seq = 0
        # Statistics.
        self.reads_done = 0
        self.writes_done = 0

    # -- lifecycle -----------------------------------------------------------

    def on_start(self) -> None:
        node = self.node
        assert node is not None
        stored = node.storage.retrieve(self.STATE_KEY, None)
        if stored is None:
            self._ts, self._value = ZERO, None
        else:
            num, writer, value = stored
            self._ts, self._value = (int(num), int(writer)), value
        self._incarnation = int(node.storage.retrieve(
            self.INCARNATION_KEY, 0)) + 1
        node.storage.log(self.INCARNATION_KEY, self._incarnation)  # repro: noqa(REC003) -- deliberate monotonic bump: request tags must differ across incarnations; gaps are safe, reuse is not
        self._seq = 0
        self._ops = {}
        self.endpoint.register(QueryRequest.type, self._on_query)
        self.endpoint.register(QueryReply.type, self._on_query_reply)
        self.endpoint.register(StoreRequest.type, self._on_store)
        self.endpoint.register(StoreReply.type, self._on_store_reply)

    def on_crash(self) -> None:
        self._ops = {}

    # -- replica role ------------------------------------------------------------

    def _on_query(self, msg: QueryRequest, sender: int) -> None:
        self.endpoint.send(sender,
                           QueryReply(msg.op, self._ts, self._value))

    def _on_store(self, msg: StoreRequest, sender: int) -> None:
        assert self.node is not None
        ts = (int(msg.ts[0]), int(msg.ts[1]))
        if ts > self._ts:
            # Log before acknowledging: a crashed-and-recovered replica
            # must never regress below what it acked.
            self.node.storage.log(self.STATE_KEY,
                                  [ts[0], ts[1], msg.value])
            self._ts, self._value = ts, msg.value
        self.endpoint.send(sender, StoreReply(msg.op))

    # -- client tallies --------------------------------------------------------------

    def _on_query_reply(self, msg: QueryReply, sender: int) -> None:
        op = self._ops.get(tuple(msg.op))
        if op is not None:
            ts = (int(msg.ts[0]), int(msg.ts[1]))
            op.replies[sender] = (ts, msg.value)
            op.signal.notify()

    def _on_store_reply(self, msg: StoreReply, sender: int) -> None:
        op = self._ops.get(tuple(msg.op))
        if op is not None:
            op.acks.add(sender)
            op.signal.notify()

    # -- client operations ------------------------------------------------------------

    def _quorum(self) -> int:
        return len(self.endpoint.peers()) // 2 + 1

    def _new_op(self) -> Tuple[tuple, _Op]:
        assert self.node is not None
        if not self.node.up:
            raise ProcessDown("register operation on a down node")
        self._seq += 1
        op_id = (self.node.node_id, self._incarnation, self._seq)
        op = _Op(self.node.sim.signal(f"qr-op@{self.node.node_id}"))
        self._ops[op_id] = op
        return op_id, op

    def _quorum_round(self, op_id: tuple, op: _Op, message: WireMessage,
                      done):
        """Broadcast with retransmission until ``done()`` holds."""
        assert self.node is not None
        sim = self.node.sim
        while not done():
            self.endpoint.multisend(message)
            deadline = sim.now + self.retransmit_interval
            while not done() and sim.now < deadline:
                timer = sim.event("qr-retry")
                handle = sim.schedule(self.retransmit_interval,
                                      timer.fire)
                yield AnyOf([op.signal.wait(), timer])
                handle.cancel()

    def write(self, value: Any):
        """Atomic write; returns the timestamp it installed."""
        op_id, op = self._new_op()
        quorum = self._quorum()
        # Phase 1: discover the highest installed timestamp.
        yield from self._quorum_round(
            op_id, op, QueryRequest(op_id),
            lambda: len(op.replies) >= quorum)
        highest = max(ts for ts, _ in op.replies.values())
        assert self.node is not None
        new_ts: Timestamp = (highest[0] + 1, self.node.node_id)
        # Phase 2: install at a majority.
        op.acks.clear()
        yield from self._quorum_round(
            op_id, op, StoreRequest(op_id, new_ts, value),
            lambda: len(op.acks) >= quorum)
        del self._ops[op_id]
        self.writes_done += 1
        return new_ts

    def read(self):
        """Atomic read; returns ``(value, timestamp)``."""
        op_id, op = self._new_op()
        quorum = self._quorum()
        yield from self._quorum_round(
            op_id, op, QueryRequest(op_id),
            lambda: len(op.replies) >= quorum)
        ts, value = max(op.replies.values(), key=lambda pair: pair[0])
        # Read-repair: write the value back so later reads cannot see an
        # older one (atomicity, not just regularity).
        op.acks.clear()
        yield from self._quorum_round(
            op_id, op, StoreRequest(op_id, ts, value),
            lambda: len(op.acks) >= quorum)
        del self._ops[op_id]
        self.reads_done += 1
        return value, ts

    # -- local inspection ---------------------------------------------------------------

    @property
    def local_state(self) -> Tuple[Timestamp, Any]:
        """This replica's current (ts, value) — for tests/metrics."""
        return self._ts, self._value
