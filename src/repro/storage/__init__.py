"""Stable storage: the paper's ``log`` / ``retrieve`` primitives.

See :mod:`repro.storage.stable` for the abstract interface and operation
accounting, :mod:`repro.storage.memory` for the simulation backend,
:mod:`repro.storage.file` for the durable self-healing file backend and
:mod:`repro.storage.faulty` for the seeded disk-fault injector.
"""

from repro.storage.faulty import FaultyStorage, InjectedCrashFault
from repro.storage.file import FileStorage
from repro.storage.memory import MemoryStorage
from repro.storage.stable import StableStorage, StorageMetrics

__all__ = ["FaultyStorage", "FileStorage", "InjectedCrashFault",
           "MemoryStorage", "StableStorage", "StorageMetrics"]
