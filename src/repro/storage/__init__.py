"""Stable storage: the paper's ``log`` / ``retrieve`` primitives.

See :mod:`repro.storage.stable` for the abstract interface and operation
accounting, :mod:`repro.storage.memory` for the simulation backend and
:mod:`repro.storage.file` for the durable file backend.
"""

from repro.storage.file import FileStorage
from repro.storage.memory import MemoryStorage
from repro.storage.stable import StableStorage, StorageMetrics

__all__ = ["FileStorage", "MemoryStorage", "StableStorage", "StorageMetrics"]
