"""Seeded disk-fault injection over any stable-storage backend.

:class:`FaultyStorage` wraps a real :class:`~repro.storage.stable.StableStorage`
and injects the failure modes a crash-recovery protocol must survive:

* **write crash** — the ``log`` call raises :class:`InjectedCrashFault`
  *before* the record lands (an fsync failure / power cut before the
  rename): the old value stays intact and the caller's process is
  expected to crash, exactly the paper's model of a ``log`` that did not
  return;
* **torn write** — the record lands with a truncated payload (a power
  cut mid-flush on a backend without atomic rename), *then* the call
  raises: the self-healing reader must detect and quarantine it;
* **bit flip** — silent corruption of an already-stored record (media
  rot), applied on demand by the chaos engine;
* **slow write** — a gray failure: the write *succeeds* but takes a
  seeded latency draw (a limping disk); the stall duration is reported
  through :attr:`on_stall` so the runtime can model the process being
  slow-but-alive for that long.

Faults are drawn from a seeded RNG (``fail_rate``/``torn_rate`` per
write) or armed one-shot (:meth:`arm_crash_write`), so chaos runs are
reproducible from their seed alone.  Torn writes and bit flips need
byte-level access and are therefore only injected when the wrapped
backend is a :class:`~repro.storage.file.FileStorage`; over other
backends those modes degrade to a clean write crash.

The wrapper shares the inner backend's metrics object, so log-operation
accounting and quarantine counts appear exactly once, and keeps its own
:attr:`injected` tally for chaos reports.
"""

from __future__ import annotations

import os
import random
from typing import Any, Dict, Iterable, Optional

from repro.errors import ReproError
from repro.storage.file import FileStorage, frame_record
from repro.storage.stable import StableStorage

__all__ = ["FaultyStorage", "InjectedCrashFault"]


class InjectedCrashFault(ReproError):
    """A deliberately injected storage failure.

    Raised synchronously out of a ``log`` call; the harness driving the
    fault treats it as the victim process crashing mid-write (the
    exception unwinds only that node's callback — the runtimes execute
    one node's code per callback).
    """

    def __init__(self, node_hint: Optional[int], mode: str, path: str):
        super().__init__(f"injected {mode} fault on {path!r}")
        self.node_hint = node_hint
        self.mode = mode
        self.path = path


class FaultyStorage(StableStorage):
    """A stable-storage decorator injecting seeded disk faults.

    Parameters
    ----------
    inner:
        The real backend (any :class:`StableStorage`).
    rng:
        Seeded stream the probabilistic faults are drawn from.
    fail_rate:
        Per-write probability of a clean write crash.
    torn_rate:
        Per-write probability of a torn write (file backends only).
    node_hint:
        Owning node id, carried in raised faults so a chaos controller
        can crash the right process.
    """

    def __init__(self, inner: StableStorage,
                 rng: Optional[random.Random] = None,
                 fail_rate: float = 0.0,
                 torn_rate: float = 0.0,
                 node_hint: Optional[int] = None):
        super().__init__()
        self.inner = inner
        self.metrics = inner.metrics  # single accounting stream
        self.rng = rng or random.Random(0)  # repro: noqa(DET004) -- fixed default seed; tests inject their own
        self.fail_rate = fail_rate
        self.torn_rate = torn_rate
        self.node_hint = node_hint
        self._armed: Optional[str] = None
        self.injected: Dict[str, int] = {
            "write_crash": 0, "torn_write": 0, "bit_flip": 0,
            "slow_write": 0}
        # Gray failure: per-write latency bounds (None = healthy disk)
        # and the callback receiving each drawn stall (wired by the
        # chaos controller to Node.stall).
        self.latency_range: Optional[tuple] = None
        self.on_stall: Optional[Any] = None
        self.total_stall = 0.0

    # -- fault controls ------------------------------------------------------

    def arm_crash_write(self, mode: str = "fail") -> None:
        """Make the *next* write fail once: ``"fail"`` or ``"torn"``."""
        if mode not in ("fail", "torn"):
            raise ValueError(f"unknown crash-write mode {mode!r}")
        self._armed = mode

    def disarm(self) -> None:
        """Cancel probabilistic and one-shot faults (chaos finish phase)."""
        self._armed = None
        self.fail_rate = 0.0
        self.torn_rate = 0.0
        self.latency_range = None

    def set_latency(self, low: float, high: float) -> None:
        """Make the disk limp: every write draws a stall in [low, high]."""
        if low < 0 or high < low:
            raise ValueError(f"bad latency bounds [{low}, {high}]")
        self.latency_range = (low, high)

    def clear_latency(self) -> None:
        """Restore a healthy disk."""
        self.latency_range = None

    def flip_bit(self, key: Any) -> bool:
        """Flip one bit of the stored record for ``key`` (file backends).

        Returns ``True`` if a record was corrupted; silent corruption is
        only expressible when the inner backend stores real bytes.
        """
        inner = self.inner
        if not isinstance(inner, FileStorage):
            return False
        from repro.storage.stable import _normalize
        target = inner._file_for(_normalize(key))
        try:
            with open(target, "rb") as handle:
                raw = bytearray(handle.read())
        except FileNotFoundError:
            return False
        if not raw:
            return False
        # Deterministic position from the seeded stream; skip the header
        # line so the flip lands in the payload the CRC protects.
        start = raw.find(b"\n") + 1
        if start >= len(raw):
            start = 0
        position = self.rng.randrange(start, len(raw))
        raw[position] ^= 1 << self.rng.randrange(8)
        with open(target, "wb") as handle:
            handle.write(raw)
        self.injected["bit_flip"] += 1
        return True

    # -- backend hooks (decorate the inner backend's raw hooks) --------------

    def _write(self, path: str, value: Any) -> None:
        mode = self._draw_fault()
        if mode == "torn":
            if self._write_torn(path, value):
                self.injected["torn_write"] += 1
                raise InjectedCrashFault(self.node_hint, "torn-write", path)
            mode = "fail"  # backend cannot express torn bytes
        if mode == "fail":
            self.injected["write_crash"] += 1
            raise InjectedCrashFault(self.node_hint, "write-crash", path)
        if self.latency_range is not None:
            stall = self.rng.uniform(*self.latency_range)
            self.injected["slow_write"] += 1
            self.total_stall += stall
            if self.on_stall is not None:
                self.on_stall(stall)
        self.inner._write(path, value)

    def _draw_fault(self) -> Optional[str]:
        if self._armed is not None:
            mode, self._armed = self._armed, None
            return mode
        if self.torn_rate and self.rng.random() < self.torn_rate:
            return "torn"
        if self.fail_rate and self.rng.random() < self.fail_rate:
            return "fail"
        return None

    def _write_torn(self, path: str, value: Any) -> bool:
        """Land a truncated record in the *final* file, bypassing the
        atomic-rename discipline (that is the fault being modelled)."""
        inner = self.inner
        if not isinstance(inner, FileStorage):
            return False
        from repro.storage import codec
        raw = frame_record(codec.encode(value))
        # Keep the header and some payload, lose the tail.
        cut = raw.find(b"\n") + 1
        keep = cut + self.rng.randrange(0, max(1, len(raw) - cut))
        with open(inner._file_for(path), "wb") as handle:
            handle.write(raw[:keep])
            handle.flush()
            os.fsync(handle.fileno())
        return True

    def _read(self, path: str, default: Any) -> Any:
        return self.inner._read(path, default)

    def _delete_raw(self, path: str) -> None:
        self.inner._delete_raw(path)

    def _keys(self) -> Iterable[str]:
        return self.inner._keys()
