"""Stable storage: the ``log`` / ``retrieve`` primitives of Section 2.1.

The paper's efficiency argument is counted in *log operations*: the basic
protocol performs exactly one log per consensus round (the proposal, which
the Consensus black box would log anyway), while the alternative protocol
trades additional logs for faster recovery and earlier ``A-broadcast``
returns.  :class:`StorageMetrics` therefore counts every durable write and
its estimated byte cost; experiments E2/E4/E7 read these counters.

Two concrete backends exist:

* :class:`~repro.storage.memory.MemoryStorage` — crash-surviving in-memory
  store for simulation (the simulator owns it; node crashes never touch it).
* :class:`~repro.storage.file.FileStorage` — JSON-file-backed store for
  real deployments and durability tests.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (Any, Dict, Iterable, Iterator, List, Optional, Tuple,
                    Union)

from repro.errors import StorageError
from repro.sizing import estimate_size

__all__ = ["StableStorage", "StorageMetrics", "Key"]

# Keys are flat strings or structured tuples like ("paxos", 3, "accepted").
Key = Union[str, Tuple[Any, ...]]


def _normalize(key: Key) -> str:
    """Flatten a structured key to a canonical string path."""
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    raise StorageError(f"unsupported key type: {type(key).__name__}")


class StorageMetrics:
    """Counters for durable writes; the unit of the paper's cost model.

    Writes are attributed to the first segment of the storage key
    (``consensus``, ``paxos``, ``ab``, ``fd`` …) so experiment E2 can
    check the paper's claim that Atomic Broadcast performs **no** log
    operations beyond those of the Consensus black box.
    """

    __slots__ = ("log_ops", "bytes_logged", "retrievals", "deletes",
                 "quarantined", "ops_by_prefix", "bytes_by_prefix")

    def __init__(self) -> None:
        self.log_ops = 0
        self.bytes_logged = 0
        self.retrievals = 0
        self.deletes = 0
        # Records found torn or corrupt and set aside by a self-healing
        # backend (FileStorage's CRC scan) instead of being served.
        self.quarantined = 0
        self.ops_by_prefix: Dict[str, int] = {}
        self.bytes_by_prefix: Dict[str, int] = {}

    def record_write(self, path: str, size: int) -> None:
        """Account one durable write of ``size`` bytes under ``path``."""
        self.log_ops += 1
        self.bytes_logged += size
        prefix = path.split("/", 1)[0]
        self.ops_by_prefix[prefix] = self.ops_by_prefix.get(prefix, 0) + 1
        self.bytes_by_prefix[prefix] = \
            self.bytes_by_prefix.get(prefix, 0) + size

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy, for metric collection."""
        return {
            "log_ops": self.log_ops,
            "bytes_logged": self.bytes_logged,
            "retrievals": self.retrievals,
            "deletes": self.deletes,
            "quarantined": self.quarantined,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StorageMetrics(ops={self.log_ops}, "
                f"bytes={self.bytes_logged})")


class StableStorage:
    """Abstract stable storage with operation accounting.

    Subclasses implement ``_read``/``_write``/``_delete_raw``/``_keys``;
    this base class normalises keys and maintains :class:`StorageMetrics`.
    """

    def __init__(self) -> None:
        self.metrics = StorageMetrics()

    # -- primitive interface (paper: log / retrieve) -------------------------

    def log(self, key: Key, value: Any) -> None:
        """Durably record ``value`` under ``key`` (one log operation)."""
        path = _normalize(key)
        self.metrics.record_write(path, estimate_size(value))
        self._write(path, value)

    def retrieve(self, key: Key, default: Any = None) -> Any:
        """Read back the value logged under ``key`` (or ``default``)."""
        self.metrics.retrievals += 1
        return self._read(_normalize(key), default)

    def contains(self, key: Key) -> bool:
        """True if ``key`` has a logged value (not counted as a retrieval)."""
        sentinel = object()
        return self._read(_normalize(key), sentinel) is not sentinel

    # -- incremental logs (Section 5.5) ---------------------------------------

    def append(self, key: Key, item: Any) -> None:
        """Append ``item`` to the list logged under ``key``.

        This is the incremental-logging primitive: only the *new* part is
        charged, so appending is cheaper than re-logging the whole value.
        """
        path = _normalize(key)
        self.metrics.record_write(path, estimate_size(item))
        existing = self._read(path, None)
        if existing is None:
            existing = []
        elif not isinstance(existing, list):
            raise StorageError(f"append to non-list key {path!r}")
        self._write(path, existing + [item])

    def retrieve_list(self, key: Key) -> List[Any]:
        """Read back an appended-to list (empty if absent)."""
        value = self.retrieve(key, default=None)
        if value is None:
            return []
        if not isinstance(value, list):
            raise StorageError(f"key {_normalize(key)!r} is not a list")
        return list(value)

    # -- write barriers ----------------------------------------------------------

    @contextmanager
    def write_barrier(self):
        """Group several ``log`` calls into one logical durability barrier.

        Backends may coalesce per-write flush work (e.g. directory
        fsyncs) and perform it once when the barrier exits.  The
        contract is deliberately weak: every record keeps its individual
        atomicity (old value or new value, never a blend), but the
        *durability* of writes inside the barrier is only guaranteed
        after the barrier exits, and a crash mid-barrier may persist any
        subset of them.  Only writes that are individually safe to lose
        — the paper's model for every ``log`` call — may be grouped.

        The default implementation is a no-op, so protocol code can use
        barriers unconditionally; metric accounting is unaffected either
        way (a coalesced fsync is still one log op per write).
        :class:`~repro.storage.file.FileStorage` uses the hooks two
        ways: by default it defers only the directory fsync, and with
        ``group_commit=True`` it batches the barrier's records into one
        journal write with a single fsync as the durability point.
        """
        self._barrier_begin()
        try:
            yield self
        finally:
            self._barrier_end()

    def _barrier_begin(self) -> None:
        """Backend hook: a write barrier opened (may nest)."""

    def _barrier_end(self) -> None:
        """Backend hook: a write barrier closed (may nest)."""

    # -- maintenance -------------------------------------------------------------

    def delete(self, key: Key) -> None:
        """Discard the value under ``key`` (log truncation, Section 5.1)."""
        self.metrics.deletes += 1
        self._delete_raw(_normalize(key))

    def delete_prefix(self, prefix: Key) -> int:
        """Discard every key under ``prefix``; returns the number deleted."""
        path = _normalize(prefix)
        doomed = [k for k in self._keys() if k == path or
                  k.startswith(path + "/")]
        for key in doomed:
            self.metrics.deletes += 1
            self._delete_raw(key)
        return len(doomed)

    def keys(self, prefix: Optional[Key] = None) -> Iterator[str]:
        """Iterate stored keys, optionally restricted to a prefix."""
        if prefix is None:
            yield from sorted(self._keys())
            return
        path = _normalize(prefix)
        for key in sorted(self._keys()):
            if key == path or key.startswith(path + "/"):
                yield key

    def total_bytes_stored(self) -> int:
        """Current footprint of the store (size of all live values).

        This is the quantity bounded by application-level checkpoints
        (Section 5.2): counters measure write *traffic*, this measures
        *residency*.
        """
        return sum(estimate_size(self._read(key, None))
                   for key in self._keys())

    # -- backend hooks --------------------------------------------------------------

    def _write(self, path: str, value: Any) -> None:
        raise NotImplementedError

    def _read(self, path: str, default: Any) -> Any:
        raise NotImplementedError

    def _delete_raw(self, path: str) -> None:
        raise NotImplementedError

    def _keys(self) -> Iterable[str]:
        raise NotImplementedError
