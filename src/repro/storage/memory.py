"""In-memory crash-surviving stable storage (simulation backend).

The simulator owns the storage object; a node crash discards the node's
volatile state but never touches this store, which models a disk that
survives process crashes (Section 2.1).

Values are defensively deep-copied on write and read so protocol code
cannot accidentally mutate "durable" state in place — the closest
in-memory analogue of serialisation through a real disk.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable

from repro.storage.stable import StableStorage

__all__ = ["MemoryStorage"]


class MemoryStorage(StableStorage):
    """Dictionary-backed stable storage with copy-on-write/read semantics."""

    def __init__(self) -> None:
        super().__init__()
        self._data: Dict[str, Any] = {}

    def _write(self, path: str, value: Any) -> None:
        self._data[path] = copy.deepcopy(value)

    def _read(self, path: str, default: Any) -> Any:
        if path not in self._data:
            return default
        return copy.deepcopy(self._data[path])

    def _delete_raw(self, path: str) -> None:
        self._data.pop(path, None)

    def _keys(self) -> Iterable[str]:
        return self._data.keys()

    def __len__(self) -> int:
        return len(self._data)
