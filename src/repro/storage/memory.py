"""In-memory crash-surviving stable storage (simulation backend).

The simulator owns the storage object; a node crash discards the node's
volatile state but never touches this store, which models a disk that
survives process crashes (Section 2.1).

Values are defensively isolated on write and read so protocol code
cannot accidentally mutate "durable" state in place — the closest
in-memory analogue of serialisation through a real disk.  Isolation is
provided by :mod:`repro.storage.snapshot`: immutable values (the vast
majority of what the protocols log) are shared without copying, mutable
containers are structurally rebuilt — far cheaper than the
``copy.deepcopy``-per-operation this backend used to perform, with the
same observable semantics.  The legacy behaviour survives as
``MemoryStorage(isolation="deepcopy")`` so the perf harness can measure
the difference (docs/PERFORMANCE.md).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, Tuple

from repro.errors import StorageError
from repro.storage.snapshot import snapshot
from repro.storage.stable import StableStorage

__all__ = ["MemoryStorage"]

_ISOLATION_MODES = ("snapshot", "deepcopy")


class MemoryStorage(StableStorage):
    """Dictionary-backed stable storage with copy-on-write/read semantics."""

    def __init__(self, isolation: str = "snapshot") -> None:
        super().__init__()
        if isolation not in _ISOLATION_MODES:
            raise StorageError(
                f"unknown isolation mode {isolation!r}; "
                f"pick one of {_ISOLATION_MODES}")
        self.isolation = isolation
        self._deepcopy = isolation == "deepcopy"
        # path -> (value, immutable).  Immutable entries are shared with
        # the caller on both sides; mutable ones are re-snapshotted on
        # every read.
        self._data: Dict[str, Tuple[Any, bool]] = {}

    def _write(self, path: str, value: Any) -> None:
        if self._deepcopy:
            self._data[path] = (copy.deepcopy(value), False)
        else:
            self._data[path] = snapshot(value)

    def _read(self, path: str, default: Any) -> Any:
        entry = self._data.get(path)
        if entry is None:
            return default
        value, immutable = entry
        if immutable:
            return value
        if self._deepcopy:
            return copy.deepcopy(value)
        return snapshot(value)[0]

    def _delete_raw(self, path: str) -> None:
        self._data.pop(path, None)

    def _keys(self) -> Iterable[str]:
        return self._data.keys()

    def __len__(self) -> int:
        return len(self._data)
