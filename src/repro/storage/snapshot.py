"""Immutability-aware structural snapshots for in-memory stable storage.

:class:`~repro.storage.memory.MemoryStorage` must isolate stored values
from the caller on both write and read, so protocol code cannot mutate
"durable" state in place.  ``copy.deepcopy`` gives that isolation but
pays the full generic-copy protocol (memo dict, ``__reduce_ex__``) for
every node of every value on *every* storage operation — the single
largest cost in the simulation hot path.

:func:`snapshot` exploits what deepcopy cannot know: most of what the
protocols log is immutable (ints, strings, tuples of primitives,
:class:`~repro.core.ids.MessageId`, :class:`~repro.core.messages.AppMessage`
with its immutable-payload contract).  Immutable values need no copy at
all — they are returned as-is and *flagged* immutable, so the storage
layer can also skip the copy on every subsequent read.  Mutable
containers (lists, sets, dicts) are rebuilt with C-speed constructors
around recursively-snapshotted items.

Protocol value classes join the fast path in one of two ways:

* :func:`register_immutable` — the class is a frozen value object
  (hashable, never mutated after construction); instances pass through
  untouched.
* :func:`register_handler` — the class needs structural treatment (e.g.
  ``AppMessage``: the header is frozen by contract but the payload must
  be checked).

Anything unknown falls back to ``copy.deepcopy`` — correctness never
depends on registration, only speed.  The fallback count is exposed via
:func:`fallback_count` so tests (and the perf harness) can assert the
hot path stays hot.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Tuple

__all__ = ["snapshot", "register_immutable", "register_handler",
           "fallback_count"]

# Exact classes whose instances are immutable all the way down.
_ATOMIC = {type(None), bool, int, float, complex, str, bytes}

# handler(value, snapshot) -> (copy, immutable) for registered classes.
_HANDLERS: Dict[type, Callable[[Any, Callable[[Any], Tuple[Any, bool]]],
                               Tuple[Any, bool]]] = {}

_stats = {"deepcopy_fallbacks": 0}


def register_immutable(cls: type) -> None:
    """Declare ``cls`` a frozen value object: snapshots pass it through.

    The contract is the caller's to honour: instances must never be
    mutated after construction (no slot/attribute reassignment).
    """
    _ATOMIC.add(cls)


def register_handler(cls: type,
                     handler: Callable[[Any, Callable], Tuple[Any, bool]]
                     ) -> None:
    """Register a structural snapshot function for ``cls``.

    ``handler(value, snapshot)`` must return ``(copy, immutable)`` with
    the same isolation guarantee :func:`snapshot` provides.
    """
    _HANDLERS[cls] = handler


def fallback_count() -> int:
    """How many values have fallen back to ``copy.deepcopy`` so far."""
    return _stats["deepcopy_fallbacks"]


def snapshot(value: Any) -> Tuple[Any, bool]:
    """Return ``(isolated_copy, immutable)`` for ``value``.

    When ``immutable`` is ``True`` the returned object *is* ``value``:
    it cannot be mutated, so sharing it is safe and later reads need no
    copy either.  Otherwise the returned object shares no mutable
    structure with ``value``.
    """
    cls = value.__class__
    if cls in _ATOMIC:
        return value, True
    if cls is tuple:
        items = [snapshot(item) for item in value]
        if all(immutable for _, immutable in items):
            return value, True
        return tuple(item for item, _ in items), False
    if cls is list:
        return [snapshot(item)[0] for item in value], False
    if cls is dict:
        return {snapshot(key)[0]: snapshot(item)[0]
                for key, item in value.items()}, False
    if cls is set:
        return {snapshot(item)[0] for item in value}, False
    if cls is frozenset:
        items = [snapshot(item) for item in value]
        if all(immutable for _, immutable in items):
            return value, True
        return frozenset(item for item, _ in items), False
    handler = _HANDLERS.get(cls)
    if handler is not None:
        return handler(value, snapshot)
    if isinstance(value, tuple):
        # Tuple subclasses (NamedTuples like MessageId) of immutable
        # fields are themselves immutable; anything fancier goes the
        # slow, always-correct route below.
        if all(snapshot(item)[1] for item in value):
            return value, True
    _stats["deepcopy_fallbacks"] += 1
    return copy.deepcopy(value), False
