"""Tagged-JSON codec for durable values.

The file-backed stable storage must serialise the values protocols log:
primitives, tuples, sets/frozensets, dicts with non-string keys, and
protocol payload objects.  Plain JSON cannot round-trip those, so this
codec wraps non-JSON-native values in ``{"__t": tag, "v": ...}`` envelopes.

Payload classes opt in by calling :func:`register` with a ``to_plain`` /
``from_plain`` pair; the codec stays ignorant of protocol types.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Tuple

from repro.errors import StorageError

__all__ = ["encode", "decode", "register"]

_TO_PLAIN: Dict[type, Tuple[str, Callable[[Any], Any]]] = {}
_FROM_PLAIN: Dict[str, Callable[[Any], Any]] = {}


def register(cls: type, tag: str,
             to_plain: Callable[[Any], Any],
             from_plain: Callable[[Any], Any]) -> None:
    """Teach the codec to round-trip instances of ``cls`` under ``tag``."""
    if tag in _FROM_PLAIN:
        raise StorageError(f"codec tag {tag!r} already registered")
    _TO_PLAIN[cls] = (tag, to_plain)
    _FROM_PLAIN[tag] = from_plain


def _to_jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, tuple):
        return {"__t": "tuple", "v": [_to_jsonable(item) for item in value]}
    if isinstance(value, set):
        return {"__t": "set", "v": [_to_jsonable(item) for item in value]}
    if isinstance(value, frozenset):
        return {"__t": "frozenset",
                "v": [_to_jsonable(item) for item in value]}
    if isinstance(value, dict):
        if all(isinstance(key, str) and key != "__t" for key in value):
            return {key: _to_jsonable(item) for key, item in value.items()}
        return {"__t": "dict",
                "v": [[_to_jsonable(key), _to_jsonable(item)]
                      for key, item in value.items()]}
    registered = _TO_PLAIN.get(type(value))
    if registered is not None:
        tag, to_plain = registered
        return {"__t": tag, "v": _to_jsonable(to_plain(value))}
    raise StorageError(
        f"cannot serialise {type(value).__name__}; register() a codec")


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, list):
        return [_from_jsonable(item) for item in value]
    if isinstance(value, dict):
        tag = value.get("__t")
        if tag is None:
            return {key: _from_jsonable(item) for key, item in value.items()}
        payload = value["v"]
        if tag == "tuple":
            return tuple(_from_jsonable(item) for item in payload)
        if tag == "set":
            return {_from_jsonable(item) for item in payload}
        if tag == "frozenset":
            return frozenset(_from_jsonable(item) for item in payload)
        if tag == "dict":
            return {_from_jsonable(key): _from_jsonable(item)
                    for key, item in payload}
        loader = _FROM_PLAIN.get(tag)
        if loader is None:
            raise StorageError(f"unknown codec tag {tag!r}")
        return loader(_from_jsonable(payload))
    return value


def encode(value: Any) -> str:
    """Serialise ``value`` to a JSON string (deterministic key order)."""
    return json.dumps(_to_jsonable(value), sort_keys=True)


def decode(text: str) -> Any:
    """Inverse of :func:`encode`."""
    return _from_jsonable(json.loads(text))
