"""Tagged-JSON codec for durable values.

The file-backed stable storage must serialise the values protocols log:
primitives, tuples, sets/frozensets, dicts with non-string keys, and
protocol payload objects.  Plain JSON cannot round-trip those, so this
codec wraps non-JSON-native values in ``{"__t": tag, "v": ...}`` envelopes.

Non-finite floats get the same treatment: bare ``json.dumps`` would emit
the non-standard ``NaN``/``Infinity`` tokens, which round-trip only by
CPython accident and break any standards-compliant reader, so ``nan``
and ``±inf`` are encoded as explicit ``{"__t": "float", "v": ...}``
envelopes (and the emitter runs with ``allow_nan=False`` so a bare
non-finite can never leak through).  ``-0.0`` needs no envelope: JSON
preserves the sign of a negative zero literal.

Payload classes opt in by calling :func:`register` with a ``to_plain`` /
``from_plain`` pair; the codec stays ignorant of protocol types.  The
binary wire codec (:mod:`repro.runtime.wire`) reuses the same
registrations through :func:`registration_for`/:func:`loader_for`, so a
class registered once round-trips through storage *and* both wire
versions.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import StorageError

__all__ = ["encode", "decode", "register", "registration_for", "loader_for",
           "CodecError"]


class CodecError(StorageError):
    """A value could not be serialised or deserialised."""


_TO_PLAIN: Dict[type, Tuple[str, Callable[[Any], Any]]] = {}
_FROM_PLAIN: Dict[str, Callable[[Any], Any]] = {}

# Wire text for the tagged non-finite floats ("-0.0" stays native JSON).
_NONFINITE = {math.inf: "inf", -math.inf: "-inf"}
_NONFINITE_BACK = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def register(cls: type, tag: str,
             to_plain: Callable[[Any], Any],
             from_plain: Callable[[Any], Any]) -> None:
    """Teach the codec to round-trip instances of ``cls`` under ``tag``."""
    if tag in _FROM_PLAIN:
        raise StorageError(f"codec tag {tag!r} already registered")
    _TO_PLAIN[cls] = (tag, to_plain)
    _FROM_PLAIN[tag] = from_plain


def registration_for(cls: type) -> Optional[Tuple[str, Callable[[Any], Any]]]:
    """The ``(tag, to_plain)`` registration for ``cls``, if any."""
    return _TO_PLAIN.get(cls)


def loader_for(tag: str) -> Optional[Callable[[Any], Any]]:
    """The ``from_plain`` loader registered under ``tag``, if any."""
    return _FROM_PLAIN.get(tag)


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        text = "nan" if math.isnan(value) else _NONFINITE[value]
        return {"__t": "float", "v": text}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, tuple):
        return {"__t": "tuple", "v": [_to_jsonable(item) for item in value]}
    if isinstance(value, set):
        return {"__t": "set", "v": [_to_jsonable(item) for item in value]}
    if isinstance(value, frozenset):
        return {"__t": "frozenset",
                "v": [_to_jsonable(item) for item in value]}
    if isinstance(value, dict):
        if all(isinstance(key, str) and key != "__t" for key in value):
            return {key: _to_jsonable(item) for key, item in value.items()}
        return {"__t": "dict",
                "v": [[_to_jsonable(key), _to_jsonable(item)]
                      for key, item in value.items()]}
    registered = _TO_PLAIN.get(type(value))
    if registered is not None:
        tag, to_plain = registered
        return {"__t": tag, "v": _to_jsonable(to_plain(value))}
    raise CodecError(
        f"cannot serialise {type(value).__name__}; register() a codec")


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, list):
        return [_from_jsonable(item) for item in value]
    if isinstance(value, dict):
        tag = value.get("__t")
        if tag is None:
            return {key: _from_jsonable(item) for key, item in value.items()}
        payload = value["v"]
        if tag == "float":
            try:
                return _NONFINITE_BACK[payload]
            except (KeyError, TypeError):
                raise CodecError(
                    f"bad non-finite float token {payload!r}") from None
        if tag == "tuple":
            return tuple(_from_jsonable(item) for item in payload)
        if tag == "set":
            return {_from_jsonable(item) for item in payload}
        if tag == "frozenset":
            return frozenset(_from_jsonable(item) for item in payload)
        if tag == "dict":
            return {_from_jsonable(key): _from_jsonable(item)
                    for key, item in payload}
        loader = _FROM_PLAIN.get(tag)
        if loader is None:
            raise CodecError(f"unknown codec tag {tag!r}")
        return loader(_from_jsonable(payload))
    return value


def encode(value: Any) -> str:
    """Serialise ``value`` to a JSON string (deterministic key order)."""
    try:
        return json.dumps(_to_jsonable(value), sort_keys=True,
                          allow_nan=False)
    except ValueError as exc:
        if isinstance(exc, CodecError):
            raise
        raise CodecError(f"cannot serialise value: {exc}") from exc


def decode(text: str) -> Any:
    """Inverse of :func:`encode`."""
    return _from_jsonable(json.loads(text))
