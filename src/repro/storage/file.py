"""File-backed stable storage with corruption detection and self-healing.

One record file per key under a node-specific directory.  Every record is
framed for integrity checking::

    <crc32 of payload, 8 hex digits> <payload length in bytes>\\n
    <payload: UTF-8 tagged-JSON from repro.storage.codec>

and written with the classic write-to-temp / fsync / rename / fsync-dir
sequence, so a crash at *any* instant leaves either the old record or the
new one — never a blend — and the rename itself is durable (the directory
entry is flushed too, not just the file contents).

Self-healing: a record that fails its frame check (torn tail after a
mid-``fsync`` crash, bit rot, truncation) is **quarantined** — moved
aside into a ``quarantine/`` subdirectory, counted in
``metrics.quarantined`` — and reads return the caller's default, exactly
as if the record had never been logged.  For the paper's protocols that
is the correct semantics: a value whose log did not complete was never
durably logged, so recovery must proceed as if the ``log`` call crashed
before the write (the protocols are designed for precisely that).  A
recovery scan at open time sweeps stale temp files and proactively
quarantines corrupt records so a recovering node starts from a clean
directory; :attr:`FileStorage.recovery_report` lists what was healed.

**Group commit** (``FileStorage(directory, group_commit=True)``): writes
are made durable through a journal (``wal.log``) instead of one
fsync-heavy rename dance per record.  All records logged inside one
``write_barrier()`` are appended to the journal as a single buffered
write followed by a **single fsync** — that fsync *is* the barrier's
durability point — after which each record is applied to its per-key
file with plain buffered I/O (no fsync: the journal already holds the
data).  A write outside any barrier commits as a batch of one, still
one fsync instead of the classic path's two.  At open time the journal
is replayed — every journalled record is re-applied with the classic
safe sequence and the journal truncated — so a crash between commit and
application loses nothing, and a crash *during* a commit discards only
the torn tail of the journal, i.e. some suffix of an uncommitted batch,
which the barrier contract explicitly allows.  Once the journal passes a
size threshold it is checkpointed: the applied files are fsynced and the
journal truncated, bounding replay time.  The ``group_commits`` /
``group_commit_records`` counters report the batching rate.

This backend exists to demonstrate that the protocols run against a real
disk, and to test durability across *process* restarts; the simulation
experiments use :class:`~repro.storage.memory.MemoryStorage` for speed.
"""

from __future__ import annotations

import os
import tempfile
import zlib
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.storage import codec
from repro.storage.stable import StableStorage

__all__ = ["FileStorage", "frame_record", "unframe_record"]

_SUFFIX = ".json"
_QUARANTINE_DIR = "quarantine"
_JOURNAL_NAME = "wal.log"
_CHECKPOINT_BYTES = 1 << 20

# Sentinels for the group-commit overlay: a pending delete, and the
# absent-from-overlay marker (a logged value may itself be None).
_DELETED = object()
_MISSING = object()


def _escape(path: str) -> str:
    """Map a storage key to a safe flat filename."""
    return path.replace("%", "%25").replace("/", "%2F") + _SUFFIX


def _unescape(filename: str) -> str:
    stem = filename[:-len(_SUFFIX)]
    return stem.replace("%2F", "/").replace("%25", "%")


def frame_record(text: str) -> bytes:
    """Frame one codec payload with its CRC32/length header."""
    payload = text.encode("utf-8")
    header = f"{zlib.crc32(payload) & 0xFFFFFFFF:08x} {len(payload)}\n"
    return header.encode("ascii") + payload


def unframe_record(raw: bytes) -> str:
    """Verify a framed record and return its payload text.

    Raises :class:`ValueError` describing the defect (torn tail, length
    mismatch, checksum mismatch, malformed header) when the record does
    not pass its integrity check.
    """
    newline = raw.find(b"\n")
    if newline < 0:
        raise ValueError("missing frame header")
    header = raw[:newline]
    try:
        crc_hex, length_text = header.decode("ascii").split(" ")
        expect_crc = int(crc_hex, 16)
        expect_len = int(length_text)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ValueError(f"malformed frame header {header!r}") from exc
    payload = raw[newline + 1:]
    if len(payload) != expect_len:
        raise ValueError(
            f"torn record: {len(payload)} payload bytes, "
            f"header promises {expect_len}")
    actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
    if actual_crc != expect_crc:
        raise ValueError(
            f"checksum mismatch: {actual_crc:08x} != {expect_crc:08x}")
    return payload.decode("utf-8")


def _iter_frames(raw: bytes) -> Iterable[str]:
    """Yield payloads of concatenated frames, stopping at the first defect.

    Used for journal replay: a crash mid-commit tears the journal tail,
    so everything up to the tear is durable and everything after it was
    never committed.
    """
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            return
        header = raw[offset:newline]
        try:
            _, length_text = header.decode("ascii").split(" ")
            expect_len = int(length_text)
        except (UnicodeDecodeError, ValueError):
            return
        end = newline + 1 + expect_len
        if end > len(raw):
            return
        try:
            yield unframe_record(raw[offset:end])
        except ValueError:
            return
        offset = end


class FileStorage(StableStorage):
    """Directory-of-record-files stable storage with atomic, checked writes.

    Parameters
    ----------
    directory:
        The node-specific directory records live in (created if absent).
    group_commit:
        Route durability through the ``wal.log`` journal so a
        ``write_barrier()`` costs one fsync total (see module
        docstring).  Off by default: the classic two-fsync-per-write
        path is the historical baseline with per-record durability
        timing, and the write-barrier tests pin its fsync counts.
    """

    def __init__(self, directory: str, group_commit: bool = False):
        super().__init__()
        self.directory = directory
        self.group_commit = group_commit
        os.makedirs(directory, exist_ok=True)
        # (key, defect) pairs healed by the open-time recovery scan.
        self.recovery_report: List[Tuple[str, str]] = []
        # Write-barrier state: inside a barrier the per-write directory
        # fsync (which makes the *rename* durable) is deferred and issued
        # once at barrier exit.  Record files themselves are still
        # fsynced per write, so individual records stay atomic.
        self._barrier_depth = 0
        self._dir_fsync_pending = False
        self.dir_fsyncs = 0
        self.dir_fsyncs_coalesced = 0
        # Group-commit state: the overlay of writes/deletes accumulated
        # inside the current barrier (path -> value or _DELETED, in
        # arrival order), files applied without fsync since the last
        # checkpoint, and the journal's current size.
        self._pending: Dict[str, Any] = {}
        self._unsynced: Set[str] = set()
        self._journal_path = os.path.join(directory, _JOURNAL_NAME)
        self._journal_bytes = 0
        self.group_commits = 0
        self.group_commit_records = 0
        self._replay_journal()
        self._recovery_scan()

    def _file_for(self, path: str) -> str:
        return os.path.join(self.directory, _escape(path))

    # -- recovery / self-healing -------------------------------------------

    def _replay_journal(self) -> None:
        """Re-apply journalled records that may not have reached their files.

        Runs before the recovery scan so a file torn by a crash between
        journal commit and buffered application is *rewritten* from the
        journal, not quarantined.  Every entry is re-applied with the
        classic safe sequence (content on disk cannot be trusted merely
        because it reads back correctly — it may never have been
        flushed), then the journal is truncated.
        """
        try:
            with open(self._journal_path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return
        replayed = 0
        for payload in _iter_frames(raw):
            entry = codec.decode(payload)
            op, path = entry[0], entry[1]
            if op == "w":
                self._write_classic(path, entry[2])
            elif op == "d":
                try:
                    os.unlink(self._file_for(path))
                except FileNotFoundError:
                    pass
            replayed += 1
        self._truncate_journal()
        if replayed:
            self.recovery_report.append(
                ("wal.log", f"replayed {replayed} journalled records"))

    def _truncate_journal(self) -> None:
        with open(self._journal_path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._journal_bytes = 0
        self._unsynced = set()

    def _recovery_scan(self) -> None:
        """Sweep temp droppings and quarantine corrupt records at open."""
        for filename in sorted(os.listdir(self.directory)):
            full = os.path.join(self.directory, filename)
            if filename.endswith(".tmp"):
                # A write that crashed before its rename; the record it
                # was building was never durably logged.
                os.unlink(full)
                self.recovery_report.append((filename, "stale temp file"))
                continue
            if not filename.endswith(_SUFFIX):
                continue
            try:
                with open(full, "rb") as handle:
                    unframe_record(handle.read())
            except (OSError, ValueError) as exc:
                key = _unescape(filename)
                self._quarantine(filename, key, str(exc))

    def _quarantine(self, filename: str, key: str, defect: str) -> None:
        """Move a corrupt record aside; reads of it see no record at all."""
        pen = os.path.join(self.directory, _QUARANTINE_DIR)
        os.makedirs(pen, exist_ok=True)
        src = os.path.join(self.directory, filename)
        dst = os.path.join(pen, filename)
        serial = 0
        while os.path.exists(dst):
            serial += 1
            dst = os.path.join(pen, f"{filename}.{serial}")
        os.replace(src, dst)
        self.metrics.quarantined += 1
        self.recovery_report.append((key, defect))
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        """Flush the directory entry so renames survive power loss too."""
        self.dir_fsyncs += 1
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- write barriers ------------------------------------------------------

    def _barrier_begin(self) -> None:
        self._barrier_depth += 1

    def _barrier_end(self) -> None:
        self._barrier_depth -= 1
        if self._barrier_depth > 0:
            return
        if self.group_commit:
            self._commit_batch()
        if self._dir_fsync_pending:
            self._dir_fsync_pending = False
            self._fsync_directory()

    def _note_rename(self) -> None:
        """Make the latest rename durable now, or at barrier exit."""
        if self._barrier_depth > 0:
            if self._dir_fsync_pending:
                self.dir_fsyncs_coalesced += 1
            self._dir_fsync_pending = True
        else:
            self._fsync_directory()

    # -- group commit --------------------------------------------------------

    def _commit_batch(self) -> None:
        """Make the pending overlay durable: one journal write, one fsync."""
        if not self._pending:
            return
        batch = self._pending
        self._pending = {}
        frames = []
        for path, value in batch.items():
            if value is _DELETED:
                frames.append(frame_record(codec.encode(["d", path])))
            else:
                frames.append(frame_record(codec.encode(["w", path, value])))
        blob = b"".join(frames)
        with open(self._journal_path, "ab") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        self._journal_bytes += len(blob)
        self.group_commits += 1
        self.group_commit_records += len(batch)
        # Durability is settled; application is plain buffered I/O.  A
        # crash before these bytes reach disk is healed by journal
        # replay at the next open.
        for path, value in batch.items():
            target = self._file_for(path)
            if value is _DELETED:
                try:
                    os.unlink(target)
                except FileNotFoundError:
                    pass
                self._unsynced.discard(target)
            else:
                with open(target, "wb") as handle:
                    handle.write(frame_record(codec.encode(value)))
                self._unsynced.add(target)
        if self._journal_bytes >= _CHECKPOINT_BYTES:
            self._checkpoint()

    def _checkpoint(self) -> None:
        """Flush applied files so the journal can be truncated."""
        for target in sorted(self._unsynced):
            try:
                fd = os.open(target, os.O_RDONLY)
            except FileNotFoundError:
                continue
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        self._fsync_directory()
        self._truncate_journal()

    # -- backend hooks -------------------------------------------------------

    def _write_classic(self, path: str, value: Any) -> None:
        raw = frame_record(codec.encode(value))
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._file_for(path))
            self._note_rename()
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)

    def _write(self, path: str, value: Any) -> None:
        if not self.group_commit:
            self._write_classic(path, value)
            return
        self._pending[path] = value
        if self._barrier_depth == 0:
            self._commit_batch()

    def _read(self, path: str, default: Any) -> Any:
        pending = self._pending.get(path, _MISSING)
        if pending is not _MISSING:
            return default if pending is _DELETED else pending
        try:
            with open(self._file_for(path), "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return default
        try:
            return codec.decode(unframe_record(raw))
        except ValueError as exc:
            # Detected lazily (corruption after the open-time scan, e.g.
            # an injected disk fault): heal in place and report no record.
            self._quarantine(_escape(path), path, str(exc))
            return default

    def _delete_raw(self, path: str) -> None:
        if self.group_commit:
            # Journalled even outside a barrier: an earlier write of this
            # key may still sit in the journal, and replay must not
            # resurrect it after a crash.
            self._pending[path] = _DELETED
            if self._barrier_depth == 0:
                self._commit_batch()
            return
        try:
            os.unlink(self._file_for(path))
        except FileNotFoundError:
            pass

    def _keys(self) -> Iterable[str]:
        deleted = {path for path, value in self._pending.items()
                   if value is _DELETED}
        seen = set()
        for filename in os.listdir(self.directory):
            if filename.endswith(_SUFFIX):
                key = _unescape(filename)
                seen.add(key)
                if key not in deleted:
                    yield key
        for path, value in self._pending.items():
            if value is not _DELETED and path not in seen:
                yield path
