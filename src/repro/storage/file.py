"""File-backed stable storage.

One JSON file per key under a node-specific directory, written with the
classic write-to-temp-then-rename pattern so a crash mid-write never
corrupts a previously logged value (rename is atomic on POSIX).

This backend exists to demonstrate that the protocols run against a real
disk, and to test durability across *process* restarts; the simulation
experiments use :class:`~repro.storage.memory.MemoryStorage` for speed.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any, Iterable

from repro.storage import codec
from repro.storage.stable import StableStorage

__all__ = ["FileStorage"]


def _escape(path: str) -> str:
    """Map a storage key to a safe flat filename."""
    return path.replace("%", "%25").replace("/", "%2F") + ".json"


def _unescape(filename: str) -> str:
    stem = filename[:-len(".json")]
    return stem.replace("%2F", "/").replace("%25", "%")


class FileStorage(StableStorage):
    """Directory-of-JSON-files stable storage with atomic writes."""

    def __init__(self, directory: str):
        super().__init__()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _file_for(self, path: str) -> str:
        return os.path.join(self.directory, _escape(path))

    def _write(self, path: str, value: Any) -> None:
        text = codec.encode(value)
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._file_for(path))
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)

    def _read(self, path: str, default: Any) -> Any:
        try:
            with open(self._file_for(path), encoding="utf-8") as handle:
                return codec.decode(handle.read())
        except FileNotFoundError:
            return default

    def _delete_raw(self, path: str) -> None:
        try:
            os.unlink(self._file_for(path))
        except FileNotFoundError:
            pass

    def _keys(self) -> Iterable[str]:
        for filename in os.listdir(self.directory):
            if filename.endswith(".json"):
                yield _unescape(filename)
