"""File-backed stable storage with corruption detection and self-healing.

One record file per key under a node-specific directory.  Every record is
framed for integrity checking::

    <crc32 of payload, 8 hex digits> <payload length in bytes>\\n
    <payload: UTF-8 tagged-JSON from repro.storage.codec>

and written with the classic write-to-temp / fsync / rename / fsync-dir
sequence, so a crash at *any* instant leaves either the old record or the
new one — never a blend — and the rename itself is durable (the directory
entry is flushed too, not just the file contents).

Self-healing: a record that fails its frame check (torn tail after a
mid-``fsync`` crash, bit rot, truncation) is **quarantined** — moved
aside into a ``quarantine/`` subdirectory, counted in
``metrics.quarantined`` — and reads return the caller's default, exactly
as if the record had never been logged.  For the paper's protocols that
is the correct semantics: a value whose log did not complete was never
durably logged, so recovery must proceed as if the ``log`` call crashed
before the write (the protocols are designed for precisely that).  A
recovery scan at open time sweeps stale temp files and proactively
quarantines corrupt records so a recovering node starts from a clean
directory; :attr:`FileStorage.recovery_report` lists what was healed.

This backend exists to demonstrate that the protocols run against a real
disk, and to test durability across *process* restarts; the simulation
experiments use :class:`~repro.storage.memory.MemoryStorage` for speed.
"""

from __future__ import annotations

import os
import tempfile
import zlib
from typing import Any, Iterable, List, Tuple

from repro.storage import codec
from repro.storage.stable import StableStorage

__all__ = ["FileStorage", "frame_record", "unframe_record"]

_SUFFIX = ".json"
_QUARANTINE_DIR = "quarantine"


def _escape(path: str) -> str:
    """Map a storage key to a safe flat filename."""
    return path.replace("%", "%25").replace("/", "%2F") + _SUFFIX


def _unescape(filename: str) -> str:
    stem = filename[:-len(_SUFFIX)]
    return stem.replace("%2F", "/").replace("%25", "%")


def frame_record(text: str) -> bytes:
    """Frame one codec payload with its CRC32/length header."""
    payload = text.encode("utf-8")
    header = f"{zlib.crc32(payload) & 0xFFFFFFFF:08x} {len(payload)}\n"
    return header.encode("ascii") + payload


def unframe_record(raw: bytes) -> str:
    """Verify a framed record and return its payload text.

    Raises :class:`ValueError` describing the defect (torn tail, length
    mismatch, checksum mismatch, malformed header) when the record does
    not pass its integrity check.
    """
    newline = raw.find(b"\n")
    if newline < 0:
        raise ValueError("missing frame header")
    header = raw[:newline]
    try:
        crc_hex, length_text = header.decode("ascii").split(" ")
        expect_crc = int(crc_hex, 16)
        expect_len = int(length_text)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ValueError(f"malformed frame header {header!r}") from exc
    payload = raw[newline + 1:]
    if len(payload) != expect_len:
        raise ValueError(
            f"torn record: {len(payload)} payload bytes, "
            f"header promises {expect_len}")
    actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
    if actual_crc != expect_crc:
        raise ValueError(
            f"checksum mismatch: {actual_crc:08x} != {expect_crc:08x}")
    return payload.decode("utf-8")


class FileStorage(StableStorage):
    """Directory-of-record-files stable storage with atomic, checked writes."""

    def __init__(self, directory: str):
        super().__init__()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        # (key, defect) pairs healed by the open-time recovery scan.
        self.recovery_report: List[Tuple[str, str]] = []
        # Write-barrier state: inside a barrier the per-write directory
        # fsync (which makes the *rename* durable) is deferred and issued
        # once at barrier exit.  Record files themselves are still
        # fsynced per write, so individual records stay atomic.
        self._barrier_depth = 0
        self._dir_fsync_pending = False
        self.dir_fsyncs = 0
        self.dir_fsyncs_coalesced = 0
        self._recovery_scan()

    def _file_for(self, path: str) -> str:
        return os.path.join(self.directory, _escape(path))

    # -- recovery / self-healing -------------------------------------------

    def _recovery_scan(self) -> None:
        """Sweep temp droppings and quarantine corrupt records at open."""
        for filename in sorted(os.listdir(self.directory)):
            full = os.path.join(self.directory, filename)
            if filename.endswith(".tmp"):
                # A write that crashed before its rename; the record it
                # was building was never durably logged.
                os.unlink(full)
                self.recovery_report.append((filename, "stale temp file"))
                continue
            if not filename.endswith(_SUFFIX):
                continue
            try:
                with open(full, "rb") as handle:
                    unframe_record(handle.read())
            except (OSError, ValueError) as exc:
                key = _unescape(filename)
                self._quarantine(filename, key, str(exc))

    def _quarantine(self, filename: str, key: str, defect: str) -> None:
        """Move a corrupt record aside; reads of it see no record at all."""
        pen = os.path.join(self.directory, _QUARANTINE_DIR)
        os.makedirs(pen, exist_ok=True)
        src = os.path.join(self.directory, filename)
        dst = os.path.join(pen, filename)
        serial = 0
        while os.path.exists(dst):
            serial += 1
            dst = os.path.join(pen, f"{filename}.{serial}")
        os.replace(src, dst)
        self.metrics.quarantined += 1
        self.recovery_report.append((key, defect))
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        """Flush the directory entry so renames survive power loss too."""
        self.dir_fsyncs += 1
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- write barriers ------------------------------------------------------

    def _barrier_begin(self) -> None:
        self._barrier_depth += 1

    def _barrier_end(self) -> None:
        self._barrier_depth -= 1
        if self._barrier_depth == 0 and self._dir_fsync_pending:
            self._dir_fsync_pending = False
            self._fsync_directory()

    def _note_rename(self) -> None:
        """Make the latest rename durable now, or at barrier exit."""
        if self._barrier_depth > 0:
            if self._dir_fsync_pending:
                self.dir_fsyncs_coalesced += 1
            self._dir_fsync_pending = True
        else:
            self._fsync_directory()

    # -- backend hooks -------------------------------------------------------

    def _write(self, path: str, value: Any) -> None:
        raw = frame_record(codec.encode(value))
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._file_for(path))
            self._note_rename()
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)

    def _read(self, path: str, default: Any) -> Any:
        try:
            with open(self._file_for(path), "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return default
        try:
            return codec.decode(unframe_record(raw))
        except ValueError as exc:
            # Detected lazily (corruption after the open-time scan, e.g.
            # an injected disk fault): heal in place and report no record.
            self._quarantine(_escape(path), path, str(exc))
            return default

    def _delete_raw(self, path: str) -> None:
        try:
            os.unlink(self._file_for(path))
        except FileNotFoundError:
            pass

    def _keys(self) -> Iterable[str]:
        for filename in os.listdir(self.directory):
            if filename.endswith(_SUFFIX):
                yield _unescape(filename)
