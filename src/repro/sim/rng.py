"""Compatibility shim: seeded streams moved to :mod:`repro.runtime.rng`."""

from __future__ import annotations

from repro.runtime.rng import SeedSequence

__all__ = ["SeedSequence"]
