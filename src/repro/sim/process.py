"""Compatibility shim: the process model moved to :mod:`repro.runtime.node`.

:class:`~repro.runtime.node.Node` and
:class:`~repro.runtime.node.NodeComponent` are runtime-agnostic (they run
on both :class:`~repro.runtime.sim.SimRuntime` and
:class:`~repro.runtime.live.LiveRuntime`); this module re-exports them so
existing imports keep working unchanged.
"""

from __future__ import annotations

from repro.runtime.node import Node, NodeComponent

__all__ = ["Node", "NodeComponent"]
