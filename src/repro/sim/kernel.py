"""Compatibility shim: the simulation kernel moved to :mod:`repro.runtime`.

The runtime-agnostic primitives (``Task``, ``Event``, ``Signal``,
``AnyOf``) live in :mod:`repro.runtime.primitives`; the deterministic
scheduler lives in :mod:`repro.runtime.sim` as
:class:`~repro.runtime.sim.SimRuntime` (``Simulator`` remains its
historical alias).  This module re-exports the old surface so existing
imports, tests and benchmarks keep working unchanged.
"""

from __future__ import annotations

from repro.runtime.primitives import AnyOf, Event, Signal, Task
from repro.runtime.sim import SimRuntime, Simulator, Timer

__all__ = ["Simulator", "SimRuntime", "Task", "Event", "Signal", "Timer",
           "AnyOf"]
