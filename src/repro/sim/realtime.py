"""Soft real-time execution of a simulation.

The discrete-event kernel is virtual-time by default — perfect for
experiments, but a downstream user may want to watch a cluster live
(demos, manual poking, latency feel).  :class:`RealTimeRunner` replays
the event queue against the wall clock: before each event it sleeps
until the event's virtual time, scaled by ``time_scale`` (0.5 → twice
as fast as real time).

Nothing in the protocol stack changes: the same deterministic schedule
executes, just paced.  Because sleeping is the only difference, a
real-time run and a virtual run of the same seed produce identical
states — asserted by the tests.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.runtime.sim import Simulator

__all__ = ["RealTimeRunner"]


class RealTimeRunner:
    """Paces a simulator against the wall clock.

    Parameters
    ----------
    sim:
        The simulator to drive.
    time_scale:
        Wall seconds per unit of virtual time (1.0 = real time,
        0.01 = hundredfold speed-up).
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    clock:
        Injection point for tests (defaults to :func:`time.monotonic`).
    """

    def __init__(self, sim: Simulator, time_scale: float = 1.0,
                 # Sanctioned wall-clock boundary: pacing only — the event
                 # *schedule* stays a pure function of the seed.
                 sleep: Callable[[float], None] = time.sleep,  # repro: noqa(DET001) -- pacing only, injectable
                 clock: Callable[[], float] = time.monotonic):  # repro: noqa(DET001) -- pacing only, injectable
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.sim = sim
        self.time_scale = time_scale
        self._sleep = sleep
        self._clock = clock
        self.slept_total = 0.0

    def run(self, until: Optional[float] = None) -> float:
        """Process events, pacing each to its wall-clock due time.

        Returns the final virtual time, exactly like ``Simulator.run``.
        """
        anchor_wall = self._clock()
        anchor_virtual = self.sim.now
        while True:
            pending = [t for t in self.sim._heap if not t.cancelled]
            if not pending:
                break
            next_when = min(t.when for t in pending)
            if until is not None and next_when > until:
                break
            due_wall = anchor_wall + \
                (next_when - anchor_virtual) * self.time_scale
            lag = due_wall - self._clock()
            if lag > 0:
                self._sleep(lag)
                self.slept_total += lag
            self.sim.run(until=next_when)
        if until is not None and self.sim.now < until:
            self.sim.run(until=until)
        return self.sim.now
