"""Compatibility shim: tracing moved to :mod:`repro.runtime.trace`."""

from __future__ import annotations

from repro.runtime.trace import CATEGORIES, TraceEvent, Tracer

__all__ = ["TraceEvent", "Tracer", "CATEGORIES"]
