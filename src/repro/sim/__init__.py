"""Deterministic discrete-event simulation substrate.

Compatibility façade: the kernel, process model, tracer and RNG streams
now live in :mod:`repro.runtime` (shared with the live asyncio/UDP
runtime — see docs/RUNTIME.md); this package re-exports them alongside
the simulation-only pieces.

Public surface:

* :class:`~repro.runtime.Simulator` (= ``SimRuntime``),
  :class:`~repro.runtime.Task`, :class:`~repro.runtime.Event`,
  :class:`~repro.runtime.Signal` — the virtual-time kernel.
* :class:`~repro.runtime.Node`, :class:`~repro.runtime.NodeComponent` —
  the crash-recovery process model.
* :class:`~repro.sim.faults.FaultSchedule`,
  :class:`~repro.sim.faults.RandomFaults` — fault injection.
* :class:`~repro.runtime.SeedSequence` — named seeded randomness.
* :class:`~repro.sim.realtime.RealTimeRunner` — soft real-time pacing of
  a simulated run.
"""

from repro.runtime import (AnyOf, Event, Node, NodeComponent, SeedSequence,
                           Signal, Simulator, Task, Timer, TraceEvent, Tracer)
from repro.sim.faults import (FaultEvent, FaultSchedule,
                              PartitionSchedule, RandomFaults)
from repro.sim.realtime import RealTimeRunner

__all__ = [
    "AnyOf",
    "Event",
    "FaultEvent",
    "FaultSchedule",
    "Node",
    "NodeComponent",
    "PartitionSchedule",
    "RandomFaults",
    "RealTimeRunner",
    "SeedSequence",
    "Signal",
    "Simulator",
    "Task",
    "Timer",
    "TraceEvent",
    "Tracer",
]
