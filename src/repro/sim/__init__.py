"""Deterministic discrete-event simulation substrate.

Public surface:

* :class:`~repro.sim.kernel.Simulator`, :class:`~repro.sim.kernel.Task`,
  :class:`~repro.sim.kernel.Event`, :class:`~repro.sim.kernel.Signal` —
  the virtual-time kernel.
* :class:`~repro.sim.process.Node`,
  :class:`~repro.sim.process.NodeComponent` — the crash-recovery process
  model.
* :class:`~repro.sim.faults.FaultSchedule`,
  :class:`~repro.sim.faults.RandomFaults` — fault injection.
* :class:`~repro.sim.rng.SeedSequence` — named seeded randomness.
"""

from repro.sim.faults import (FaultEvent, FaultSchedule,
                              PartitionSchedule, RandomFaults)
from repro.sim.kernel import AnyOf, Event, Signal, Simulator, Task, Timer
from repro.sim.process import Node, NodeComponent
from repro.sim.realtime import RealTimeRunner
from repro.sim.rng import SeedSequence
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "AnyOf",
    "Event",
    "FaultEvent",
    "FaultSchedule",
    "Node",
    "NodeComponent",
    "PartitionSchedule",
    "RandomFaults",
    "RealTimeRunner",
    "SeedSequence",
    "Signal",
    "Simulator",
    "Task",
    "Timer",
    "TraceEvent",
    "Tracer",
]
