"""Fault injection: crash/recover schedules for crash-recovery runs.

The actual fault mechanics — scheduling crash/recover timelines,
cutting the link matrix, seeded random crash-recovery arming — live in
:mod:`repro.chaos.inject`, shared with the chaos engine's controllers.
This module keeps the schedule-building front-ends the benchmarks and
targeted tests are written against:

* :class:`FaultSchedule` — an explicit, hand-written timeline of crash and
  recover events (used by targeted tests and recovery benchmarks).
* :class:`RandomFaults` — seeded random crash/recovery with per-node
  mean-time-to-failure and mean-time-to-repair.  After ``stabilize_at``
  no further crashes are injected on *good* nodes, so they satisfy the
  paper's definition of a good process ("eventually remains permanently
  up", Section 3.3).  Nodes listed in ``bad_nodes`` keep oscillating
  forever (or stay down), modelling *bad* processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from repro.chaos.inject import (FaultEvent, RandomCrashRecover, cut_off,
                                install_timeline, rejoin)
from repro.runtime import Node, Simulator

if TYPE_CHECKING:  # transport sits above sim: type-only import, no cycle
    from repro.transport.network import Network

__all__ = ["FaultEvent", "FaultSchedule", "PartitionSchedule",
           "RandomFaults"]


class FaultSchedule:
    """Explicit crash/recover timeline.

    >>> schedule = FaultSchedule([(5.0, 1, "crash"), (9.0, 1, "recover")])
    """

    def __init__(self, events: Iterable[Tuple[float, int, str]] = ()):
        self.events: List[FaultEvent] = [
            event if isinstance(event, FaultEvent) else FaultEvent(*event)
            for event in events
        ]

    def crash(self, time: float, node_id: int) -> "FaultSchedule":
        """Append a crash event (chainable)."""
        self.events.append(FaultEvent(time, node_id, FaultEvent.CRASH))
        return self

    def recover(self, time: float, node_id: int) -> "FaultSchedule":
        """Append a recover event (chainable)."""
        self.events.append(FaultEvent(time, node_id, FaultEvent.RECOVER))
        return self

    def install(self, sim: Simulator, nodes: Dict[int, Node]) -> None:
        """Schedule every event on the simulator."""
        install_timeline(sim, nodes, self.events)


class PartitionSchedule:
    """Explicit network partition timeline.

    Each entry isolates a set of nodes from the rest of the cluster for
    a time window; links inside either side keep working.  Fairness of
    the channel (and therefore liveness of the protocols) requires every
    partition to eventually heal, which this schedule guarantees by
    construction.

    >>> schedule = PartitionSchedule().isolate(2.0, 6.0, [0])
    """

    def __init__(self) -> None:
        self._windows: List[Tuple[float, float, Tuple[int, ...]]] = []

    def isolate(self, start: float, end: float,
                nodes: Iterable[int]) -> "PartitionSchedule":
        """Cut ``nodes`` off from everyone else during [start, end)."""
        if end <= start:
            raise ValueError("partition window must have positive length")
        self._windows.append((start, end, tuple(sorted(set(nodes)))))
        return self

    def install(self, sim: Simulator, network: "Network") -> None:
        """Schedule the cut and heal events on the network."""
        for start, end, isolated in self._windows:
            sim.schedule(start, cut_off, network, isolated)
            sim.schedule(end, rejoin, network, isolated)


class RandomFaults(RandomCrashRecover):
    """Seeded random crash-recovery injection.

    A thin alias over :class:`repro.chaos.inject.RandomCrashRecover`
    (same parameters, same seeded draw order — existing benchmark
    timelines replay bit-for-bit); see that class for the details.
    """
