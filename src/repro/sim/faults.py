"""Fault injection: crash/recover schedules for crash-recovery runs.

Two injectors are provided:

* :class:`FaultSchedule` — an explicit, hand-written timeline of crash and
  recover events (used by targeted tests and recovery benchmarks).
* :class:`RandomFaults` — seeded random crash/recovery with per-node
  mean-time-to-failure and mean-time-to-repair.  After ``stabilize_at``
  no further crashes are injected on *good* nodes, so they satisfy the
  paper's definition of a good process ("eventually remains permanently
  up", Section 3.3).  Nodes listed in ``bad_nodes`` keep oscillating
  forever (or stay down), modelling *bad* processes.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, \
    Tuple

from repro.runtime import Node, Simulator

if TYPE_CHECKING:  # transport sits above sim: type-only import, no cycle
    from repro.transport.network import Network

__all__ = ["FaultEvent", "FaultSchedule", "PartitionSchedule",
           "RandomFaults"]


class FaultEvent:
    """One entry of an explicit fault timeline."""

    __slots__ = ("time", "node_id", "action")

    CRASH = "crash"
    RECOVER = "recover"

    def __init__(self, time: float, node_id: int, action: str):
        if action not in (self.CRASH, self.RECOVER):
            raise ValueError(f"unknown fault action {action!r}")
        self.time = time
        self.node_id = node_id
        self.action = action

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultEvent({self.time}, {self.node_id}, {self.action!r})"


class FaultSchedule:
    """Explicit crash/recover timeline.

    >>> schedule = FaultSchedule([(5.0, 1, "crash"), (9.0, 1, "recover")])
    """

    def __init__(self, events: Iterable[Tuple[float, int, str]] = ()):
        self.events: List[FaultEvent] = [
            event if isinstance(event, FaultEvent) else FaultEvent(*event)
            for event in events
        ]

    def crash(self, time: float, node_id: int) -> "FaultSchedule":
        """Append a crash event (chainable)."""
        self.events.append(FaultEvent(time, node_id, FaultEvent.CRASH))
        return self

    def recover(self, time: float, node_id: int) -> "FaultSchedule":
        """Append a recover event (chainable)."""
        self.events.append(FaultEvent(time, node_id, FaultEvent.RECOVER))
        return self

    def install(self, sim: Simulator, nodes: Dict[int, Node]) -> None:
        """Schedule every event on the simulator."""
        for event in self.events:
            node = nodes[event.node_id]
            if event.action == FaultEvent.CRASH:
                sim.schedule(event.time, node.crash)
            else:
                sim.schedule(event.time, node.recover)


class PartitionSchedule:
    """Explicit network partition timeline.

    Each entry isolates a set of nodes from the rest of the cluster for
    a time window; links inside either side keep working.  Fairness of
    the channel (and therefore liveness of the protocols) requires every
    partition to eventually heal, which this schedule guarantees by
    construction.

    >>> schedule = PartitionSchedule().isolate(2.0, 6.0, [0])
    """

    def __init__(self) -> None:
        self._windows: List[Tuple[float, float, Tuple[int, ...]]] = []

    def isolate(self, start: float, end: float,
                nodes: Iterable[int]) -> "PartitionSchedule":
        """Cut ``nodes`` off from everyone else during [start, end)."""
        if end <= start:
            raise ValueError("partition window must have positive length")
        self._windows.append((start, end, tuple(sorted(set(nodes)))))
        return self

    def install(self, sim: Simulator, network: "Network") -> None:
        """Schedule the cut and heal events on the network."""
        for start, end, isolated in self._windows:
            sim.schedule(start, self._cut, network, isolated)
            sim.schedule(end, self._heal, network, isolated)

    @staticmethod
    def _cut(network: "Network", isolated: Tuple[int, ...]) -> None:
        others = [n for n in network.node_ids() if n not in isolated]
        for a in isolated:
            for b in others:
                network.partition(a, b)

    @staticmethod
    def _heal(network: "Network", isolated: Tuple[int, ...]) -> None:
        others = [n for n in network.node_ids() if n not in isolated]
        for a in isolated:
            for b in others:
                network.heal(a, b)


class RandomFaults:
    """Seeded random crash-recovery injection.

    Parameters
    ----------
    mttf:
        Mean virtual time between a node coming up and its next crash
        (exponential).
    mttr:
        Mean down-time before recovery (exponential).
    stabilize_at:
        After this instant no new crashes are injected on good nodes and
        any down good node is recovered, so good nodes *eventually remain
        permanently up*.
    bad_nodes:
        Node ids that keep oscillating past ``stabilize_at`` (paper's
        "bad" processes).  ``bad_mode`` selects whether they oscillate
        forever (``"oscillate"``) or crash permanently (``"die"``).
    """

    def __init__(self, mttf: float, mttr: float, stabilize_at: float,
                 seed: int = 0,
                 bad_nodes: Sequence[int] = (),
                 bad_mode: str = "oscillate",
                 max_faults_per_node: Optional[int] = None):
        if bad_mode not in ("oscillate", "die"):
            raise ValueError(f"unknown bad_mode {bad_mode!r}")
        self.mttf = mttf
        self.mttr = mttr
        self.stabilize_at = stabilize_at
        # Seed boundary: the injector owns a private stream derived from
        # an explicit seed, so fault timelines replay bit-for-bit.
        self.rng = random.Random(seed)  # repro: noqa(DET004)
        self.bad_nodes = frozenset(bad_nodes)
        self.bad_mode = bad_mode
        self.max_faults_per_node = max_faults_per_node
        self._fault_counts: Dict[int, int] = {}

    def install(self, sim: Simulator, nodes: Dict[int, Node]) -> None:
        """Arm a crash timer for every node."""
        for node in nodes.values():
            self._arm_crash(sim, node)

    # -- internals ----------------------------------------------------------

    def _budget_left(self, node: Node) -> bool:
        if self.max_faults_per_node is None:
            return True
        return self._fault_counts.get(node.node_id, 0) < self.max_faults_per_node

    def _arm_crash(self, sim: Simulator, node: Node) -> None:
        delay = self.rng.expovariate(1.0 / self.mttf)
        sim.schedule(delay, self._crash, sim, node)

    def _crash(self, sim: Simulator, node: Node) -> None:
        is_bad = node.node_id in self.bad_nodes
        if not is_bad and sim.now >= self.stabilize_at:
            return  # good nodes stop crashing after stabilisation
        if not self._budget_left(node):
            return
        if not node.up:
            return
        node.crash()
        self._fault_counts[node.node_id] = \
            self._fault_counts.get(node.node_id, 0) + 1
        if is_bad and self.bad_mode == "die":
            return  # permanently down
        delay = self.rng.expovariate(1.0 / self.mttr)
        sim.schedule(delay, self._recover, sim, node)

    def _recover(self, sim: Simulator, node: Node) -> None:
        if node.up:
            return
        node.recover()
        self._arm_crash(sim, node)
