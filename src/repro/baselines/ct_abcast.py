"""Chandra-Toueg Atomic Broadcast (crash-stop baseline).

Section 5.6: "when crashes are definitive, the protocol reduces to the
Chandra-Toueg Atomic Broadcast protocol [3]".  This baseline *is* that
reduction, made literal:

* the consensus black box is the ◇S rotating-coordinator algorithm of
  [3] (:class:`~repro.consensus.chandra_toueg.ChandraTouegConsensus`),
  which keeps no durable state;
* the Atomic Broadcast layer is the paper's ordering loop with its only
  stable-storage write (the durable incarnation counter) replaced by a
  volatile one — in the crash-stop model a process never restarts, so
  sequence counters can never collide;
* the gossip task doubles as the reliable-broadcast dissemination of [3]
  (on a loss-free network one gossip round suffices; keeping the
  periodic task makes the code path identical to ours, which is the
  point of the E8 comparison).

Run it on a loss-free network with crash-stop faults only; it makes no
liveness or safety promises if a "crashed" node is recovered.
"""

from __future__ import annotations

from repro.core.basic import BasicAtomicBroadcast

__all__ = ["ChandraTouegAtomicBroadcast"]


class ChandraTouegAtomicBroadcast(BasicAtomicBroadcast):
    """The paper's ordering loop with zero stable-storage writes."""

    name = "ct-atomic-broadcast"

    def _bump_incarnation(self) -> None:
        # Crash-stop: no recovery, so a volatile constant is safe and the
        # baseline performs no log operations at all.
        self.incarnation = 1
