"""Eager-logging Atomic Broadcast (the strawman of Section 4.3).

The paper argues that treating every protocol variable as critical —
logging the Unordered set and the Agreed queue on every update — is what
a naive crash-recovery port of Chandra-Toueg would do, and that its own
design ("must not log a critical data every time it is updated",
Section 1) avoids exactly that cost.

This baseline *is* the naive port: functionally identical to the basic
protocol (it inherits the whole ordering loop), but it durably writes

* the Unordered set every time a message is admitted, and
* the round number and Agreed queue every time a round commits.

Experiment E2 counts its log operations per delivered message against the
basic protocol's.  Recovery does exploit the logs (restoring ``k`` and
``Agreed`` directly), so the baseline is not artificially handicapped —
it simply pays for durability it rarely needs.
"""

from __future__ import annotations

from repro.core.agreed import AgreedQueue
from repro.core.basic import BasicAtomicBroadcast
from repro.core.messages import AppMessage

__all__ = ["EagerLoggingAtomicBroadcast"]


class EagerLoggingAtomicBroadcast(BasicAtomicBroadcast):
    """Logs Unordered and (k, Agreed) on every update."""

    name = "eager-atomic-broadcast"

    UNORDERED_KEY = ("ab", "eager-unordered")
    AGREED_KEY = ("ab", "eager-agreed")

    def _restore_volatile_state(self) -> None:
        assert self.node is not None
        stored = self.node.storage.retrieve(self.AGREED_KEY, None)
        if stored is not None:
            stored_k, agreed_plain = stored
            self.k = int(stored_k)
            self.agreed = AgreedQueue.from_plain(agreed_plain,
                                                 self.order_rule)
            self._pending_restore = True
        for message in self.node.storage.retrieve_list(self.UNORDERED_KEY):
            self._admit_locally(message)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pending_restore = False

    def on_start(self) -> None:
        self._pending_restore = False
        super().on_start()

    def _announce_restore(self) -> None:
        if not self._pending_restore:
            return
        self._pending_restore = False
        for listener in self._listeners:
            listener.on_restore(self.agreed.checkpoint_state)
        for message in self.agreed.sequence():
            for listener in self._listeners:
                listener.on_deliver(message)
        self.messages_delivered += len(self.agreed)

    def _admit_locally(self, message: AppMessage) -> None:
        if message.id in self.unordered or message in self.agreed:
            return
        super()._admit_locally(message)
        assert self.node is not None
        # Critical-on-every-update: the whole set, every time.
        self.node.storage.log(self.UNORDERED_KEY,
                              list(self.unordered.values()))

    def _after_round(self) -> None:
        assert self.node is not None
        self.node.storage.log(self.AGREED_KEY,
                              [self.k, self.agreed.to_plain()])
        self.node.storage.log(self.UNORDERED_KEY,
                              list(self.unordered.values()))
