"""Baseline total-order protocols the paper is compared against."""

from repro.baselines.ct_abcast import ChandraTouegAtomicBroadcast
from repro.baselines.eager import EagerLoggingAtomicBroadcast
from repro.baselines.sequencer import FixedSequencerBroadcast

__all__ = [
    "ChandraTouegAtomicBroadcast",
    "EagerLoggingAtomicBroadcast",
    "FixedSequencerBroadcast",
]
