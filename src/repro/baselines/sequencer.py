"""Fixed-sequencer total order (context baseline).

The classic non-consensus way to totally order messages: every process
forwards its messages to a distinguished *sequencer*, which assigns
consecutive sequence numbers and multisends ``ORDER(seq, m)``; receivers
deliver strictly in sequence-number order, pulling gaps with explicit
retransmission requests (so the protocol works over the fair-loss
channel).

This baseline provides failure-free latency/throughput context for the
consensus-based protocols: one network hop to the sequencer plus one
multisend, no consensus round, no logging — but **no fault tolerance**:
if the sequencer crashes, ordering simply stops (and nothing is logged,
so a recovered sequencer forgets its history).  The benches only run it
failure-free; tests document its failure behaviour.

It deliberately implements the same upper-layer surface as the
consensus-based protocols (``submit`` / ``add_listener`` /
``deliver_sequence``), so the harness can swap it in transparently.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.agreed import AgreedQueue
from repro.core.basic import DeliveryListener
from repro.core.ids import MessageId
from repro.core.messages import AppMessage
from repro.errors import BroadcastError
from repro.runtime import NodeComponent
from repro.transport.endpoint import Endpoint
from repro.transport.message import WireMessage

__all__ = ["FixedSequencerBroadcast"]


class ForwardMessage(WireMessage):
    """A message forwarded to the sequencer for ordering."""

    type = "seq.forward"
    fields = ("message",)

    def __init__(self, message: AppMessage):
        self.message = message


class OrderMessage(WireMessage):
    """Sequencer's ordering announcement."""

    type = "seq.order"
    fields = ("seq", "message")

    def __init__(self, seq: int, message: AppMessage):
        self.seq = seq
        self.message = message


class ResendRequest(WireMessage):
    """Gap repair: ask the sequencer to re-announce ``seq``."""

    type = "seq.resend"
    fields = ("seq",)

    def __init__(self, seq: int):
        self.seq = seq


class SequencerStatus(WireMessage):
    """Periodic announcement of the highest assigned sequence number.

    Without it, a receiver that lost the *tail* of the order stream would
    have no gap to notice; with it, fair-loss retransmission covers tail
    losses too.
    """

    type = "seq.status"
    fields = ("highest",)

    def __init__(self, highest: int):
        self.highest = highest


class FixedSequencerBroadcast(NodeComponent):
    """Total order via a fixed sequencer (node 0 by default)."""

    name = "fixed-sequencer"

    def __init__(self, endpoint: Endpoint, sequencer_id: int = 0,
                 resend_interval: float = 0.5):
        super().__init__()
        self.endpoint = endpoint
        self.sequencer_id = sequencer_id
        self.resend_interval = resend_interval
        # Optional membership layer, wired by the harness like on the
        # consensus-based stacks (the sequencer itself stays fixed; a
        # view evicting it halts ordering, as documented above).
        self.view_manager = None
        # Receiver state.
        self.agreed = AgreedQueue()
        self.next_seq = 1
        self._pending: Dict[int, AppMessage] = {}
        self._listeners: List[DeliveryListener] = []
        self._delivered = None
        # Sequencer state.
        self._order_log: Dict[int, AppMessage] = {}
        self._assigned: Dict[MessageId, int] = {}
        self._next_assign = 1
        self._seq = 0
        self.incarnation = 1

    # -- lifecycle -----------------------------------------------------------

    def on_start(self) -> None:
        node = self.node
        assert node is not None
        self.agreed = AgreedQueue()
        self.next_seq = 1
        self._pending = {}
        self._listeners = []
        self._delivered = node.sim.signal(f"seq-delivered@{node.node_id}")
        self._order_log = {}
        self._assigned = {}
        self._next_assign = 1
        self._seq = 0
        self._highest_known = 0
        self._outstanding: Dict[MessageId, AppMessage] = {}
        if self.view_manager is not None:
            self._listeners.append(self.view_manager)
        self.endpoint.register(ForwardMessage.type, self._on_forward)
        self.endpoint.register(OrderMessage.type, self._on_order)
        self.endpoint.register(ResendRequest.type, self._on_resend)
        self.endpoint.register(SequencerStatus.type, self._on_status)
        node.spawn(self._gap_repair_task(), "seq-gap-repair")
        if node.node_id == self.sequencer_id:
            node.spawn(self._status_task(), "seq-status")

    # -- upper layer (same surface as the consensus-based protocols) ---------------

    def add_listener(self, listener: DeliveryListener) -> None:
        """Subscribe to delivery upcalls."""
        self._listeners.append(listener)

    def submit(self, payload: Any) -> AppMessage:
        """Hand a message to the sequencer for ordering (non-blocking)."""
        assert self.node is not None
        if not self.node.up:
            raise BroadcastError("broadcast on a down process")
        self._seq += 1
        message = AppMessage(
            MessageId(self.node.node_id, self.incarnation, self._seq),
            payload)
        if self.node.node_id == self.sequencer_id:
            self._assign(message)
        else:
            # Track until ordered: the forward travels over a fair-loss
            # channel and is retransmitted by the gap-repair task.
            self._outstanding[message.id] = message
            self.endpoint.send(self.sequencer_id, ForwardMessage(message))
        return message

    def broadcast(self, payload: Any):
        """Blocking variant: returns once the message is delivered locally."""
        message = self.submit(payload)
        while message not in self.agreed:
            yield self._delivered.wait()
        return message

    def deliver_sequence(self) -> List[AppMessage]:
        """Messages delivered so far, in order."""
        return self.agreed.sequence()

    def delivered_count(self) -> int:
        return len(self.agreed)

    def has_backlog(self, ordered=None) -> bool:
        """True while this node holds messages not yet known ordered.

        Mirrors :meth:`repro.core.basic.BasicAtomicBroadcast.has_backlog`:
        ``ordered`` is the harness's record of ids delivered anywhere —
        those are no longer this node's responsibility to push.
        """
        if not self._outstanding:
            return False
        if ordered is None:
            return True
        return any(mid not in ordered for mid in self._outstanding)

    # -- sequencer role -----------------------------------------------------------

    def _assign(self, message: AppMessage) -> None:
        existing = self._assigned.get(message.id)
        if existing is not None:
            self.endpoint.multisend(
                OrderMessage(existing, self._order_log[existing]))
            return
        seq = self._next_assign
        self._next_assign += 1
        self._assigned[message.id] = seq  # repro: noqa(RES001) -- baseline fidelity: the fixed-sequencer keeps its full assignment map (no GC protocol in [12])
        self._order_log[seq] = message  # repro: noqa(RES001) -- the order log serves ResendRequest for arbitrarily old sequence numbers
        self.endpoint.multisend(OrderMessage(seq, message))

    def _on_forward(self, msg: ForwardMessage, sender: int) -> None:
        assert self.node is not None
        if self.node.node_id == self.sequencer_id:
            self._assign(msg.message)

    def _on_resend(self, msg: ResendRequest, sender: int) -> None:
        assert self.node is not None
        if self.node.node_id != self.sequencer_id:
            return
        message = self._order_log.get(msg.seq)
        if message is not None:
            self.endpoint.send(sender, OrderMessage(msg.seq, message))

    # -- receiver role ----------------------------------------------------------------

    def _on_order(self, msg: OrderMessage, sender: int) -> None:
        if msg.seq < self.next_seq:
            return  # duplicate of something already delivered
        self._pending[msg.seq] = msg.message
        self._outstanding.pop(msg.message.id, None)
        while self.next_seq in self._pending:
            message = self._pending.pop(self.next_seq)
            self.next_seq += 1
            for delivered in self.agreed.append_batch([message]):
                for listener in self._listeners:
                    listener.on_deliver(delivered)
        if self._delivered is not None:
            self._delivered.notify()

    def _on_status(self, msg: SequencerStatus, sender: int) -> None:
        self._highest_known = max(self._highest_known, msg.highest)

    def _status_task(self):
        while True:
            self.endpoint.multisend(SequencerStatus(self._next_assign - 1))
            yield self.resend_interval

    def _gap_repair_task(self):
        """Periodically re-request the lowest missing sequence number."""
        while True:
            yield self.resend_interval
            behind_pending = (self._pending
                              and min(self._pending) > self.next_seq)
            behind_status = self._highest_known >= self.next_seq
            if behind_pending or behind_status:
                self.endpoint.send(self.sequencer_id,
                                   ResendRequest(self.next_seq))
            for message in list(self._outstanding.values()):
                if message in self.agreed:
                    self._outstanding.pop(message.id, None)
                else:
                    self.endpoint.send(self.sequencer_id,
                                       ForwardMessage(message))
