"""Scoped endpoints: several protocol instances on one node.

A node that belongs to several process groups (Section 6.4) runs one
Atomic Broadcast + consensus stack *per group*.  Those stacks must not
see each other's traffic or peers.  A :class:`ScopedEndpoint` wraps the
node's real endpoint and

* restricts ``peers()``/``multisend`` to the group's membership,
* prefixes every message type with the scope name (wrapping outgoing
  messages in a :class:`ScopedMessage` envelope and unwrapping incoming
  ones), so two stacks registering the same handler types never collide.

The wrapped endpoint quacks exactly like :class:`~repro.transport.endpoint.Endpoint`
for the protocol layers (``send``/``multisend``/``register``/``peers``/
``node``/``node_id``).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, Tuple

from repro.errors import SimulationError
from repro.sizing import estimate_size
from repro.transport.endpoint import Endpoint
from repro.transport.message import WireMessage

__all__ = ["ScopedEndpoint", "ScopedMessage"]


class ScopedMessage(WireMessage):
    """Envelope carrying an inner message under a scoped type tag."""

    def __init__(self, scope: str, inner: WireMessage):
        self.scope = scope
        self.inner = inner
        self.type = f"{scope}::{inner.type}"

    def estimated_size(self) -> int:
        return 2 + len(self.scope) + estimate_size(self.inner)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScopedMessage({self.scope!r}, {self.inner!r})"


class ScopedEndpoint:
    """A group-restricted, type-namespaced view of a node's endpoint."""

    def __init__(self, endpoint: Endpoint, scope: str,
                 members: Sequence[int]):
        if not scope:
            raise SimulationError("scope name must be non-empty")
        self.endpoint = endpoint
        self.scope = scope
        # A scope's membership is fixed at construction; the dynamic
        # view machinery never applies inside a group.
        self.view_source: Any = None
        self.members: Tuple[int, ...] = tuple(sorted(set(members)))
        if endpoint.node_id not in self.members:
            raise SimulationError(
                f"node {endpoint.node_id} is not a member of "
                f"scope {scope!r}")

    # -- Endpoint surface -----------------------------------------------------

    @property
    def node(self):
        return self.endpoint.node

    @property
    def node_id(self) -> int:
        return self.endpoint.node_id

    def peers(self) -> Tuple[int, ...]:
        """Only the scope's members are visible peers."""
        return self.members

    def send(self, dst: int, message: WireMessage) -> None:
        if dst not in self.members:
            raise SimulationError(
                f"destination {dst} outside scope {self.scope!r}")
        self.endpoint.send(dst, ScopedMessage(self.scope, message))

    def multisend(self, message: WireMessage) -> None:
        """Multisend within the scope (the group's member set)."""
        envelope = ScopedMessage(self.scope, message)
        for dst in self.members:
            self.endpoint.send(dst, envelope)

    def register(self, msg_type: str,
                 handler: Callable[[Any, int], None]) -> None:
        def unwrap(envelope: ScopedMessage, sender: int) -> None:
            handler(envelope.inner, sender)

        self.endpoint.register(f"{self.scope}::{msg_type}", unwrap)
