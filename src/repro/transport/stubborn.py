"""Stubborn channels: retransmission over any fair-loss medium.

The paper's channel model (Section 3.1) is fair-loss: a message sent
infinitely often is received infinitely often.  Protocols built directly
on such channels rely on their own periodic gossip to mask loss; the
*stubborn channel* abstraction (Aguilera, Chen & Toueg) instead makes a
point-to-point channel where every accepted message is retransmitted
until acknowledged — turning a fair-loss medium into a loss-tolerant one
without touching protocol code.

:class:`StubbornChannel` wraps any
:class:`~repro.runtime.api.TransportMedium` (the simulated
:class:`~repro.transport.network.Network` or the UDP
:class:`~repro.runtime.live_net.LiveNetwork`) and satisfies the same
contract, so the per-node :class:`~repro.transport.endpoint.Endpoint`
stacks on it unchanged.  Per node it installs a :class:`StubbornLink`
component holding the volatile sender state:

* outgoing messages are wrapped in a :class:`StubbornData` envelope with
  a per-peer sequence number and retransmitted with exponential backoff
  (seeded jitter keeps retries from synchronising) until a
  :class:`StubbornAck` arrives;
* at most ``window`` envelopes are in flight per peer; the rest queue in
  a volatile backlog (bounded by ``max_backlog``) and launch as acks
  free window slots — a backlog overflow drops the newest envelope and
  counts it, degrading to ordinary channel loss, which every protocol
  above already tolerates by design;
* while the local failure detector suspects a peer, retransmission to it
  drops to a slow poll (``suspend_interval``) instead of hammering a
  crashed process — and resumes full speed once the peer is
  rehabilitated (the fairness requirement: suspicion of a good process
  is eventually refuted, so nothing is retried only finitely often);
* a crash of the sending node loses all of this state, exactly as the
  crash-recovery model demands of volatile memory — stubbornness is a
  per-incarnation promise.

**Coalescing** (``StubbornConfig(coalesce=True)``): instead of one
``stub.data`` send plus one ``stub.ack`` reply *per message*, envelopes
launched towards a peer within one scheduling turn are flushed as a
single :class:`StubbornBatch` event, and acknowledgements owed to that
peer piggyback on the batch (or flush as one batched ack when no data is
going that way).  On the simulated runtime that turns N sends + N acks
into 2 events; on the live runtime the batch is one wire message, which
the v2 transport packs into one datagram.  Retransmissions stay
per-envelope (they are the rare path) and per-envelope ack/window
bookkeeping is unchanged, so the retransmission policy and its metrics
mean the same thing with coalescing on or off.

Delivery stays *at-least-once*: a lost ack causes a duplicate
transmission, which the protocols tolerate by design (the raw channels
already duplicate).  Failure-detector heartbeats bypass the layer
(``bypass_types``): the detector must observe the raw channel, and
retransmitted stale heartbeats would defeat its timing semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, FrozenSet, List, Optional, Tuple

import random

from repro.runtime import NodeComponent, Runtime, TimerHandle
from repro.runtime import wire
from repro.transport.message import WireMessage

__all__ = ["StubbornAck", "StubbornBatch", "StubbornChannel",
           "StubbornConfig", "StubbornData", "StubbornLink",
           "StubbornMetrics"]


class StubbornData(WireMessage):
    """Envelope carrying one inner message plus a per-peer sequence."""

    type = "stub.data"
    fields = ("seq", "inner_type", "inner_fields")

    def __init__(self, seq: int, inner_type: str,
                 inner_fields: Dict[str, Any]):
        self.seq = seq
        self.inner_type = inner_type
        self.inner_fields = inner_fields

    @classmethod
    def wrap(cls, seq: int, message: WireMessage) -> "StubbornData":
        envelope = cls(seq, message.type,
                       {name: getattr(message, name)
                        for name in message.fields})
        envelope._inner = message  # cache: no rebuild on the sim path
        return envelope

    def unwrap(self) -> WireMessage:
        """The inner message (rebuilt structurally after a wire decode)."""
        inner = getattr(self, "_inner", None)
        if inner is None:
            inner = wire.rebuild(self.inner_type, self.inner_fields)
            self._inner = inner
        return inner


class StubbornAck(WireMessage):
    """Acknowledgement of one :class:`StubbornData` sequence number."""

    type = "stub.ack"
    fields = ("seq",)

    def __init__(self, seq: int):
        self.seq = seq


class StubbornBatch(WireMessage):
    """Several envelopes and/or piggybacked acks, sent as one message.

    ``entries`` is a tuple of ``(seq, inner_type, inner_fields)``
    triples — the payload of the :class:`StubbornData` envelopes being
    batched — and ``acks`` a tuple of sequence numbers being
    acknowledged to the destination.  Either may be empty (a pure data
    batch or a pure ack batch).
    """

    type = "stub.batch"
    fields = ("entries", "acks")

    def __init__(self, entries: Tuple[Tuple[int, str, Dict[str, Any]], ...],
                 acks: Tuple[int, ...]):
        self.entries = entries
        self.acks = acks


class StubbornConfig:
    """Tunables of the retransmission policy.

    Parameters
    ----------
    window:
        Maximum unacknowledged envelopes in flight per peer; excess
        messages queue in a volatile backlog.
    max_backlog:
        Bound on that per-peer backlog.  When full, the *newest*
        envelope is dropped and counted (``backlog_overflows``) instead
        of queued — equivalent to a fair-loss channel drop, so safety is
        untouched and memory stays bounded.  ``None`` disables the bound
        (the historical unbounded behaviour).
    base_interval, max_interval:
        Exponential backoff bounds for the per-envelope retransmission
        timer (``base * 2^attempt``, capped at ``max``).
    jitter:
        Relative jitter applied to every backoff draw (from the seeded
        stream the channel was given), so retransmissions from many
        senders do not synchronise into bursts.
    suspend_interval:
        Retransmission period towards a peer the local failure detector
        currently suspects (a slow keep-alive poll, never zero — the
        channel must stay stubborn for fairness).
    bypass_types:
        Message type tags sent on the raw medium, unwrapped and
        unacknowledged.  Defaults to the failure-detector heartbeat.
    coalesce:
        Batch same-turn envelopes to a peer into one
        :class:`StubbornBatch` and piggyback acks on it (see module
        docstring).  Off by default: the per-message wire behaviour is
        the historical baseline and some tests pin it down.
    flush_delay:
        Seconds a coalescing flush may wait for more envelopes; ``0``
        (default) flushes on the next scheduling turn, adding no
        latency beyond the turn boundary.
    max_batch:
        Maximum entries per :class:`StubbornBatch`; larger flushes split
        into consecutive batches (each still one event/wire message).
    """

    def __init__(self, window: int = 32,
                 base_interval: float = 0.2,
                 max_interval: float = 2.0,
                 jitter: float = 0.1,
                 suspend_interval: float = 2.0,
                 bypass_types: Tuple[str, ...] = ("fd.alive",),
                 max_backlog: Optional[int] = 1024,
                 coalesce: bool = False,
                 flush_delay: float = 0.0,
                 max_batch: int = 64):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if max_backlog is not None and max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {max_backlog}")
        if base_interval <= 0 or max_interval < base_interval:
            raise ValueError(
                f"bad backoff bounds [{base_interval}, {max_interval}]")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if suspend_interval <= 0:
            raise ValueError("suspend_interval must be positive")
        if flush_delay < 0:
            raise ValueError(f"negative flush_delay {flush_delay}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window = window
        self.base_interval = base_interval
        self.max_interval = max_interval
        self.jitter = jitter
        self.suspend_interval = suspend_interval
        self.bypass_types: FrozenSet[str] = frozenset(bypass_types)
        self.max_backlog = max_backlog
        self.coalesce = coalesce
        self.flush_delay = flush_delay
        self.max_batch = max_batch


class StubbornMetrics:
    """Retransmission counters, per channel (shared across nodes)."""

    __slots__ = ("data_sent", "retransmissions", "acks_sent",
                 "acks_received", "queued", "suspended_skips",
                 "backlog_overflows", "backlog_high_water",
                 "batches_sent", "batched_entries", "piggybacked_acks")

    def __init__(self) -> None:
        self.data_sent = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.queued = 0
        self.suspended_skips = 0
        self.backlog_overflows = 0
        self.backlog_high_water = 0
        # Coalescing counters (zero with coalesce off).
        self.batches_sent = 0
        self.batched_entries = 0
        self.piggybacked_acks = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy, for metric collection."""
        return {
            "data_sent": self.data_sent,
            "retransmissions": self.retransmissions,
            "acks_sent": self.acks_sent,
            "acks_received": self.acks_received,
            "queued": self.queued,
            "suspended_skips": self.suspended_skips,
            "backlog_overflows": self.backlog_overflows,
            "backlog_high_water": self.backlog_high_water,
            "batches_sent": self.batches_sent,
            "batched_entries": self.batched_entries,
            "piggybacked_acks": self.piggybacked_acks,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StubbornMetrics(sent={self.data_sent}, "
                f"retx={self.retransmissions}, acks={self.acks_received})")


class _Flight:
    """One in-flight envelope with its retransmission timer."""

    __slots__ = ("envelope", "attempts", "timer")

    def __init__(self, envelope: StubbornData):
        self.envelope = envelope
        self.attempts = 0
        self.timer: Optional[TimerHandle] = None


class _PeerState:
    """Volatile per-destination sender state."""

    __slots__ = ("next_seq", "pending", "backlog")

    def __init__(self) -> None:
        self.next_seq = 0
        self.pending: Dict[int, _Flight] = {}
        self.backlog: Deque[StubbornData] = deque()


class StubbornLink(NodeComponent):
    """Per-node half of the stubborn channel (volatile sender state).

    Installed automatically when a node registers with a
    :class:`StubbornChannel`; protocol code never sees it.  The
    suspension hook is resolved structurally at start time: the first
    sibling component exposing ``is_suspected`` (the heartbeat detector)
    gates retransmission pacing.
    """

    name = "stubborn-link"

    def __init__(self, channel: "StubbornChannel"):
        super().__init__()
        self.channel = channel
        self._peers: Dict[int, _PeerState] = {}
        self._suspicion: Optional[Any] = None
        # Coalescing state (volatile, like everything else here):
        # envelopes awaiting their first transmission, acks owed per
        # peer, and the per-peer flush timer.
        self._launch_queue: Dict[int, List[StubbornData]] = {}
        self._acks_due: Dict[int, List[int]] = {}
        self._flush_timers: Dict[int, Any] = {}

    # -- lifecycle -----------------------------------------------------------

    def on_start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(StubbornData.type, self._on_data)
        node.register_handler(StubbornAck.type, self._on_ack)
        node.register_handler(StubbornBatch.type, self._on_batch)
        self._suspicion = None
        for component in node.components:
            if component is not self and hasattr(component, "is_suspected"):
                self._suspicion = component
                break

    def on_crash(self) -> None:
        """Sender state is volatile: stubbornness is per-incarnation."""
        for state in self._peers.values():
            for flight in state.pending.values():
                if flight.timer is not None:
                    flight.timer.cancel()
        self._peers = {}
        for timer in self._flush_timers.values():
            timer.cancel()
        self._flush_timers = {}
        self._launch_queue = {}
        self._acks_due = {}

    # -- sending -------------------------------------------------------------

    def send(self, dst: int, message: WireMessage) -> None:
        assert self.node is not None
        config = self.channel.config
        if dst == self.node.node_id or message.type in config.bypass_types:
            # Loopback is reliable by construction; bypass types must see
            # the raw channel.
            self.channel.inner.send(self.node.node_id, dst, message)
            return
        state = self._peers.setdefault(dst, _PeerState())
        seq = state.next_seq
        state.next_seq += 1
        envelope = StubbornData.wrap(seq, message)
        if len(state.pending) >= config.window:
            metrics = self.channel.metrics
            if config.max_backlog is not None \
                    and len(state.backlog) >= config.max_backlog:
                # Drop-newest: to the layer above this is ordinary
                # fair-loss channel behaviour, masked by gossip/retry.
                metrics.backlog_overflows += 1
                return
            state.backlog.append(envelope)
            metrics.queued += 1
            if len(state.backlog) > metrics.backlog_high_water:
                metrics.backlog_high_water = len(state.backlog)
            return
        self._launch(dst, state, envelope)

    def in_flight(self, dst: int) -> int:
        """Unacknowledged envelopes currently outstanding towards a peer."""
        state = self._peers.get(dst)
        return len(state.pending) if state is not None else 0

    def backlog(self, dst: int) -> int:
        """Messages waiting for window space towards a peer."""
        state = self._peers.get(dst)
        return len(state.backlog) if state is not None else 0

    # -- internals -----------------------------------------------------------

    def _launch(self, dst: int, state: _PeerState,
                envelope: StubbornData) -> None:
        flight = _Flight(envelope)
        state.pending[envelope.seq] = flight
        if self.channel.config.coalesce:
            self._launch_queue.setdefault(dst, []).append(envelope)
            self._schedule_flush(dst)
            return
        self._transmit(dst, flight, first=True)

    def _schedule_flush(self, dst: int) -> None:
        if dst in self._flush_timers:
            return
        assert self.node is not None
        delay = self.channel.config.flush_delay
        sim = self.node.sim
        if delay > 0:
            self._flush_timers[dst] = sim.schedule(delay, self._flush, dst)
        else:
            self._flush_timers[dst] = sim.call_soon(self._flush, dst)

    def _flush(self, dst: int) -> None:
        """Send everything owed to one peer as StubbornBatch message(s)."""
        timer = self._flush_timers.pop(dst, None)
        if timer is not None:
            timer.cancel()
        node = self.node
        if node is None or not node.up:
            return
        config = self.channel.config
        metrics = self.channel.metrics
        state = self._peers.get(dst)
        queued = self._launch_queue.pop(dst, [])
        entries: List[Tuple[int, str, Dict[str, Any]]] = []
        launched: List[_Flight] = []
        for envelope in queued:
            flight = None if state is None else state.pending.get(envelope.seq)
            if flight is None or flight.envelope is not envelope:
                continue  # acknowledged or reset before first transmission
            entries.append((envelope.seq, envelope.inner_type,
                            envelope.inner_fields))
            launched.append(flight)
        acks = self._acks_due.pop(dst, [])
        if not entries and not acks:
            return
        metrics.data_sent += len(entries)
        metrics.acks_sent += len(acks)
        first = 0
        while first < len(entries) or (first == 0 and acks):
            chunk = entries[first:first + config.max_batch]
            batch = StubbornBatch(tuple(chunk), tuple(acks) if first == 0
                                  else ())
            self.channel.inner.send(node.node_id, dst, batch)
            metrics.batches_sent += 1
            metrics.batched_entries += len(chunk)
            if first == 0 and chunk:
                metrics.piggybacked_acks += len(acks)
            first += config.max_batch
            if not chunk:
                break
        for flight in launched:
            delay = self._backoff(flight.attempts)
            flight.attempts += 1
            flight.timer = node.sim.schedule(delay, self._retry, dst, flight)

    def _transmit(self, dst: int, flight: _Flight,
                  first: bool = False) -> None:
        assert self.node is not None
        metrics = self.channel.metrics
        if first:
            metrics.data_sent += 1
        else:
            metrics.retransmissions += 1
        self.channel.inner.send(self.node.node_id, dst, flight.envelope)
        delay = self._backoff(flight.attempts)
        flight.attempts += 1
        flight.timer = self.node.sim.schedule(delay, self._retry, dst, flight)

    def _backoff(self, attempts: int) -> float:
        config = self.channel.config
        delay = min(config.max_interval,
                    config.base_interval * (2 ** attempts))
        if config.jitter:
            delay *= 1.0 + config.jitter * self.channel.rng.uniform(-1.0, 1.0)
        return delay

    def _retry(self, dst: int, flight: _Flight) -> None:
        node = self.node
        if node is None or not node.up:
            return
        state = self._peers.get(dst)
        if state is None or state.pending.get(flight.envelope.seq) is not flight:
            return  # acknowledged (or state reset) in the meantime
        if self._suspicion is not None and self._suspicion.is_suspected(dst):
            # Slow poll while the peer looks dead; a wrong suspicion is
            # eventually refuted, restoring full retransmission speed.
            self.channel.metrics.suspended_skips += 1
            flight.timer = node.sim.schedule(
                self.channel.config.suspend_interval, self._retry, dst,
                flight)
            return
        self._transmit(dst, flight)

    # -- receiving -----------------------------------------------------------

    def _acknowledge(self, sender: int, seq: int) -> None:
        """Ack one received envelope: immediately, or on the next flush."""
        assert self.node is not None
        if self.channel.config.coalesce:
            self._acks_due.setdefault(sender, []).append(seq)
            self._schedule_flush(sender)
            return
        self.channel.metrics.acks_sent += 1
        self.channel.inner.send(self.node.node_id, sender, StubbornAck(seq))

    def _on_data(self, envelope: StubbornData, sender: int) -> None:
        assert self.node is not None
        self._acknowledge(sender, envelope.seq)
        self.node.deliver(envelope.unwrap(), sender)

    def _on_batch(self, batch: StubbornBatch, sender: int) -> None:
        assert self.node is not None
        for seq in batch.acks:
            self._settle_ack(sender, seq)
        for seq, inner_type, inner_fields in batch.entries:
            self._acknowledge(sender, seq)
            self.node.deliver(wire.rebuild(inner_type, dict(inner_fields)),
                              sender)

    def _settle_ack(self, sender: int, seq: int) -> None:
        state = self._peers.get(sender)
        if state is None:
            return
        flight = state.pending.pop(seq, None)
        if flight is None:
            return  # duplicate ack
        self.channel.metrics.acks_received += 1
        if flight.timer is not None:
            flight.timer.cancel()
        while state.backlog and \
                len(state.pending) < self.channel.config.window:
            self._launch(sender, state, state.backlog.popleft())

    def _on_ack(self, ack: StubbornAck, sender: int) -> None:
        self._settle_ack(sender, ack.seq)


class StubbornChannel:
    """A :class:`~repro.runtime.api.TransportMedium` adding stubbornness.

    Parameters
    ----------
    runtime:
        The runtime timers are armed on (either implementation).
    inner:
        The fair-loss medium being wrapped.
    config:
        Retransmission policy; defaults to :class:`StubbornConfig`.
    rng:
        Seeded stream for backoff jitter (``runtime.rng("stubborn")``
        when omitted), keeping simulated runs a pure function of the
        seed.
    """

    def __init__(self, runtime: Runtime, inner: Any,
                 config: Optional[StubbornConfig] = None,
                 rng: Optional[random.Random] = None):
        self.runtime = runtime
        self.inner = inner
        self.config = config or StubbornConfig()
        self.rng = rng if rng is not None else runtime.rng("stubborn")
        self.metrics = StubbornMetrics()
        self._links: Dict[int, StubbornLink] = {}

    # -- TransportMedium contract -------------------------------------------

    def register(self, node: Any) -> None:
        """Register with the inner medium and stack the link component."""
        self.inner.register(node)
        link = StubbornLink(self)
        node.add_component(link)
        self._links[node.node_id] = link

    def node_ids(self) -> Tuple[int, ...]:
        return self.inner.node_ids()

    def send(self, src: int, dst: int, message: WireMessage) -> None:
        self._links[src].send(dst, message)

    def multisend(self, src: int, message: WireMessage,
                  targets: Optional[Tuple[int, ...]] = None) -> None:
        """The paper's ``multisend`` macro, each leg made stubborn."""
        known = self.inner.node_ids()
        for dst in (known if targets is None
                    else (t for t in targets if t in known)):
            self.send(src, dst, message)

    # -- introspection -------------------------------------------------------

    def link(self, node_id: int) -> StubbornLink:
        """The per-node link component (for tests and harnesses)."""
        return self._links[node_id]
