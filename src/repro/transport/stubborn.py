"""Stubborn channels: retransmission over any fair-loss medium.

The paper's channel model (Section 3.1) is fair-loss: a message sent
infinitely often is received infinitely often.  Protocols built directly
on such channels rely on their own periodic gossip to mask loss; the
*stubborn channel* abstraction (Aguilera, Chen & Toueg) instead makes a
point-to-point channel where every accepted message is retransmitted
until acknowledged — turning a fair-loss medium into a loss-tolerant one
without touching protocol code.

:class:`StubbornChannel` wraps any
:class:`~repro.runtime.api.TransportMedium` (the simulated
:class:`~repro.transport.network.Network` or the UDP
:class:`~repro.runtime.live_net.LiveNetwork`) and satisfies the same
contract, so the per-node :class:`~repro.transport.endpoint.Endpoint`
stacks on it unchanged.  Per node it installs a :class:`StubbornLink`
component holding the volatile sender state:

* outgoing messages are wrapped in a :class:`StubbornData` envelope with
  a per-peer sequence number and retransmitted with exponential backoff
  (seeded jitter keeps retries from synchronising) until a
  :class:`StubbornAck` arrives;
* at most ``window`` envelopes are in flight per peer; the rest queue in
  a volatile backlog (bounded by ``max_backlog``) and launch as acks
  free window slots — a backlog overflow drops the newest envelope and
  counts it, degrading to ordinary channel loss, which every protocol
  above already tolerates by design;
* while the local failure detector suspects a peer, retransmission to it
  drops to a slow poll (``suspend_interval``) instead of hammering a
  crashed process — and resumes full speed once the peer is
  rehabilitated (the fairness requirement: suspicion of a good process
  is eventually refuted, so nothing is retried only finitely often);
* a crash of the sending node loses all of this state, exactly as the
  crash-recovery model demands of volatile memory — stubbornness is a
  per-incarnation promise.

Delivery stays *at-least-once*: a lost ack causes a duplicate
transmission, which the protocols tolerate by design (the raw channels
already duplicate).  Failure-detector heartbeats bypass the layer
(``bypass_types``): the detector must observe the raw channel, and
retransmitted stale heartbeats would defeat its timing semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, FrozenSet, Optional, Tuple

import random

from repro.runtime import NodeComponent, Runtime, TimerHandle
from repro.runtime import wire
from repro.transport.message import WireMessage

__all__ = ["StubbornAck", "StubbornChannel", "StubbornConfig",
           "StubbornData", "StubbornLink", "StubbornMetrics"]


class StubbornData(WireMessage):
    """Envelope carrying one inner message plus a per-peer sequence."""

    type = "stub.data"
    fields = ("seq", "inner_type", "inner_fields")

    def __init__(self, seq: int, inner_type: str,
                 inner_fields: Dict[str, Any]):
        self.seq = seq
        self.inner_type = inner_type
        self.inner_fields = inner_fields

    @classmethod
    def wrap(cls, seq: int, message: WireMessage) -> "StubbornData":
        envelope = cls(seq, message.type,
                       {name: getattr(message, name)
                        for name in message.fields})
        envelope._inner = message  # cache: no rebuild on the sim path
        return envelope

    def unwrap(self) -> WireMessage:
        """The inner message (rebuilt structurally after a wire decode)."""
        inner = getattr(self, "_inner", None)
        if inner is None:
            inner = wire.rebuild(self.inner_type, self.inner_fields)
            self._inner = inner
        return inner


class StubbornAck(WireMessage):
    """Acknowledgement of one :class:`StubbornData` sequence number."""

    type = "stub.ack"
    fields = ("seq",)

    def __init__(self, seq: int):
        self.seq = seq


class StubbornConfig:
    """Tunables of the retransmission policy.

    Parameters
    ----------
    window:
        Maximum unacknowledged envelopes in flight per peer; excess
        messages queue in a volatile backlog.
    max_backlog:
        Bound on that per-peer backlog.  When full, the *newest*
        envelope is dropped and counted (``backlog_overflows``) instead
        of queued — equivalent to a fair-loss channel drop, so safety is
        untouched and memory stays bounded.  ``None`` disables the bound
        (the historical unbounded behaviour).
    base_interval, max_interval:
        Exponential backoff bounds for the per-envelope retransmission
        timer (``base * 2^attempt``, capped at ``max``).
    jitter:
        Relative jitter applied to every backoff draw (from the seeded
        stream the channel was given), so retransmissions from many
        senders do not synchronise into bursts.
    suspend_interval:
        Retransmission period towards a peer the local failure detector
        currently suspects (a slow keep-alive poll, never zero — the
        channel must stay stubborn for fairness).
    bypass_types:
        Message type tags sent on the raw medium, unwrapped and
        unacknowledged.  Defaults to the failure-detector heartbeat.
    """

    def __init__(self, window: int = 32,
                 base_interval: float = 0.2,
                 max_interval: float = 2.0,
                 jitter: float = 0.1,
                 suspend_interval: float = 2.0,
                 bypass_types: Tuple[str, ...] = ("fd.alive",),
                 max_backlog: Optional[int] = 1024):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if max_backlog is not None and max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {max_backlog}")
        if base_interval <= 0 or max_interval < base_interval:
            raise ValueError(
                f"bad backoff bounds [{base_interval}, {max_interval}]")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if suspend_interval <= 0:
            raise ValueError("suspend_interval must be positive")
        self.window = window
        self.base_interval = base_interval
        self.max_interval = max_interval
        self.jitter = jitter
        self.suspend_interval = suspend_interval
        self.bypass_types: FrozenSet[str] = frozenset(bypass_types)
        self.max_backlog = max_backlog


class StubbornMetrics:
    """Retransmission counters, per channel (shared across nodes)."""

    __slots__ = ("data_sent", "retransmissions", "acks_sent",
                 "acks_received", "queued", "suspended_skips",
                 "backlog_overflows", "backlog_high_water")

    def __init__(self) -> None:
        self.data_sent = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.queued = 0
        self.suspended_skips = 0
        self.backlog_overflows = 0
        self.backlog_high_water = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy, for metric collection."""
        return {
            "data_sent": self.data_sent,
            "retransmissions": self.retransmissions,
            "acks_sent": self.acks_sent,
            "acks_received": self.acks_received,
            "queued": self.queued,
            "suspended_skips": self.suspended_skips,
            "backlog_overflows": self.backlog_overflows,
            "backlog_high_water": self.backlog_high_water,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StubbornMetrics(sent={self.data_sent}, "
                f"retx={self.retransmissions}, acks={self.acks_received})")


class _Flight:
    """One in-flight envelope with its retransmission timer."""

    __slots__ = ("envelope", "attempts", "timer")

    def __init__(self, envelope: StubbornData):
        self.envelope = envelope
        self.attempts = 0
        self.timer: Optional[TimerHandle] = None


class _PeerState:
    """Volatile per-destination sender state."""

    __slots__ = ("next_seq", "pending", "backlog")

    def __init__(self) -> None:
        self.next_seq = 0
        self.pending: Dict[int, _Flight] = {}
        self.backlog: Deque[StubbornData] = deque()


class StubbornLink(NodeComponent):
    """Per-node half of the stubborn channel (volatile sender state).

    Installed automatically when a node registers with a
    :class:`StubbornChannel`; protocol code never sees it.  The
    suspension hook is resolved structurally at start time: the first
    sibling component exposing ``is_suspected`` (the heartbeat detector)
    gates retransmission pacing.
    """

    name = "stubborn-link"

    def __init__(self, channel: "StubbornChannel"):
        super().__init__()
        self.channel = channel
        self._peers: Dict[int, _PeerState] = {}
        self._suspicion: Optional[Any] = None

    # -- lifecycle -----------------------------------------------------------

    def on_start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(StubbornData.type, self._on_data)
        node.register_handler(StubbornAck.type, self._on_ack)
        self._suspicion = None
        for component in node.components:
            if component is not self and hasattr(component, "is_suspected"):
                self._suspicion = component
                break

    def on_crash(self) -> None:
        """Sender state is volatile: stubbornness is per-incarnation."""
        for state in self._peers.values():
            for flight in state.pending.values():
                if flight.timer is not None:
                    flight.timer.cancel()
        self._peers = {}

    # -- sending -------------------------------------------------------------

    def send(self, dst: int, message: WireMessage) -> None:
        assert self.node is not None
        config = self.channel.config
        if dst == self.node.node_id or message.type in config.bypass_types:
            # Loopback is reliable by construction; bypass types must see
            # the raw channel.
            self.channel.inner.send(self.node.node_id, dst, message)
            return
        state = self._peers.setdefault(dst, _PeerState())
        seq = state.next_seq
        state.next_seq += 1
        envelope = StubbornData.wrap(seq, message)
        if len(state.pending) >= config.window:
            metrics = self.channel.metrics
            if config.max_backlog is not None \
                    and len(state.backlog) >= config.max_backlog:
                # Drop-newest: to the layer above this is ordinary
                # fair-loss channel behaviour, masked by gossip/retry.
                metrics.backlog_overflows += 1
                return
            state.backlog.append(envelope)
            metrics.queued += 1
            if len(state.backlog) > metrics.backlog_high_water:
                metrics.backlog_high_water = len(state.backlog)
            return
        self._launch(dst, state, envelope)

    def in_flight(self, dst: int) -> int:
        """Unacknowledged envelopes currently outstanding towards a peer."""
        state = self._peers.get(dst)
        return len(state.pending) if state is not None else 0

    def backlog(self, dst: int) -> int:
        """Messages waiting for window space towards a peer."""
        state = self._peers.get(dst)
        return len(state.backlog) if state is not None else 0

    # -- internals -----------------------------------------------------------

    def _launch(self, dst: int, state: _PeerState,
                envelope: StubbornData) -> None:
        flight = _Flight(envelope)
        state.pending[envelope.seq] = flight
        self._transmit(dst, flight, first=True)

    def _transmit(self, dst: int, flight: _Flight,
                  first: bool = False) -> None:
        assert self.node is not None
        metrics = self.channel.metrics
        if first:
            metrics.data_sent += 1
        else:
            metrics.retransmissions += 1
        self.channel.inner.send(self.node.node_id, dst, flight.envelope)
        delay = self._backoff(flight.attempts)
        flight.attempts += 1
        flight.timer = self.node.sim.schedule(delay, self._retry, dst, flight)

    def _backoff(self, attempts: int) -> float:
        config = self.channel.config
        delay = min(config.max_interval,
                    config.base_interval * (2 ** attempts))
        if config.jitter:
            delay *= 1.0 + config.jitter * self.channel.rng.uniform(-1.0, 1.0)
        return delay

    def _retry(self, dst: int, flight: _Flight) -> None:
        node = self.node
        if node is None or not node.up:
            return
        state = self._peers.get(dst)
        if state is None or state.pending.get(flight.envelope.seq) is not flight:
            return  # acknowledged (or state reset) in the meantime
        if self._suspicion is not None and self._suspicion.is_suspected(dst):
            # Slow poll while the peer looks dead; a wrong suspicion is
            # eventually refuted, restoring full retransmission speed.
            self.channel.metrics.suspended_skips += 1
            flight.timer = node.sim.schedule(
                self.channel.config.suspend_interval, self._retry, dst,
                flight)
            return
        self._transmit(dst, flight)

    # -- receiving -----------------------------------------------------------

    def _on_data(self, envelope: StubbornData, sender: int) -> None:
        assert self.node is not None
        self.channel.metrics.acks_sent += 1
        self.channel.inner.send(self.node.node_id, sender,
                                StubbornAck(envelope.seq))
        self.node.deliver(envelope.unwrap(), sender)

    def _on_ack(self, ack: StubbornAck, sender: int) -> None:
        state = self._peers.get(sender)
        if state is None:
            return
        flight = state.pending.pop(ack.seq, None)
        if flight is None:
            return  # duplicate ack
        self.channel.metrics.acks_received += 1
        if flight.timer is not None:
            flight.timer.cancel()
        while state.backlog and \
                len(state.pending) < self.channel.config.window:
            self._launch(sender, state, state.backlog.popleft())


class StubbornChannel:
    """A :class:`~repro.runtime.api.TransportMedium` adding stubbornness.

    Parameters
    ----------
    runtime:
        The runtime timers are armed on (either implementation).
    inner:
        The fair-loss medium being wrapped.
    config:
        Retransmission policy; defaults to :class:`StubbornConfig`.
    rng:
        Seeded stream for backoff jitter (``runtime.rng("stubborn")``
        when omitted), keeping simulated runs a pure function of the
        seed.
    """

    def __init__(self, runtime: Runtime, inner: Any,
                 config: Optional[StubbornConfig] = None,
                 rng: Optional[random.Random] = None):
        self.runtime = runtime
        self.inner = inner
        self.config = config or StubbornConfig()
        self.rng = rng if rng is not None else runtime.rng("stubborn")
        self.metrics = StubbornMetrics()
        self._links: Dict[int, StubbornLink] = {}

    # -- TransportMedium contract -------------------------------------------

    def register(self, node: Any) -> None:
        """Register with the inner medium and stack the link component."""
        self.inner.register(node)
        link = StubbornLink(self)
        node.add_component(link)
        self._links[node.node_id] = link

    def node_ids(self) -> Tuple[int, ...]:
        return self.inner.node_ids()

    def send(self, src: int, dst: int, message: WireMessage) -> None:
        self._links[src].send(dst, message)

    def multisend(self, src: int, message: WireMessage,
                  targets: Optional[Tuple[int, ...]] = None) -> None:
        """The paper's ``multisend`` macro, each leg made stubborn."""
        known = self.inner.node_ids()
        for dst in (known if targets is None
                    else (t for t in targets if t in known)):
            self.send(src, dst, message)

    # -- introspection -------------------------------------------------------

    def link(self, node_id: int) -> StubbornLink:
        """The per-node link component (for tests and harnesses)."""
        return self._links[node_id]
