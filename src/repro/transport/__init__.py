"""Fair-lossy transport (Section 3.1): network medium and node endpoints."""

from repro.transport.endpoint import Endpoint, ReceiveQueue
from repro.transport.message import WireMessage
from repro.transport.network import Network, NetworkConfig, NetworkMetrics
from repro.transport.stubborn import (StubbornChannel, StubbornConfig,
                                      StubbornMetrics)

__all__ = [
    "Endpoint",
    "Network",
    "NetworkConfig",
    "NetworkMetrics",
    "ReceiveQueue",
    "StubbornChannel",
    "StubbornConfig",
    "StubbornMetrics",
    "WireMessage",
]
