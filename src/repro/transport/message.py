"""Base class for wire messages.

A wire message is anything the transport carries between nodes.  The
transport only requires two things of a message: a ``type`` tag used for
handler dispatch on the receiving node, and an ``estimated_size`` used for
byte accounting.  Concrete protocol messages subclass :class:`WireMessage`
and declare their payload fields.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.sizing import estimate_size

__all__ = ["WireMessage"]


class WireMessage:
    """Immutable-by-convention wire message with a dispatch tag.

    Subclasses set the class attribute ``type`` and store payload fields
    as instance attributes listed in ``fields`` (used for size accounting
    and ``repr``).
    """

    type = "message"
    fields: Tuple[str, ...] = ()

    # Bumped on every subclass definition; the wire codec's type-tag
    # registry is valid exactly while this stands still, so unknown-tag
    # lookups can fail in O(1) instead of re-walking the class tree.
    _registry_generation = 0

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        WireMessage._registry_generation += 1

    def estimated_size(self) -> int:
        """Estimated serialised size: tag plus payload fields."""
        total = 2 + len(self.type)
        for name in self.fields:
            total += estimate_size(getattr(self, name))
        return total

    def payload(self) -> Tuple[Any, ...]:
        """The payload fields as a tuple (handy for tests)."""
        return tuple(getattr(self, name) for name in self.fields)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.fields)
        return f"{type(self).__name__}({parts})"
