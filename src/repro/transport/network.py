"""Simulated network: unreliable, fair, asynchronous channels.

Models the transport assumptions of Section 3.1:

* a bidirectional channel between every pair of processes;
* channels are **not** FIFO (each message draws an independent delay);
* channels may **lose** messages (probabilistically) and **duplicate**
  them;
* transfer delays are finite but arbitrary (bounded random draws);
* channels are **fair**: a message sent infinitely often is received
  infinitely often — guaranteed here because per-message loss is an
  independent Bernoulli draw with probability < 1 (outside explicit
  partitions, which scenarios must eventually heal for fairness to hold).

Messages addressed to a node that is *down* at delivery time are lost,
exactly as in the paper's model (Section 2.1).  Self-addressed messages
(``multisend`` includes the sender) are delivered reliably with zero
delay: a process's loopback does not cross the network.
"""

from __future__ import annotations

import random  # typing only: the Network *receives* a seeded stream
from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.runtime import Node, Runtime
from repro.sizing import estimate_size
from repro.transport.message import WireMessage

__all__ = ["NetworkConfig", "Network", "NetworkMetrics"]


class NetworkConfig:
    """Tunables of the simulated network.

    Parameters
    ----------
    min_delay, max_delay:
        Bounds of the uniform per-message delay draw (virtual time).
    loss_rate:
        Independent probability that a message is dropped in transit.
        Must be < 1 to preserve the fair-loss property.
    duplicate_rate:
        Probability that a delivered message is delivered twice (the
        duplicate draws its own delay).
    delay_fn:
        Optional override: ``delay_fn(rng) -> float`` replaces the uniform
        draw (e.g. heavy-tailed delays).
    """

    def __init__(self, min_delay: float = 0.01, max_delay: float = 0.1,
                 loss_rate: float = 0.0, duplicate_rate: float = 0.0,
                 delay_fn: Optional[Callable[[random.Random], float]] = None):
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(
                f"loss_rate {loss_rate} breaks the fair-loss assumption")
        if not 0.0 <= duplicate_rate <= 1.0:
            raise SimulationError(f"bad duplicate_rate {duplicate_rate}")
        if min_delay < 0 or max_delay < min_delay:
            raise SimulationError(
                f"bad delay bounds [{min_delay}, {max_delay}]")
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.loss_rate = loss_rate
        self.duplicate_rate = duplicate_rate
        self.delay_fn = delay_fn


class NetworkMetrics:
    """Traffic counters, per run."""

    __slots__ = ("sent", "delivered", "lost", "dropped_down", "duplicated",
                 "bytes_sent", "by_type")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.dropped_down = 0
        self.duplicated = 0
        self.bytes_sent = 0
        self.by_type: Dict[str, int] = {}

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy, for metric collection."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "dropped_down": self.dropped_down,
            "duplicated": self.duplicated,
            "bytes_sent": self.bytes_sent,
        }


class Network:
    """The shared medium connecting every node of a simulation."""

    def __init__(self, sim: Runtime, rng: random.Random,
                 config: Optional[NetworkConfig] = None):
        self.sim = sim
        self.rng = rng
        self.config = config or NetworkConfig()
        self.nodes: Dict[int, Node] = {}
        self.metrics = NetworkMetrics()
        self._partitions: Set[FrozenSet[int]] = set()
        # Gray failure: constant extra delay on every message touching a
        # limping node (either direction).  Added on top of the drawn
        # delay with NO extra RNG draws, so an empty map leaves the
        # event order of every existing seed untouched.
        self._node_delays: Dict[int, float] = {}

    # -- topology -----------------------------------------------------------

    def register(self, node: Node) -> None:
        """Attach a node to the medium."""
        if node.node_id in self.nodes:
            raise SimulationError(f"node {node.node_id} already registered")
        self.nodes[node.node_id] = node

    def node_ids(self) -> Tuple[int, ...]:
        """All registered node ids, sorted."""
        return tuple(sorted(self.nodes))

    # -- partitions -------------------------------------------------------------

    def partition(self, a: int, b: int) -> None:
        """Sever the link between ``a`` and ``b`` (both directions)."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: int, b: int) -> None:
        """Restore the link between ``a`` and ``b``."""
        self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        """Restore every severed link."""
        self._partitions.clear()

    def is_partitioned(self, a: int, b: int) -> bool:
        """True if the a—b link is currently severed."""
        return frozenset((a, b)) in self._partitions

    # -- gray failures (limping nodes) -----------------------------------------

    def set_node_delay(self, node_id: int, extra: float) -> None:
        """Make ``node_id`` limp: add ``extra`` to every delay draw on
        messages it sends or receives (slow NIC / overloaded host)."""
        if extra < 0:
            raise SimulationError(f"negative limp delay {extra}")
        self._node_delays[node_id] = extra

    def clear_node_delay(self, node_id: int) -> None:
        """Restore normal link latency for ``node_id``."""
        self._node_delays.pop(node_id, None)

    def clear_node_delays(self) -> None:
        """Restore normal link latency everywhere (chaos settle phase)."""
        self._node_delays.clear()

    # -- sending ------------------------------------------------------------------

    def send(self, src: int, dst: int, message: WireMessage) -> None:
        """Inject one message from ``src`` to ``dst``.

        Loss, duplication and delay are decided at send time with
        independent draws; a message addressed to a down node is silently
        dropped at delivery time.
        """
        if dst not in self.nodes:
            raise SimulationError(f"unknown destination {dst}")
        self.metrics.sent += 1
        self.metrics.bytes_sent += estimate_size(message)
        self.metrics.by_type[message.type] = \
            self.metrics.by_type.get(message.type, 0) + 1

        if src == dst:
            # Loopback: reliable, immediate (within the same virtual time).
            self.sim.call_soon(self._deliver, src, dst, message)
            return
        if self.is_partitioned(src, dst):
            self.metrics.lost += 1
            return
        if self.config.loss_rate and self.rng.random() < self.config.loss_rate:
            self.metrics.lost += 1
            return
        extra = self._node_delays.get(src, 0.0) + self._node_delays.get(dst, 0.0)
        self.sim.schedule(self._draw_delay() + extra, self._deliver,
                          src, dst, message)
        if (self.config.duplicate_rate
                and self.rng.random() < self.config.duplicate_rate):
            self.metrics.duplicated += 1
            self.sim.schedule(self._draw_delay() + extra, self._deliver,
                              src, dst, message)

    def multisend(self, src: int, message: WireMessage,
                  targets: Optional[Tuple[int, ...]] = None) -> None:
        """The paper's ``multisend`` macro: send to every process,
        including the sender itself (Section 3.1, footnote 2).

        With ``targets`` (a membership view's member set) the send is
        restricted to those destinations; unknown ids are skipped —
        a view may momentarily name a node whose stack is still being
        built.
        """
        if targets is None:
            for dst in self.nodes:
                self.send(src, dst, message)
            return
        for dst in targets:
            if dst in self.nodes:
                self.send(src, dst, message)

    # -- internals --------------------------------------------------------------------

    def _draw_delay(self) -> float:
        if self.config.delay_fn is not None:
            delay = self.config.delay_fn(self.rng)
            if delay < 0:
                raise SimulationError("delay_fn returned a negative delay")
            return delay
        return self.rng.uniform(self.config.min_delay, self.config.max_delay)

    def _deliver(self, src: int, dst: int, message: WireMessage) -> None:
        node = self.nodes[dst]
        if node.deliver(message, src):
            self.metrics.delivered += 1
        else:
            self.metrics.dropped_down += 1
