"""Per-node transport endpoint (Section 3.1 interface).

The :class:`Endpoint` component gives protocol layers on a node the
paper's transport primitives — ``send``, ``multisend`` and handler-based
reception — while hiding the shared :class:`~repro.transport.network.Network`.

Reception is handler-based rather than a blocking ``receive`` loop: each
protocol layer registers a handler per message type, and handlers run
atomically (the paper's atomic reception statements).  A blocking
``receive`` can be layered on top with :meth:`Endpoint.subscribe_queue`,
which is what the transport unit tests exercise.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, Optional, Tuple

from repro.errors import ProcessDown
from repro.runtime import NodeComponent, Signal, TransportMedium
from repro.transport.message import WireMessage

__all__ = ["DEFAULT_QUEUE_CAPACITY", "Endpoint", "ReceiveQueue"]

#: Input buffers are bounded by default: a consumer that stalls (or a
#: sender that floods) must translate into visible drops, not unbounded
#: memory growth on the receive path.
DEFAULT_QUEUE_CAPACITY = 1024


class ReceiveQueue:
    """A blocking input buffer: the paper's ``receive`` primitive.

    Messages deposited while the owning node is up accumulate in volatile
    memory; :meth:`receive` blocks (cooperatively) until one is available.
    The buffer is volatile — the endpoint drops it on crash — and bounded:
    once ``capacity`` messages are pending, further deposits are dropped
    (counted in :attr:`overflows`).  Dropping is sound because the
    transport is fair-lossy anyway; stubborn retransmission recovers the
    message.  Pass ``capacity=None`` for an unbounded buffer.
    """

    def __init__(self, endpoint: "Endpoint",
                 capacity: Optional[int] = DEFAULT_QUEUE_CAPACITY):
        self._endpoint = endpoint
        self._capacity = capacity
        self._items: Deque[Tuple[WireMessage, int]] = deque()
        self._signal: Signal = endpoint.node.sim.signal("receive-queue")
        #: Messages dropped because the buffer was full.
        self.overflows = 0

    def deposit(self, message: WireMessage, sender: int) -> None:
        """Called by the endpoint on message arrival."""
        if (self._capacity is not None
                and len(self._items) >= self._capacity):
            self.overflows += 1
            return
        self._items.append((message, sender))
        self._signal.notify()

    def receive(self) -> Generator[Any, Any, Tuple[WireMessage, int]]:
        """Cooperative-blocking receive; yields until a message arrives."""
        while not self._items:
            yield self._signal.wait()
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)


class Endpoint(NodeComponent):
    """The node-side face of the transport."""

    name = "endpoint"

    def __init__(self, network: TransportMedium):
        super().__init__()
        self.network = network
        self._queues: dict = {}
        # Optional membership oracle (a ViewManager): when set, peers()
        # and multisend() are scoped to the installed view instead of
        # every node the medium has ever seen.
        self.view_source: Any = None

    # -- sending ----------------------------------------------------------

    def send(self, dst: int, message: WireMessage) -> None:
        """Unreliable point-to-point send (no-op when the node is down)."""
        if self.node is None or not self.node.up:
            raise ProcessDown("cannot send from a down node")
        self.network.send(self.node.node_id, dst, message)

    def multisend(self, message: WireMessage) -> None:
        """Unreliable broadcast to all processes, including self."""
        if self.node is None or not self.node.up:
            raise ProcessDown("cannot multisend from a down node")
        if self.view_source is None:
            self.network.multisend(self.node.node_id, message)
        else:
            self.network.multisend(
                self.node.node_id, message,
                self.view_source.multisend_targets(self.node.node_id))

    # -- receiving ---------------------------------------------------------

    def register(self, msg_type: str,
                 handler: Callable[[Any, int], None]) -> None:
        """Route messages of ``msg_type`` to ``handler(message, sender)``.

        Registration is volatile: it disappears at a crash and must be
        redone in the component's ``on_start`` (which re-runs on recovery).
        """
        assert self.node is not None
        self.node.register_handler(msg_type, handler)

    def subscribe_queue(self, msg_type: str,
                        capacity: Optional[int] = DEFAULT_QUEUE_CAPACITY
                        ) -> ReceiveQueue:
        """Blocking-receive alternative to handlers for ``msg_type``."""
        assert self.node is not None
        queue = ReceiveQueue(self, capacity=capacity)
        self._queues[msg_type] = queue
        self.node.register_handler(msg_type, queue.deposit)
        return queue

    # -- lifecycle ------------------------------------------------------------

    def on_crash(self) -> None:
        """Input buffers are volatile memory: lost on crash."""
        self._queues.clear()

    @property
    def node_id(self) -> int:
        assert self.node is not None
        return self.node.node_id

    def peers(self) -> Tuple[int, ...]:
        """The ids this node treats as the group.

        Without a view source this is every node on the medium (the
        paper's static member set); with one it is the installed view's
        member set — quorum math, failure detection and gossip all flow
        through here, so installing a view re-parameterises the whole
        stack at once.
        """
        if self.view_source is not None:
            return self.view_source.members()
        return self.network.node_ids()
