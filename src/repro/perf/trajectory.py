"""BENCH documents: the machine-readable perf trajectory.

One ``BENCH_<label>.json`` per PR at the repo root, produced by
``benchmarks/perf_trajectory.py``.  The document separates what must
never drift (``determinism``) from what merely should not regress
(``wall``); :func:`load_documents` collects every committed point so the
trajectory can be printed as one table.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.harness.report import format_table
from repro.perf.harness import CellResult

__all__ = ["build_document", "write_document", "load_documents",
           "baseline_determinism", "format_matrix_table",
           "format_comparison_table", "format_wire_comparison_table",
           "format_trajectory_table", "summarize_drift"]

SCHEMA = 1


def build_document(label: str, results: Iterable[CellResult],
                   storage_comparison: Optional[Dict[str, Any]] = None,
                   wire_comparisons: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Assemble one trajectory point.

    ``wire_comparisons`` maps comparison name (``"live"``, ``"codec"``,
    ``"group_commit"``) to the dict the matching ``measure_*`` harness
    returned; recorded under one ``wire_comparisons`` key so BENCH
    documents from before the binary wire path keep their exact shape.
    """
    document: Dict[str, Any] = {
        "schema": SCHEMA,
        "label": label,
        # Informational only; drift checks never read these.
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
        "python": platform.python_version(),
        "matrix": {result.cell.name: result.to_plain()
                   for result in results},
    }
    if storage_comparison is not None:
        document["storage_comparison"] = storage_comparison
    if wire_comparisons:
        document["wire_comparisons"] = wire_comparisons
    return document


def write_document(document: Dict[str, Any], path: str) -> None:
    """Write a BENCH document (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_documents(root: str = ".") -> List[Dict[str, Any]]:
    """Every ``BENCH_*.json`` under ``root``, sorted by label."""
    documents = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        with open(path, "r", encoding="utf-8") as handle:
            documents.append(json.load(handle))
    documents.sort(key=lambda doc: doc.get("label", ""))
    return documents


def baseline_determinism(document: Dict[str, Any]) -> Dict[str, Dict[str, int]]:
    """Cell name -> determinism dict, as :func:`compare_determinism` wants."""
    return {name: entry["determinism"]
            for name, entry in document.get("matrix", {}).items()}


def format_matrix_table(results: Iterable[CellResult]) -> str:
    rows = []
    for result in results:
        det, wall = result.determinism, result.wall
        rows.append([
            result.cell.name,
            det["events_processed"], det["log_ops"], det["bytes_logged"],
            f"{det['messages_delivered']}/{det['messages_broadcast']}",
            wall["wall_seconds"], wall["deliveries_per_sec"],
            wall["events_per_sec"], wall["peak_rss_kb"],
        ])
    return format_table(
        "Perf matrix (deterministic | wall-clock)",
        ["cell", "events", "log ops", "bytes", "delivered",
         "wall s", "deliv/s", "events/s", "rss KiB"],
        rows,
        note="events/log ops/bytes/delivered are seed-deterministic and "
             "must be bit-identical across runs; the rest is hardware")


def format_comparison_table(comparison: Dict[str, Any]) -> str:
    rows = []
    for mode, key in (("deepcopy (before)", "before"),
                      ("snapshot (after)", "after")):
        wall = comparison[key]
        rows.append([mode, wall["wall_seconds"], wall["deliveries_per_sec"],
                     wall["events_per_sec"]])
    speedup = comparison["speedup_deliveries_per_sec"]
    return format_table(
        "MemoryStorage isolation: E6 batching workload, before/after",
        ["mode", "wall s", "deliveries/s", "events/s"],
        rows,
        note=f"speedup: {speedup}x deliveries/sec (identical determinism "
             f"metrics in both modes)")


def format_wire_comparison_table(comparisons: Dict[str, Any]) -> str:
    """One table over the binary-wire-path comparisons (PR10): the live
    end-to-end burst, the codec pipeline, and storage group commit."""
    rows = []
    live = comparisons.get("live")
    if live is not None:
        rows.append([
            "live burst (v1 -> v2+coalesce)",
            f"{live['speedup_deliveries_per_sec']}x deliv/s",
            f"{live['datagram_ratio']}x fewer datagrams",
            f"{live['bytes_ratio']}x fewer bytes",
        ])
    codec = comparisons.get("codec")
    if codec is not None:
        rows.append([
            "codec pipeline (encode+decode)",
            f"{codec['speedup_messages_per_sec']}x msg/s",
            f"{codec['before']['bytes_per_message']} -> "
            f"{codec['after']['bytes_per_message']} B/msg",
            f"{codec['bytes_ratio']}x fewer bytes",
        ])
    commit = comparisons.get("group_commit")
    if commit is not None:
        rows.append([
            "storage group commit",
            f"{commit['speedup_records_per_sec']}x records/s",
            f"{commit['before']['records_per_sec']} -> "
            f"{commit['after']['records_per_sec']} rec/s",
            f"batch={commit['workload']['batch']}",
        ])
    return format_table(
        "Binary wire path: before/after",
        ["comparison", "speedup", "detail", "volume"],
        rows,
        note="wall-clock speedups are hardware; the datagram/byte ratios "
             "are workload-deterministic")


def format_trajectory_table(documents: List[Dict[str, Any]],
                            cell_name: str) -> str:
    """One cell's metrics across every committed BENCH point."""
    rows = []
    for document in documents:
        entry = document.get("matrix", {}).get(cell_name)
        if entry is None:
            continue
        det, wall = entry["determinism"], entry["wall"]
        rows.append([
            document.get("label", "?"), document.get("recorded_at", "?"),
            det["events_processed"], det["log_ops"], det["bytes_logged"],
            wall["deliveries_per_sec"], wall["events_per_sec"],
        ])
    return format_table(
        f"Trajectory of cell {cell_name}",
        ["point", "date", "events", "log ops", "bytes",
         "deliv/s", "events/s"],
        rows,
        note="determinism columns may only change when a PR deliberately "
             "changes protocol behaviour (and says so)")


def summarize_drift(drifts: List[str]) -> Tuple[bool, str]:
    """(ok, printable verdict) for a drift-check result."""
    if not drifts:
        return True, "determinism check: OK (bit-identical to baseline)"
    lines = ["determinism check: DRIFT DETECTED"]
    lines.extend(f"  - {drift}" for drift in drifts)
    return False, "\n".join(lines)
