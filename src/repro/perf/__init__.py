"""Performance-trajectory harness (docs/PERFORMANCE.md).

The ROADMAP's "as fast as the hardware allows" axis needs evidence, not
vibes: this package runs a fixed scenario matrix under two kinds of
metrics —

* **determinism metrics** (events processed, log operations, bytes
  logged, messages delivered): pure functions of the seeds, required to
  be bit-identical across runs and therefore comparable across PRs and
  machines;
* **wall-clock metrics** (deliveries/sec, sim events/sec, peak RSS):
  machine-dependent, tracked run over run so a hot-path regression shows
  up as a trajectory kink rather than an anecdote.

Every PR that touches a hot path appends a ``BENCH_<label>.json`` at the
repo root via ``benchmarks/perf_trajectory.py``; CI's ``perf-smoke`` job
re-runs the smallest cell and fails on determinism drift against the
committed baseline.
"""

from repro.perf.harness import (CellResult, compare_determinism,
                                measure_storage_comparison, run_cell,
                                run_matrix)
from repro.perf.matrix import (PerfCell, default_matrix, smallest_cell,
                               storage_comparison_cell)
from repro.perf.trajectory import (build_document, format_comparison_table,
                                   format_matrix_table,
                                   format_trajectory_table, load_documents,
                                   write_document)

__all__ = [
    "CellResult",
    "PerfCell",
    "build_document",
    "compare_determinism",
    "default_matrix",
    "format_comparison_table",
    "format_matrix_table",
    "format_trajectory_table",
    "load_documents",
    "measure_storage_comparison",
    "run_cell",
    "run_matrix",
    "smallest_cell",
    "storage_comparison_cell",
    "write_document",
]
