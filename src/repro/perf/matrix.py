"""The fixed scenario matrix the perf trajectory is measured over.

The matrix spans the axes that dominate hot-path cost: protocol (basic
vs. alternative), cluster size (3 vs. 5), link loss (lossless vs. 20%)
and a seeded chaos schedule (quiet vs. crash/recovery storms).  The
cells are *frozen*: changing a cell's parameters invalidates every
``BENCH_*.json`` point recorded before the change, so new workloads get
new cells instead of edits (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.alternative import AlternativeConfig
from repro.flow.controller import FlowConfig
from repro.harness.cluster import ClusterConfig
from repro.harness.scenario import Scenario
from repro.sim.faults import RandomFaults
from repro.storage.memory import MemoryStorage
from repro.transport.network import NetworkConfig
from repro.workloads.generators import PoissonWorkload

__all__ = ["PerfCell", "default_matrix", "overload_cell", "scaled_cells",
           "smallest_cell", "storage_comparison_cell"]

# One fixed seed root for the whole matrix; per-cell seeds derive from
# the cell's position so cells stay independent but reproducible.
_SEED_ROOT = 1009


class PerfCell:
    """One frozen point of the scenario matrix."""

    def __init__(self, protocol: str, n: int, loss_rate: float,
                 chaos: bool, seed: int,
                 rate_per_node: float = 6.0,
                 workload_duration: float = 8.0,
                 duration: float = 12.0,
                 settle_limit: float = 240.0,
                 flow: Optional[FlowConfig] = None,
                 suffix: str = ""):
        self.protocol = protocol
        self.n = n
        self.loss_rate = loss_rate
        self.chaos = chaos
        self.seed = seed
        self.rate_per_node = rate_per_node
        self.workload_duration = workload_duration
        self.duration = duration
        self.settle_limit = settle_limit
        # Admission control; None on every legacy cell (the 16 frozen
        # cells predate the flow layer and must stay byte-identical).
        self.flow = flow
        # Name disambiguator for cells that vary an axis the name does
        # not encode (e.g. the 10x-rate cell); empty on legacy cells.
        self.suffix = suffix

    @property
    def name(self) -> str:
        loss = f"l{int(self.loss_rate * 100):02d}"
        mood = "overload" if self.flow is not None \
            else ("chaos" if self.chaos else "quiet")
        return f"{self.protocol}-n{self.n}-{loss}-{mood}{self.suffix}"

    def params(self) -> Dict[str, object]:
        """The frozen cell definition, as recorded in BENCH files."""
        params: Dict[str, object] = {
            "protocol": self.protocol,
            "n": self.n,
            "loss_rate": self.loss_rate,
            "chaos": self.chaos,
            "seed": self.seed,
            "rate_per_node": self.rate_per_node,
            "workload_duration": self.workload_duration,
            "duration": self.duration,
        }
        # Added only when set: legacy cell records keep their exact shape.
        if self.flow is not None:
            params["flow"] = {
                "rate": self.flow.rate,
                "burst": self.flow.burst,
                "max_unordered": self.flow.max_unordered,
            }
        return params

    def scenario(self, isolation: str = "snapshot") -> Scenario:
        """Build the cell's scenario (``isolation`` picks the
        MemoryStorage copy strategy, for before/after comparisons)."""
        alt = None
        if self.protocol == "alternative":
            alt = AlternativeConfig(checkpoint_interval=2.0)
        faults: Optional[RandomFaults] = None
        if self.chaos:
            # Stabilize well before the settle window so every node is a
            # good process and the run can terminate.
            faults = RandomFaults(mttf=6.0, mttr=1.0,
                                  stabilize_at=self.duration,
                                  seed=self.seed + 17)
        return Scenario(
            cluster=ClusterConfig(
                n=self.n, seed=self.seed, protocol=self.protocol,
                network=NetworkConfig(loss_rate=self.loss_rate),
                alt=alt,
                storage_factory=lambda node_id: MemoryStorage(
                    isolation=isolation),
                flow=self.flow),
            workload=PoissonWorkload(self.rate_per_node,
                                     self.workload_duration,
                                     seed=self.seed),
            faults=faults,
            duration=self.duration,
            settle_limit=self.settle_limit)


def default_matrix() -> List[PerfCell]:
    """The full frozen matrix: 2 protocols × {3,5} nodes × {0%,20%} loss
    × {quiet, chaos} = 16 cells."""
    cells: List[PerfCell] = []
    index = 0
    for protocol in ("basic", "alternative"):
        for n in (3, 5):
            for loss_rate in (0.0, 0.20):
                for chaos in (False, True):
                    cells.append(PerfCell(protocol, n, loss_rate, chaos,
                                          seed=_SEED_ROOT + index))
                    index += 1
    return cells


def smallest_cell() -> PerfCell:
    """The cheapest cell; CI's perf-smoke drift check runs only this."""
    return default_matrix()[0]


def overload_cell() -> PerfCell:
    """The admission-control cell: offered load well above the bucket
    rate, so the run measures the throttled path (gating, rejections,
    workload backoff) rather than raw ordering throughput.  A new cell,
    not an edit — the 16 legacy cells stay frozen."""
    return PerfCell("basic", 3, 0.0, chaos=False, seed=_SEED_ROOT + 100,
                    rate_per_node=24.0, workload_duration=6.0,
                    duration=10.0, settle_limit=240.0,
                    flow=FlowConfig(rate=6.0, burst=6, max_unordered=24))


def scaled_cells() -> List[PerfCell]:
    """Scale-stress cells beyond the legacy grid: a 25-node cluster and
    a 10x submission rate.  New cells with fresh seeds — the 16 legacy
    cells and the overload cell stay frozen."""
    return [
        PerfCell("basic", 25, 0.0, chaos=False, seed=_SEED_ROOT + 200,
                 rate_per_node=2.0, workload_duration=6.0, duration=10.0,
                 settle_limit=240.0),
        PerfCell("basic", 3, 0.0, chaos=False, seed=_SEED_ROOT + 201,
                 rate_per_node=60.0, workload_duration=8.0, duration=12.0,
                 settle_limit=240.0, suffix="-rate10x"),
    ]


def storage_comparison_cell() -> PerfCell:
    """The E6-batching workload cell used for the storage before/after
    table (high offered load into the alternative protocol, the
    configuration whose Unordered/checkpoint logging hammers storage)."""
    return PerfCell("alternative", 3, 0.02, chaos=False, seed=11,
                    rate_per_node=24.0, workload_duration=12.0,
                    duration=16.0, settle_limit=200.0)
