"""Run perf cells and collect determinism + wall-clock metrics.

Separation of concerns: :mod:`repro.perf.matrix` defines *what* runs,
this module runs it and measures, :mod:`repro.perf.trajectory` turns the
measurements into ``BENCH_*.json`` documents and printable tables.
"""

from __future__ import annotations

import resource
import tempfile
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import VerificationError
from repro.harness.scenario import run_scenario
from repro.perf.matrix import PerfCell, storage_comparison_cell

__all__ = ["CellResult", "run_cell", "run_matrix", "compare_determinism",
           "measure_storage_comparison", "measure_wire_comparison",
           "measure_codec_comparison", "measure_group_commit_comparison"]


class CellResult:
    """Metrics of one cell run: the deterministic and the worldly."""

    def __init__(self, cell: PerfCell, determinism: Dict[str, int],
                 wall: Dict[str, float]):
        self.cell = cell
        self.determinism = determinism
        self.wall = wall

    def to_plain(self) -> Dict[str, Any]:
        return {"cell": self.cell.params(),
                "determinism": dict(self.determinism),
                "wall": dict(self.wall)}


def _peak_rss_kb() -> int:
    """Peak resident set of this process so far, in KiB.

    ``ru_maxrss`` is a high-water mark: it never decreases across cells,
    so per-cell values are upper bounds — comparable across PRs only for
    the first cell of a run (the smoke cell), which is why drift checks
    ignore wall metrics entirely.
    """
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_cell(cell: PerfCell, isolation: str = "snapshot") -> CellResult:
    """Run one cell and measure it.

    Raises :class:`~repro.errors.VerificationError` if the run fails the
    Atomic Broadcast properties — the trajectory never records numbers
    from an incorrect execution.
    """
    start = time.perf_counter()
    result = run_scenario(cell.scenario(isolation=isolation))
    wall_seconds = time.perf_counter() - start
    if result.report is None:  # pragma: no cover - verify is always on
        raise VerificationError(f"cell {cell.name} ran unverified")
    metrics = result.metrics
    sim = result.cluster.sim
    determinism = {
        "events_processed": sim.events_processed,
        "log_ops": metrics.total_log_ops(),
        "bytes_logged": metrics.total_bytes_logged(),
        "messages_broadcast": metrics.messages_broadcast,
        "messages_delivered": metrics.messages_delivered,
    }
    if cell.flow is not None:
        # Flow keys exist only on throttled cells, so the 16 legacy
        # cells' determinism dicts stay byte-identical to old baselines.
        cluster = result.cluster
        determinism["flow_accepted"] = sum(
            controller.accepted for controller in cluster.flows.values())
        determinism["flow_rejected"] = sum(
            controller.rejected for controller in cluster.flows.values())
        determinism["unordered_high_water"] = max(
            getattr(abcast, "unordered_high_water", 0)
            for abcast in cluster.abcasts.values())
    wall = {
        "wall_seconds": round(wall_seconds, 4),
        "deliveries_per_sec": round(
            metrics.messages_delivered / wall_seconds, 1),
        "events_per_sec": round(sim.events_processed / wall_seconds, 1),
        "peak_rss_kb": _peak_rss_kb(),
    }
    return CellResult(cell, determinism, wall)


def run_matrix(cells: Iterable[PerfCell],
               isolation: str = "snapshot") -> List[CellResult]:
    """Run every cell, in matrix order."""
    return [run_cell(cell, isolation=isolation) for cell in cells]


def compare_determinism(baseline: Dict[str, Dict[str, int]],
                        results: Iterable[CellResult]) -> List[str]:
    """Diff fresh results against a baseline's determinism metrics.

    ``baseline`` maps cell name -> determinism dict (the shape stored in
    a BENCH document's ``matrix`` section).  Returns human-readable
    drift descriptions; empty means bit-identical.  Cells missing from
    the baseline are reported too — a silently shrinking matrix must not
    pass as "no drift".
    """
    drifts: List[str] = []
    for result in results:
        name = result.cell.name
        expected = baseline.get(name)
        if expected is None:
            drifts.append(f"{name}: not present in baseline")
            continue
        for key, actual in result.determinism.items():
            want = expected.get(key)
            if want != actual:
                drifts.append(
                    f"{name}: {key} = {actual}, baseline has {want}")
    return drifts


def measure_storage_comparison(repeats: int = 3) -> Dict[str, Any]:
    """Before/after measurement of the MemoryStorage isolation rework.

    Runs the E6-batching workload cell under the legacy
    ``deepcopy``-per-operation isolation and the snapshot isolation,
    ``repeats`` times each, keeping the best wall time per mode (the
    usual way to beat scheduler noise).  Determinism metrics must be
    identical between modes — the optimisation swaps copies, not
    behaviour — and that is asserted here, not assumed.
    """
    cell = storage_comparison_cell()
    modes: Dict[str, CellResult] = {}
    for isolation in ("deepcopy", "snapshot"):
        best: Optional[CellResult] = None
        for _ in range(repeats):
            result = run_cell(cell, isolation=isolation)
            if best is None or (result.wall["wall_seconds"]
                                < best.wall["wall_seconds"]):
                best = result
        assert best is not None
        modes[isolation] = best
    if modes["deepcopy"].determinism != modes["snapshot"].determinism:
        raise VerificationError(
            "storage isolation modes diverged on determinism metrics: "
            f"{modes['deepcopy'].determinism} != "
            f"{modes['snapshot'].determinism}")
    before = modes["deepcopy"].wall
    after = modes["snapshot"].wall
    return {
        "cell": cell.params(),
        "determinism": modes["snapshot"].determinism,
        "before": dict(before),
        "after": dict(after),
        "speedup_deliveries_per_sec": round(
            after["deliveries_per_sec"] / before["deliveries_per_sec"], 2),
    }


def _run_live_burst(version: int, count: int, seed: int) -> Dict[str, Any]:
    """One live burst run under a chosen wire version; all metrics."""
    from repro.harness.cluster import ClusterConfig
    from repro.harness.live import LiveCluster
    from repro.runtime.wire import WireConfig
    from repro.transport.network import NetworkConfig
    from repro.transport.stubborn import StubbornConfig

    config = ClusterConfig(
        n=3, seed=seed, protocol="basic",
        network=NetworkConfig(loss_rate=0.0),
        wire=WireConfig(version=version),
        # v1 mode reproduces the pre-binary transport exactly: one
        # datagram per stubborn envelope, one per ack.
        stubborn=StubbornConfig(coalesce=(version == 2)))
    with tempfile.TemporaryDirectory() as root:
        with LiveCluster(config, root) as cluster:
            cluster.start()
            start = time.perf_counter()
            # Submit in waves: a single huge burst would grow the gossip
            # state past the 64 KiB datagram limit (the size guard would
            # correctly refuse to send it); waves keep the pipeline full
            # while ordering drains the backlog.
            for first in range(0, count, 50):
                for index in range(first, min(first + 50, count)):
                    cluster.submit(index % config.n, f"wire-{index}")
                cluster.run_for(0.02)
            settled = cluster.settle(limit=120.0)
            wall = time.perf_counter() - start
            if not settled or len(cluster.collector.first_delivery) != count:
                raise VerificationError(
                    f"wire v{version} burst did not settle: "
                    f"{len(cluster.collector.first_delivery)}/{count} "
                    f"delivered")
            network = cluster.network
            stubborn = cluster.stubborn.metrics.snapshot() \
                if cluster.stubborn is not None else {}
            group_commits = sum(node.storage.group_commits
                                for node in cluster.nodes.values())
            return {
                "wall_seconds": round(wall, 4),
                "deliveries_per_sec": round(count / wall, 1),
                "datagrams_sent": network.datagrams_sent,
                "frames_coalesced": network.frames_coalesced,
                "bytes_sent": network.wire_bytes_sent,
                "stubborn_batches": stubborn.get("batches_sent", 0),
                "piggybacked_acks": stubborn.get("piggybacked_acks", 0),
                "group_commits": group_commits,
            }


def measure_wire_comparison(count: int = 300, repeats: int = 3,
                            seed: int = 42) -> Dict[str, Any]:
    """Before/after measurement of the binary wire path, end to end.

    Runs the same live burst workload (``count`` messages flooded into a
    3-node localhost-UDP cluster, then settled) under wire v1 with no
    coalescing — the pre-binary transport — and under wire v2 with
    datagram + stubborn coalescing, ``repeats`` times each, keeping the
    best wall time per mode.  Every run must deliver every message or
    the measurement is rejected, so the speedup is for equivalent work.
    """
    modes: Dict[str, Dict[str, Any]] = {}
    for label, version in (("before", 1), ("after", 2)):
        best: Optional[Dict[str, Any]] = None
        for _ in range(repeats):
            run = _run_live_burst(version, count, seed)
            if best is None or run["wall_seconds"] < best["wall_seconds"]:
                best = run
        assert best is not None
        modes[label] = best
    return {
        "workload": {"n": 3, "count": count, "seed": seed},
        "before": modes["before"],
        "after": modes["after"],
        "speedup_deliveries_per_sec": round(
            modes["after"]["deliveries_per_sec"]
            / modes["before"]["deliveries_per_sec"], 2),
        "datagram_ratio": round(
            modes["before"]["datagrams_sent"]
            / max(1, modes["after"]["datagrams_sent"]), 2),
        "bytes_ratio": round(
            modes["before"]["bytes_sent"]
            / max(1, modes["after"]["bytes_sent"]), 2),
    }


def measure_codec_comparison(iterations: int = 4000,
                             repeats: int = 3) -> Dict[str, Any]:
    """Before/after measurement of the wire codec itself.

    Times the full serialise-then-parse pipeline (encode + decode, the
    per-datagram work of the live transport) over a corpus of
    representative protocol messages — gossip with a populated Unordered
    set, paxos rounds, stubborn envelopes/acks/batches — under wire v1
    (tagged JSON) and v2 (binary), keeping the best of ``repeats``.
    Every decoded message is the encoder's input (same sender, type and
    fields) or the measurement aborts.
    """
    from repro.core.messages import AppMessage
    from repro.runtime import wire

    def corpus() -> List[Any]:
        from repro.core.messages import MessageId
        apps = [AppMessage(MessageId(sender, 1, seq),
                           f"payload-{sender}-{seq}")
                for sender in range(3) for seq in range(8)]
        return [
            wire.rebuild("ab.gossip", {"k": 12,
                                       "unordered": frozenset(apps),
                                       "ckpt_k": 8}),
            wire.rebuild("paxos.accept", {"k": 7, "ballot": (2, 1),
                                          "value": tuple(apps[:6])}),
            wire.rebuild("paxos.accepted", {"k": 7, "ballot": (2, 1)}),
            wire.rebuild("stub.data", {
                "seq": 991, "inner_type": "fd.alive",
                "inner_fields": {"epoch": 3}}),
            wire.rebuild("stub.ack", {"seq": 991}),
            wire.rebuild("stub.batch", {
                "entries": tuple((index, "paxos.decide",
                                  {"k": index, "value": tuple(apps[:4])})
                                 for index in range(6)),
                "acks": (1, 2, 3, 4)}),
        ]

    messages = corpus()
    results: Dict[str, Dict[str, Any]] = {}
    for label, version in (("before", 1), ("after", 2)):
        encoded = [wire.encode(5, message, version=version)
                   for message in messages]
        for data, message in zip(encoded, messages):
            sender, got = wire.decode(data)
            if sender != 5 or got.type != message.type:
                raise VerificationError(
                    f"codec bench round-trip failed for {message.type}")
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iterations):
                for message in messages:
                    wire.decode(wire.encode(5, message, version=version))
            wall = time.perf_counter() - start
            best = wall if best is None else min(best, wall)
        assert best is not None
        count = iterations * len(messages)
        results[label] = {
            "wall_seconds": round(best, 4),
            "messages_per_sec": round(count / best, 1),
            "bytes_per_message": round(
                sum(len(data) for data in encoded) / len(encoded), 1),
        }
    return {
        "workload": {"iterations": iterations,
                     "corpus_size": len(messages)},
        "before": results["before"],
        "after": results["after"],
        "speedup_messages_per_sec": round(
            results["after"]["messages_per_sec"]
            / results["before"]["messages_per_sec"], 2),
        "bytes_ratio": round(
            results["before"]["bytes_per_message"]
            / results["after"]["bytes_per_message"], 2),
    }


def measure_group_commit_comparison(records: int = 400, batch: int = 8,
                                    repeats: int = 3) -> Dict[str, Any]:
    """Before/after measurement of FileStorage group commit.

    Logs ``records`` values in ``write_barrier()`` batches of ``batch``
    against a real directory, with per-record fsyncs (classic mode)
    versus one journal fsync per barrier (group commit), keeping the
    best wall time of ``repeats`` per mode.  Every record is read back
    and checked in both modes before timings are accepted.
    """
    from repro.storage.file import FileStorage

    def one_run(group_commit: bool) -> float:
        with tempfile.TemporaryDirectory() as root:
            storage = FileStorage(root, group_commit=group_commit)
            payload = {"round": 0, "estimate": ("value", 1.5, None)}
            start = time.perf_counter()
            index = 0
            while index < records:
                with storage.write_barrier():
                    for _ in range(min(batch, records - index)):
                        storage.log(("bench", index),
                                    dict(payload, round=index))
                        index += 1
            wall = time.perf_counter() - start
            for check in range(0, records, max(1, records // 16)):
                value = storage.retrieve(("bench", check))
                if value is None or value["round"] != check:
                    raise VerificationError(
                        f"group-commit bench read-back failed at {check}")
            return wall

    walls: Dict[str, float] = {}
    for label, group_commit in (("before", False), ("after", True)):
        walls[label] = min(one_run(group_commit) for _ in range(repeats))
    return {
        "workload": {"records": records, "batch": batch},
        "before": {"wall_seconds": round(walls["before"], 4),
                   "records_per_sec": round(records / walls["before"], 1)},
        "after": {"wall_seconds": round(walls["after"], 4),
                  "records_per_sec": round(records / walls["after"], 1)},
        "speedup_records_per_sec": round(
            walls["before"] / walls["after"], 2),
    }
