"""Run perf cells and collect determinism + wall-clock metrics.

Separation of concerns: :mod:`repro.perf.matrix` defines *what* runs,
this module runs it and measures, :mod:`repro.perf.trajectory` turns the
measurements into ``BENCH_*.json`` documents and printable tables.
"""

from __future__ import annotations

import resource
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import VerificationError
from repro.harness.scenario import run_scenario
from repro.perf.matrix import PerfCell, storage_comparison_cell

__all__ = ["CellResult", "run_cell", "run_matrix", "compare_determinism",
           "measure_storage_comparison"]


class CellResult:
    """Metrics of one cell run: the deterministic and the worldly."""

    def __init__(self, cell: PerfCell, determinism: Dict[str, int],
                 wall: Dict[str, float]):
        self.cell = cell
        self.determinism = determinism
        self.wall = wall

    def to_plain(self) -> Dict[str, Any]:
        return {"cell": self.cell.params(),
                "determinism": dict(self.determinism),
                "wall": dict(self.wall)}


def _peak_rss_kb() -> int:
    """Peak resident set of this process so far, in KiB.

    ``ru_maxrss`` is a high-water mark: it never decreases across cells,
    so per-cell values are upper bounds — comparable across PRs only for
    the first cell of a run (the smoke cell), which is why drift checks
    ignore wall metrics entirely.
    """
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_cell(cell: PerfCell, isolation: str = "snapshot") -> CellResult:
    """Run one cell and measure it.

    Raises :class:`~repro.errors.VerificationError` if the run fails the
    Atomic Broadcast properties — the trajectory never records numbers
    from an incorrect execution.
    """
    start = time.perf_counter()
    result = run_scenario(cell.scenario(isolation=isolation))
    wall_seconds = time.perf_counter() - start
    if result.report is None:  # pragma: no cover - verify is always on
        raise VerificationError(f"cell {cell.name} ran unverified")
    metrics = result.metrics
    sim = result.cluster.sim
    determinism = {
        "events_processed": sim.events_processed,
        "log_ops": metrics.total_log_ops(),
        "bytes_logged": metrics.total_bytes_logged(),
        "messages_broadcast": metrics.messages_broadcast,
        "messages_delivered": metrics.messages_delivered,
    }
    if cell.flow is not None:
        # Flow keys exist only on throttled cells, so the 16 legacy
        # cells' determinism dicts stay byte-identical to old baselines.
        cluster = result.cluster
        determinism["flow_accepted"] = sum(
            controller.accepted for controller in cluster.flows.values())
        determinism["flow_rejected"] = sum(
            controller.rejected for controller in cluster.flows.values())
        determinism["unordered_high_water"] = max(
            getattr(abcast, "unordered_high_water", 0)
            for abcast in cluster.abcasts.values())
    wall = {
        "wall_seconds": round(wall_seconds, 4),
        "deliveries_per_sec": round(
            metrics.messages_delivered / wall_seconds, 1),
        "events_per_sec": round(sim.events_processed / wall_seconds, 1),
        "peak_rss_kb": _peak_rss_kb(),
    }
    return CellResult(cell, determinism, wall)


def run_matrix(cells: Iterable[PerfCell],
               isolation: str = "snapshot") -> List[CellResult]:
    """Run every cell, in matrix order."""
    return [run_cell(cell, isolation=isolation) for cell in cells]


def compare_determinism(baseline: Dict[str, Dict[str, int]],
                        results: Iterable[CellResult]) -> List[str]:
    """Diff fresh results against a baseline's determinism metrics.

    ``baseline`` maps cell name -> determinism dict (the shape stored in
    a BENCH document's ``matrix`` section).  Returns human-readable
    drift descriptions; empty means bit-identical.  Cells missing from
    the baseline are reported too — a silently shrinking matrix must not
    pass as "no drift".
    """
    drifts: List[str] = []
    for result in results:
        name = result.cell.name
        expected = baseline.get(name)
        if expected is None:
            drifts.append(f"{name}: not present in baseline")
            continue
        for key, actual in result.determinism.items():
            want = expected.get(key)
            if want != actual:
                drifts.append(
                    f"{name}: {key} = {actual}, baseline has {want}")
    return drifts


def measure_storage_comparison(repeats: int = 3) -> Dict[str, Any]:
    """Before/after measurement of the MemoryStorage isolation rework.

    Runs the E6-batching workload cell under the legacy
    ``deepcopy``-per-operation isolation and the snapshot isolation,
    ``repeats`` times each, keeping the best wall time per mode (the
    usual way to beat scheduler noise).  Determinism metrics must be
    identical between modes — the optimisation swaps copies, not
    behaviour — and that is asserted here, not assumed.
    """
    cell = storage_comparison_cell()
    modes: Dict[str, CellResult] = {}
    for isolation in ("deepcopy", "snapshot"):
        best: Optional[CellResult] = None
        for _ in range(repeats):
            result = run_cell(cell, isolation=isolation)
            if best is None or (result.wall["wall_seconds"]
                                < best.wall["wall_seconds"]):
                best = result
        assert best is not None
        modes[isolation] = best
    if modes["deepcopy"].determinism != modes["snapshot"].determinism:
        raise VerificationError(
            "storage isolation modes diverged on determinism metrics: "
            f"{modes['deepcopy'].determinism} != "
            f"{modes['snapshot'].determinism}")
    before = modes["deepcopy"].wall
    after = modes["snapshot"].wall
    return {
        "cell": cell.params(),
        "determinism": modes["snapshot"].determinism,
        "before": dict(before),
        "after": dict(after),
        "speedup_deliveries_per_sec": round(
            after["deliveries_per_sec"] / before["deliveries_per_sec"], 2),
    }
