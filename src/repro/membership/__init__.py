"""Epoch-numbered membership views and elastic reconfiguration.

The paper assumes a fixed member set; this package removes that ceiling
in the style of Vertical Atomic Broadcast: reconfiguration commands
(``join``/``leave``/``evict``) travel through the Atomic Broadcast layer
itself, so every process installs the same :class:`View` at the same
agreed position of the delivery sequence, and a joining process is
bootstrapped with the Section 5.3 state-transfer machinery.

See docs/MEMBERSHIP.md for the lifecycle and the epoch-vs-incarnation
semantics.
"""

from repro.membership.manager import ViewManager
from repro.membership.view import (RECONFIG_OPS, View, parse_reconfig,
                                   reconfig_payload)

__all__ = ["RECONFIG_OPS", "View", "ViewManager", "parse_reconfig",
           "reconfig_payload"]
