"""The canonical membership-churn scenario: grow, storm, shrink, verify.

One seeded script exercises the whole elastic-reconfiguration surface in
a single run:

* start at ``n = 5`` on the alternative protocol (the one with the
  checkpoint/STATE machinery joins bootstrap from);
* **grow to 7**: two brand-new nodes join by state transfer — each
  gossips the ``k = -1`` joining sentinel until a member answers with a
  ``StateMessage``, adopts the agreed prefix, seals the transfer point
  durably and only then starts proposing;
* **crash storm**: two original members crash mid-run; one is evicted
  *while down* and later recovers as an evicted-but-up process (it keeps
  draining its backlog to the members but no longer counts);
* **shrink to 4**: two more ordered removals leave ``{0, 1, joiner,
  joiner}`` as the final view;
* settle and run the full :func:`~repro.harness.verify.verify_run`
  predicate set — uniform total order spanning every epoch, joiners
  delivering the complete suffix from their transfer point, termination
  restricted to the final view's members.

Everything is a pure function of the seed, so
:func:`check_churn_reproducibility` re-runs the same seed and demands a
bit-identical view-install timeline — the reconfiguration path must be
as deterministic as the ordering path it rides on.
"""

from __future__ import annotations

import tempfile
from typing import Any, List, Optional, Tuple

from repro.errors import VerificationError
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import VerificationReport, verify_run
from repro.membership.view import View

__all__ = ["ChurnReport", "check_churn_reproducibility",
           "run_churn_scenario"]


class ChurnReport:
    """Everything one churn run establishes (input to reproducibility)."""

    def __init__(self, verification: VerificationReport, final_view: View,
                 joiners: List[int],
                 view_installs: List[Tuple[int, int, Tuple[int, ...],
                                           float, str]],
                 transfers_adopted: int, delivered: int):
        self.verification = verification
        self.final_view = final_view
        self.joiners = joiners
        self.view_installs = view_installs
        self.transfers_adopted = transfers_adopted
        self.delivered = delivered

    def timeline(self) -> Tuple[Tuple[int, int, Tuple[int, ...], float,
                                      str], ...]:
        """The view-install history, the unit of reproducibility."""
        return tuple(self.view_installs)

    def describe(self) -> str:
        lines = [f"final view: epoch {self.final_view.epoch} "
                 f"members {list(self.final_view.members)}",
                 f"joiners {self.joiners} adopted "
                 f"{self.transfers_adopted} state transfer(s)",
                 f"{self.delivered} messages ordered over "
                 f"{self.verification.rounds} rounds",
                 "view timeline:"]
        for node_id, epoch, members, time, origin in self.view_installs:
            lines.append(f"  t={time:7.3f}  node={node_id}  "
                         f"epoch={epoch}  members={list(members)}  "
                         f"({origin})")
        return "\n".join(lines)


def _check_join_bootstrap(cluster: Any, joiners: List[int]) -> int:
    """Every joiner must have bootstrapped through a real state transfer."""
    total = 0
    for joiner in joiners:
        abcast = cluster.abcasts[joiner]
        adopted = getattr(abcast, "state_transfers_adopted", 0)
        if adopted < 1:
            raise VerificationError(
                f"joiner {joiner} never adopted a state transfer "
                f"(its history would be a guess, not the agreed prefix)")
        if getattr(abcast, "_joining", False):
            raise VerificationError(
                f"joiner {joiner} is still in the joining state after "
                f"settling — the transfer never completed")
        total += adopted
    final = cluster.current_view()
    for joiner in joiners:
        if not final.contains(joiner):
            raise VerificationError(
                f"joiner {joiner} missing from the final view "
                f"{list(final.members)}")
    return total


def _report(cluster: Any, verification: VerificationReport,
            joiners: List[int]) -> ChurnReport:
    transfers = _check_join_bootstrap(cluster, joiners)
    return ChurnReport(
        verification=verification,
        final_view=cluster.current_view(),
        joiners=joiners,
        view_installs=list(cluster.collector.view_installs),
        transfers_adopted=transfers,
        delivered=len(cluster.collector.first_delivery))


def _run_sim(seed: int, settle_limit: float) -> ChurnReport:
    cluster = Cluster(ClusterConfig(n=5, seed=seed, protocol="alternative"))
    cluster.start()
    # Warm-up workload so the joiners have real history to transfer.
    for index in range(5):
        cluster.submit(index % 5, f"churn-{seed}-pre-{index}")
    cluster.run(until=2.0)

    # Grow 5 -> 7: both joins are ordered commands; the joiners
    # bootstrap from whichever member answers their sentinel first.
    joiners = [cluster.add_node(), cluster.add_node()]
    for index in range(3):
        cluster.submit(index % 5, f"churn-{seed}-mid-{index}")
    cluster.run(until=6.0)

    # Crash storm over the shrink: node 2 is evicted *while crashed*
    # (the command outlives the victim), node 3 recovers before its
    # eviction, node 4 leaves gracefully.
    cluster.crash(2)
    cluster.crash(3)
    cluster.run(until=7.0)
    cluster.remove_node(2, evict=True)
    cluster.run(until=8.0)
    cluster.recover(2)
    cluster.recover(3)
    cluster.run(until=9.0)
    cluster.remove_node(3, evict=True)
    cluster.remove_node(4)
    # Post-shrink workload, including a submission through a joiner —
    # by now a first-class member whose sequencer turn must come around.
    for index in range(3):
        cluster.submit(index % 2, f"churn-{seed}-post-{index}")
    cluster.submit(joiners[0], f"churn-{seed}-joiner")

    if not cluster.settle(limit=cluster.sim.now + settle_limit):
        raise VerificationError(
            f"churn scenario (seed {seed}) failed to settle within "
            f"{settle_limit} after the timeline")
    return _report(cluster, verify_run(cluster), joiners)


def _run_live(seed: int, settle_limit: float,
              directory: Optional[str]) -> ChurnReport:
    from repro.harness.live import LiveCluster
    if directory is None:
        directory = tempfile.mkdtemp(prefix=f"churn-live-{seed}-")
    with LiveCluster(ClusterConfig(n=3, seed=seed,
                                   protocol="alternative"),
                     directory) as cluster:
        cluster.start()
        for index in range(3):
            cluster.submit(index % 3, f"churn-live-{seed}-{index}")
        cluster.run_for(1.0)
        joiner = cluster.add_node()
        cluster.run_for(2.0)
        cluster.remove_node(0)
        cluster.submit(1, f"churn-live-{seed}-post")
        if not cluster.settle(limit=settle_limit):
            raise VerificationError(
                f"live churn scenario (seed {seed}) failed to settle "
                f"within {settle_limit}s")
        return _report(cluster, verify_run(cluster), [joiner])


def run_churn_scenario(seed: int = 0, runtime: str = "sim",
                       settle_limit: float = 300.0,
                       directory: Optional[str] = None) -> ChurnReport:
    """Run the scripted churn scenario once and verify it end to end.

    ``runtime="sim"`` runs the full 5 -> 7 -> 4 script on virtual time;
    ``runtime="live"`` runs a smaller 3 -> 4 -> 3 variant over real UDP
    and files (``settle_limit`` is then wall-clock seconds — pass
    something like 30).
    """
    if runtime == "sim":
        return _run_sim(seed, settle_limit)
    if runtime == "live":
        return _run_live(seed, settle_limit, directory)
    raise VerificationError(f"unknown churn runtime {runtime!r}")


def check_churn_reproducibility(seed: int = 0,
                                settle_limit: float = 300.0) -> ChurnReport:
    """Run the sim scenario twice; demand a bit-identical view timeline.

    The comparison covers node, epoch, member set, virtual install time
    and origin of every install event — if any of them drifts between
    same-seed runs, reconfiguration has picked up a hidden source of
    nondeterminism.
    """
    first = _run_sim(seed, settle_limit)
    second = _run_sim(seed, settle_limit)
    if first.timeline() != second.timeline():
        raise VerificationError(
            f"churn scenario (seed {seed}) is not reproducible: view "
            f"timelines diverge ({len(first.timeline())} vs "
            f"{len(second.timeline())} installs)")
    return first
