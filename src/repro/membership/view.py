"""The :class:`View` value type and the reconfiguration command codec.

A view is an immutable ``(epoch, members)`` pair; epoch 0 is the
build-time configuration and every *effective* reconfiguration command
(one that actually changes the member set) advances the epoch by one.
Because reconfiguration commands are ordered by Atomic Broadcast, every
process walks the exact same sequence of views — the view timeline is as
deterministic as the delivery sequence itself.

Epochs and the paper's incarnation numbers are orthogonal counters: an
incarnation numbers the *lifetimes of one process* (bumped durably on
every recovery, part of every :class:`~repro.core.ids.MessageId`), while
an epoch numbers the *configurations of the whole group*.  A message id
never mentions the epoch — a message submitted under one view is
delivered under whatever view its ordering position falls in.

Reconfiguration commands are encoded as plain strings
(``"reconfig:join:5"``) so they survive every storage and wire codec
unchanged, exactly like application payloads.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["RECONFIG_OPS", "View", "parse_reconfig", "reconfig_payload"]

RECONFIG_OPS = ("join", "leave", "evict")

_RECONFIG_PREFIX = "reconfig:"


def reconfig_payload(op: str, target: int) -> str:
    """Encode a reconfiguration command as an A-broadcast payload."""
    if op not in RECONFIG_OPS:
        raise SimulationError(
            f"unknown reconfiguration op {op!r}; pick one of {RECONFIG_OPS}")
    return f"{_RECONFIG_PREFIX}{op}:{int(target)}"


def parse_reconfig(payload: object) -> Optional[Tuple[str, int]]:
    """Decode ``(op, target)`` from a payload, or None for ordinary data."""
    if not isinstance(payload, str) or not payload.startswith(
            _RECONFIG_PREFIX):
        return None
    parts = payload.split(":")
    if len(parts) != 3 or parts[1] not in RECONFIG_OPS:
        return None
    try:
        target = int(parts[2])
    except ValueError:
        return None
    return parts[1], target


class View:
    """One immutable configuration of the group."""

    __slots__ = ("epoch", "members")

    def __init__(self, epoch: int, members: Iterable[int]):
        if epoch < 0:
            raise SimulationError(f"negative view epoch {epoch}")
        object.__setattr__(self, "epoch", int(epoch))
        object.__setattr__(self, "members",
                           tuple(sorted(set(int(m) for m in members))))
        if not self.members:
            raise SimulationError("a view needs at least one member")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("View is immutable")

    @classmethod
    def initial(cls, members: Iterable[int]) -> "View":
        """The epoch-0 view of a freshly built cluster."""
        return cls(0, members)

    @property
    def quorum_size(self) -> int:
        """Majority of the member set (what consensus needs to decide)."""
        return len(self.members) // 2 + 1

    @property
    def ballot_stride(self) -> int:
        """Spacing of leader-disjoint ballot numbers under this view.

        Large enough that ``counter * stride + node_id`` is unique per
        node for every member id; on the contiguous ids of a static
        cluster this equals ``n``, reproducing the pre-membership ballot
        values exactly.
        """
        return max(len(self.members), max(self.members) + 1)

    def contains(self, node_id: int) -> bool:
        return node_id in self.members

    def apply(self, op: str, target: int) -> "View":
        """The view after one reconfiguration command.

        Idempotent on no-ops: joining a present member or removing an
        absent one returns ``self`` unchanged (same epoch) — re-applied
        commands during recovery replay therefore converge.
        """
        members = set(self.members)
        if op == "join":
            if target in members:
                return self
            members.add(target)
        elif op in ("leave", "evict"):
            if target not in members:
                return self
            if len(members) == 1:
                return self  # never install an empty view
            members.discard(target)
        else:
            raise SimulationError(f"unknown reconfiguration op {op!r}")
        return View(self.epoch + 1, members)

    # -- portable representation (storage records, wire messages) -----------

    def to_plain(self) -> List[object]:
        return [self.epoch, list(self.members)]

    @classmethod
    def from_plain(cls, plain: Iterable[object]) -> "View":
        epoch, members = plain
        return cls(int(epoch), members)  # type: ignore[arg-type]

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, View) and self.epoch == other.epoch
                and self.members == other.members)

    def __hash__(self) -> int:
        return hash((self.epoch, self.members))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"View(epoch={self.epoch}, members={list(self.members)})"
