"""Per-node view installation (the membership half of every stack).

The :class:`ViewManager` sits directly above the transport endpoint and
below every peer-consuming layer, so its ``on_start`` restores the
durable view *before* the failure detector, consensus or broadcast read
``endpoint.peers()``.  It learns about view changes from exactly two
sources, mirroring how a node learns about ordinary messages:

* **delivery** — it subscribes to the Atomic Broadcast delivery stream
  and applies every reconfiguration command at its agreed position;
* **adoption** — a Section 5.3 state transfer carries the sender's view
  alongside its Agreed queue, and the manager adopts it before the
  transferred suffix is replayed (so replayed reconfiguration commands
  are recognised as already applied).

The durable record ``(epoch, members, applied-command-ids)`` is written
*before* the in-memory view mutates (the WAL discipline the lint
patrols) and is re-read on recovery; the epoch-0 view is never logged,
so a static-membership run performs zero additional log operations —
the bit-identity guarantee BENCH_PR7 checks.

Recovery idempotence leans on the applied-command-id set rather than on
command no-op-ness: a replayed ``evict(5)`` that was a no-op when first
delivered could be *effective* against the node's recovered (later)
view, so every processed command id — effective or not — is remembered
durably and skipped on re-delivery.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Set, Tuple

from repro.core.ids import MessageId
from repro.membership.view import View, parse_reconfig
from repro.runtime import NodeComponent

__all__ = ["ViewManager"]


class ViewManager(NodeComponent):
    """Installs views at agreed positions; the stack's peer-set oracle.

    Parameters
    ----------
    initial_view:
        The view this node boots with: epoch 0 for founding members, the
        sponsor's current view for a joining node (superseded by the
        state transfer's view on adoption).
    collector:
        Optional omniscient observer; every install is archived for
        post-hoc uniform-view verification and timeline comparison.
    """

    name = "view-manager"

    VIEW_KEY = ("view", "current")

    # The in-memory view/applied-set mirror the durable record under
    # VIEW_KEY: the record must be on disk before the mirrors mutate,
    # or a crash between install and log would fork the view timeline.
    VOLATILE_FIELDS = ("view", "_applied")

    def __init__(self, initial_view: View,
                 collector: Optional[Any] = None):
        super().__init__()
        self.initial_view = initial_view
        self.collector = collector
        self.view = initial_view
        self._applied: Set[MessageId] = set()
        self._subscribers: List[Callable[[View], None]] = []
        # Statistics (volatile; the harness samples them).
        self.installs = 0
        self.adoptions = 0

    # -- lifecycle -----------------------------------------------------------

    def on_start(self) -> None:
        assert self.node is not None
        self._subscribers = []
        record = self.node.storage.retrieve(self.VIEW_KEY, None)
        if record is None:
            self.view = self.initial_view
            self._applied = set()
        else:
            epoch, members, applied = record
            self.view = View(int(epoch), members)
            self._applied = {MessageId(*mid) for mid in applied}

    def on_crash(self) -> None:
        self._subscribers = []

    # -- queries -------------------------------------------------------------

    def epoch(self) -> int:
        return self.view.epoch

    def members(self) -> Tuple[int, ...]:
        return self.view.members

    def is_member(self, node_id: Optional[int] = None) -> bool:
        if node_id is None:
            assert self.node is not None
            node_id = self.node.node_id
        return self.view.contains(node_id)

    def multisend_targets(self, sender: int) -> Tuple[int, ...]:
        """Destinations of a ``multisend`` from this node.

        The member set plus the sender itself (the paper's footnote 2:
        multisend always includes self), so an evicted or still-joining
        node keeps pushing its gossip *to* the members even though the
        members no longer address it.
        """
        if sender in self.view.members:
            return self.view.members
        return tuple(sorted(self.view.members + (sender,)))

    # -- subscriptions -------------------------------------------------------

    def subscribe(self, callback: Callable[[View], None]) -> None:
        """Volatile install notification (redo in ``on_start``)."""
        self._subscribers.append(callback)

    # -- delivery stream (DeliveryListener surface) --------------------------

    def on_deliver(self, message: Any) -> None:
        """Apply one delivered message if it is a reconfiguration command."""
        command = parse_reconfig(getattr(message, "payload", None))
        if command is None:
            return
        if message.id in self._applied:
            return  # recovery replay of an already-processed command
        op, target = command
        new_view = self.view.apply(op, target)
        self._persist(new_view, self._applied | {message.id})
        self._applied.add(message.id)  # repro: noqa(RES001) -- replay idempotence: the applied-command set must span every reconfiguration the log can re-deliver
        if new_view.epoch != self.view.epoch:
            self._install(new_view, origin="deliver")

    def on_restore(self, state: Any) -> None:
        """Checkpoint adoption replaces application state, not the view:
        the view travels separately (``StateMessage.view_plain``) through
        :meth:`adopt_plain`, which the broadcast layer invokes *before*
        replaying the adopted suffix."""

    # -- state transfer ------------------------------------------------------

    def to_plain(self) -> List[Any]:
        """Portable ``(epoch, members, applied)`` for a state message."""
        return [self.view.epoch, list(self.view.members),
                sorted([list(mid) for mid in self._applied])]

    def adopt_plain(self, plain: Optional[List[Any]]) -> None:
        """Adopt a transferred view if it is no older than the local one."""
        if plain is None:
            return
        epoch, members, applied = plain
        incoming = View(int(epoch), members)
        merged = self._applied | {MessageId(*mid) for mid in applied}
        if incoming.epoch < self.view.epoch:
            # Stale view — but its applied set is still knowledge (every
            # id in it is ordered before our epoch's commands).
            if merged != self._applied:
                self._persist(self.view, merged)
                self._applied = merged
            return
        if incoming.epoch == self.view.epoch:
            if merged != self._applied:
                self._persist(self.view, merged)
                self._applied = merged
            return
        self._persist(incoming, merged)
        self._applied = merged
        self.adoptions += 1
        self._install(incoming, origin="adopt")

    # -- internals -----------------------------------------------------------

    def _persist(self, view: View, applied: Set[MessageId]) -> None:
        assert self.node is not None
        self.node.storage.log(
            self.VIEW_KEY,
            [view.epoch, list(view.members),
             sorted([list(mid) for mid in applied])])

    def _install(self, view: View, origin: str) -> None:
        assert self.node is not None
        self.view = view
        self.installs += 1
        self.node.sim.trace("view", self.node.node_id, "install",
                            epoch=view.epoch,
                            members=list(view.members), origin=origin)
        if self.collector is not None:
            self.collector.note_view_install(
                self.node.node_id, view.epoch, view.members,
                self.node.sim.now, origin)
        for callback in list(self._subscribers):
            callback(view)
