"""Sequence-recording application (test instrumentation).

Keeps the exact sequence of delivered payloads — the literal
``A-deliver-sequence`` — so tests and the verification harness can
compare replicas directly.  Also derives an order-sensitive digest
(a rolling hash), so two replicas with equal digests applied the same
messages in the same order with overwhelming probability.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.apps.base import Application
from repro.core.messages import AppMessage

__all__ = ["SequenceRecorder"]

_MOD = (1 << 61) - 1
_BASE = 1_000_003


class SequenceRecorder(Application):
    """Records delivered message ids and payloads, in order."""

    def __init__(self) -> None:
        self.entries: List[Tuple[Tuple[int, int, int], Any]] = []
        self.digest = 0

    def apply(self, message: AppMessage) -> Any:
        entry = (tuple(message.id), message.payload)
        self.entries.append(entry)
        self.digest = (self.digest * _BASE + hash(entry[0])) % _MOD
        return len(self.entries)

    def snapshot(self) -> Any:
        return {"entries": list(self.entries), "digest": self.digest}

    def restore(self, state: Any) -> None:
        if state is None:
            self.entries = []
            self.digest = 0
        else:
            self.entries = [(tuple(identity), payload)
                            for identity, payload in state["entries"]]
            self.digest = int(state["digest"])

    def payloads(self) -> List[Any]:
        """Delivered payloads, in delivery order."""
        return [payload for _, payload in self.entries]

    def ids(self) -> List[Tuple[int, int, int]]:
        """Delivered message ids, in delivery order."""
        return [identity for identity, _ in self.entries]
