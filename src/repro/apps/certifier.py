"""Deferred-update replicated database with certification (Section 6.2).

Implements the termination protocol of Pedone-Guerraoui-Schiper [15] on
top of Atomic Broadcast: a transaction executes locally at one replica
(collecting read and write sets against a local snapshot), then at commit
time the transaction — read set, write set and the versions it read — is
A-broadcast.  Every replica *certifies* transactions in delivery order:

* a transaction **commits** if none of the items it read were written by
  a transaction that committed after the reader's snapshot;
* otherwise it **aborts**.

Because every replica certifies the same transactions in the same total
order against the same history, all replicas reach identical commit /
abort verdicts and identical database states — exactly the argument of
Section 6.2 for using Atomic Broadcast instead of atomic commitment.

Transaction payload (codec-friendly)::

    ("txn", txn_id,
     (("x", version_read), ...),      # read set with snapshot versions
     (("y", new_value), ...))         # write set
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.apps.base import Application
from repro.core.messages import AppMessage

__all__ = ["CertifyingDatabase", "make_transaction"]


def make_transaction(txn_id: str,
                     reads: List[Tuple[str, int]],
                     writes: List[Tuple[str, Any]]) -> tuple:
    """Build a certification request payload."""
    return ("txn", txn_id, tuple(tuple(r) for r in reads),
            tuple(tuple(w) for w in writes))


class CertifyingDatabase(Application):
    """Multi-version store with delivery-order certification."""

    def __init__(self) -> None:
        self.values: Dict[str, Any] = {}
        self.versions: Dict[str, int] = {}   # commit counter per item
        self.committed = 0
        self.aborted = 0
        self.verdicts: Dict[str, bool] = {}  # txn_id -> committed?
        self.commit_seq = 0

    # -- local execution helpers (not ordered) ---------------------------------

    def read(self, key: str) -> Tuple[Any, int]:
        """Local snapshot read: (value, version) for a transaction."""
        return self.values.get(key), self.versions.get(key, 0)

    # -- state machine -------------------------------------------------------------

    def apply(self, message: AppMessage) -> Any:
        tag, txn_id, reads, writes = message.payload
        if tag != "txn":
            raise ValueError(f"unknown database command {tag!r}")
        committed = all(self.versions.get(key, 0) == version
                        for key, version in reads)
        self.verdicts[txn_id] = committed
        if committed:
            self.commit_seq += 1
            for key, value in writes:
                self.values[key] = value
                self.versions[key] = self.commit_seq
            self.committed += 1
        else:
            self.aborted += 1
        return committed

    def snapshot(self) -> Any:
        return {
            "values": dict(self.values),
            "versions": dict(self.versions),
            "committed": self.committed,
            "aborted": self.aborted,
            "verdicts": dict(self.verdicts),
            "commit_seq": self.commit_seq,
        }

    def restore(self, state: Any) -> None:
        if state is None:
            self.__init__()
            return
        self.values = dict(state["values"])
        self.versions = dict(state["versions"])
        self.committed = int(state["committed"])
        self.aborted = int(state["aborted"])
        self.verdicts = dict(state["verdicts"])
        self.commit_seq = int(state["commit_seq"])

    @property
    def abort_rate(self) -> float:
        """Fraction of certified transactions that aborted."""
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0
