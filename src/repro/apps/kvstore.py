"""Replicated key-value store.

The canonical software-replication use case from the paper's introduction:
updates are disseminated through Atomic Broadcast, so every replica
applies the same writes in the same order and stays consistent.  Commands
are plain tuples, so they survive the storage codec:

* ``("put", key, value)``
* ``("del", key)``
* ``("append", key, item)`` — read-modify-write, order-sensitive: two
  replicas that applied appends in different orders diverge immediately,
  which makes this command a sharp consistency probe in tests.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.base import Application
from repro.core.messages import AppMessage

__all__ = ["KeyValueStore"]


class KeyValueStore(Application):
    """Dictionary state machine with order-sensitive commands."""

    def __init__(self) -> None:
        self.data: Dict[str, Any] = {}
        self.version = 0

    # -- state machine ---------------------------------------------------------

    def apply(self, message: AppMessage) -> Any:
        command = message.payload
        op = command[0]
        self.version += 1
        if op == "put":
            _, key, value = command
            self.data[key] = value
            return value
        if op == "del":
            _, key = command
            return self.data.pop(key, None)
        if op == "append":
            _, key, item = command
            current = list(self.data.get(key, ()))
            current.append(item)
            self.data[key] = tuple(current)
            return self.data[key]
        raise ValueError(f"unknown KV command {op!r}")

    def snapshot(self) -> Any:
        return {"data": dict(self.data), "version": self.version}

    def restore(self, state: Any) -> None:
        if state is None:
            self.data = {}
            self.version = 0
        else:
            self.data = dict(state["data"])
            self.version = int(state["version"])

    # -- reads (local, not ordered) ----------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Local read of the replica state."""
        return self.data.get(key, default)

    def __len__(self) -> int:
        return len(self.data)
