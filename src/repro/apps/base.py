"""Application layer: replicated state machines over Atomic Broadcast.

Two pieces:

* :class:`Application` — a deterministic state machine.  Its
  ``snapshot``/``restore`` pair is the paper's ``A-checkpoint`` upcall
  (Figure 5): ``snapshot()`` returns a state that logically *contains*
  every message applied so far, and ``restore(None)`` resets to the
  initial state (``A-checkpoint(⊥)``).
* :class:`ReplicatedStateMachine` — the node component that wires an
  application to an Atomic Broadcast instance: subscribes the delivery
  listener, registers the checkpoint provider (when the protocol variant
  supports it), and reports broadcasts/deliveries to the metrics
  collector.

Because the application state is rebuilt either by full replay (basic
protocol) or from the checkpoint inside the Agreed queue (alternative
protocol), applications themselves never touch stable storage — exactly
the division of labour Section 5.2 describes.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.basic import BasicAtomicBroadcast, DeliveryListener
from repro.core.messages import AppMessage
from repro.metrics.collector import MetricsCollector
from repro.runtime import NodeComponent

__all__ = ["Application", "ReplicatedStateMachine"]


class Application:
    """A deterministic state machine replicated via Atomic Broadcast."""

    def apply(self, message: AppMessage) -> Any:
        """Apply one ordered message; must be deterministic."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """A self-contained, codec-friendly copy of the current state.

        Must not alias mutable internals: the snapshot may be logged,
        shipped in a ``state`` message and restored elsewhere.
        """
        raise NotImplementedError

    def restore(self, state: Any) -> None:
        """Replace the state with ``state`` (``None`` = initial state)."""
        raise NotImplementedError


class ReplicatedStateMachine(NodeComponent, DeliveryListener):
    """Glue between one node's Atomic Broadcast and its application."""

    name = "replicated-state-machine"

    def __init__(self, abcast: BasicAtomicBroadcast,
                 app_factory: Callable[[], Application],
                 collector: Optional[MetricsCollector] = None):
        NodeComponent.__init__(self)
        self.abcast = abcast
        self.app_factory = app_factory
        self.collector = collector
        self.app: Application = app_factory()
        self.incarnation = 0
        self.stream = 0  # bumped on start *and* on restore: each stream is
        # one monotone delivery sequence (verification checks each is a
        # contiguous slice of the canonical total order)
        self.applied_count = 0

    # -- lifecycle ---------------------------------------------------------

    def on_start(self) -> None:
        self.incarnation += 1
        self.stream += 1
        self.app = self.app_factory()  # volatile state starts fresh
        self.applied_count = 0
        self.abcast.add_listener(self)
        register = getattr(self.abcast, "register_checkpoint_provider", None)
        if register is not None:
            register(self.app.snapshot)

    # -- client interface ------------------------------------------------------

    def submit(self, payload: Any) -> AppMessage:
        """A-broadcast a command (non-blocking)."""
        assert self.node is not None
        message = self.abcast.submit(payload)
        if self.collector is not None:
            self.collector.note_broadcast(message.id, payload,
                                          self.node.sim.now)
        return message

    def broadcast(self, payload: Any):
        """A-broadcast a command with the paper's blocking semantics."""
        assert self.node is not None
        message = self.abcast.submit(payload)
        if self.collector is not None:
            self.collector.note_broadcast(message.id, payload,
                                          self.node.sim.now)
        while message not in self.abcast.agreed:
            yield self.abcast._delivered.wait()
        return message

    # -- delivery upcalls ----------------------------------------------------------

    def on_deliver(self, message: AppMessage) -> None:
        self.app.apply(message)
        self.applied_count += 1
        if self.collector is not None and self.node is not None:
            self.collector.note_delivery(self.node.node_id, message.id,
                                         self.node.sim.now,
                                         self.stream)

    def on_restore(self, state: Any) -> None:
        self.stream += 1
        self.app.restore(state)
