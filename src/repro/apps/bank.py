"""Replicated bank: accounts with transfers.

A classic total-order-sensitive workload: a transfer only succeeds if the
source account holds sufficient funds at the moment the command is
*applied*, so replicas that disagree on the order of transfers disagree
on which ones succeed.  The invariant checked by tests: the sum of all
balances equals the sum of all deposits (money is conserved), and all
replicas agree on every balance.

Commands:

* ``("open", account, initial_balance)``
* ``("deposit", account, amount)``
* ``("transfer", src, dst, amount)`` — no-op if ``src`` lacks funds.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.base import Application
from repro.core.messages import AppMessage

__all__ = ["Bank"]


class Bank(Application):
    """Account ledger state machine."""

    def __init__(self) -> None:
        self.balances: Dict[str, int] = {}
        self.applied = 0
        self.rejected = 0

    def apply(self, message: AppMessage) -> Any:
        command = message.payload
        op = command[0]
        self.applied += 1
        if op == "open":
            _, account, initial = command
            if account not in self.balances:
                self.balances[account] = int(initial)
            return self.balances[account]
        if op == "deposit":
            _, account, amount = command
            self.balances[account] = \
                self.balances.get(account, 0) + int(amount)
            return self.balances[account]
        if op == "transfer":
            _, src, dst, amount = command
            amount = int(amount)
            if self.balances.get(src, 0) >= amount:
                self.balances[src] -= amount
                self.balances[dst] = self.balances.get(dst, 0) + amount
                return True
            self.rejected += 1
            return False
        raise ValueError(f"unknown bank command {op!r}")

    def snapshot(self) -> Any:
        return {"balances": dict(self.balances),
                "applied": self.applied,
                "rejected": self.rejected}

    def restore(self, state: Any) -> None:
        if state is None:
            self.balances = {}
            self.applied = 0
            self.rejected = 0
        else:
            self.balances = dict(state["balances"])
            self.applied = int(state["applied"])
            self.rejected = int(state["rejected"])

    def total(self) -> int:
        """Total money in the bank (conserved by transfers)."""
        return sum(self.balances.values())
