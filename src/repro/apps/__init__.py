"""Replicated applications built on Atomic Broadcast (Figure 5 interface)."""

from repro.apps.bank import Bank
from repro.apps.base import Application, ReplicatedStateMachine
from repro.apps.certifier import CertifyingDatabase, make_transaction
from repro.apps.counter import SequenceRecorder
from repro.apps.kvstore import KeyValueStore

__all__ = [
    "Application",
    "Bank",
    "CertifyingDatabase",
    "KeyValueStore",
    "ReplicatedStateMachine",
    "SequenceRecorder",
    "make_transaction",
]
