"""Broadcast workload generators.

A workload schedules ``A-broadcast`` submissions against a cluster.  All
generators are seeded and therefore deterministic; submissions aimed at a
node that happens to be down are silently skipped (a down process cannot
invoke ``A-broadcast``), which the paper's model permits.

When the cluster runs with admission control
(:class:`~repro.flow.controller.FlowConfig`), a submission can be
rejected with :class:`~repro.errors.OverloadError`.  Every generator
then applies *backpressure*: the rejected broadcast is retried after a
seeded, jittered exponential backoff
(:class:`~repro.flow.controller.BackoffPolicy`) until it is accepted or
the retry budget runs out.  The backoff stream is created lazily and
drawn from only on rejection, so workloads against unthrottled clusters
(the default) consume exactly the randomness they always did.

* :class:`PoissonWorkload` — independent Poisson arrivals per node
  (open-loop offered load).
* :class:`BurstyWorkload` — on/off (burst/silence) arrival pattern.
* :class:`SkewedWorkload` — Zipf-like weights: a few hot senders.
* :class:`ClosedLoopWorkload` — each node keeps a fixed window of
  outstanding blocking broadcasts (measures sustainable throughput).
* :class:`ScheduledWorkload` — an explicit (time, node, payload) list.
"""

from __future__ import annotations

import random  # seeded per-workload random.Random instances only
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import OverloadError
from repro.flow.controller import BackoffPolicy

__all__ = [
    "PoissonWorkload",
    "BurstyWorkload",
    "SkewedWorkload",
    "ClosedLoopWorkload",
    "ScheduledWorkload",
]


def _default_payload(node_id: int, index: int) -> Any:
    return ("msg", node_id, index)


class _SubmissionWorkload:
    """Shared machinery: pre-draw (time, node) pairs, install as timers.

    Overload handling: a submission the node's flow controller rejects
    is rescheduled after a jittered exponential backoff, and the
    ``offered`` / ``rejected_attempts`` / ``retries`` / ``gave_up``
    counters record the whole exchange.  ``pending_retries`` counts
    broadcasts still in a backoff chain — a harness can drain them
    before verifying exact admission accounting.
    """

    def __init__(self, payload_fn: Optional[Callable[[int, int], Any]] = None,
                 backoff: Optional[BackoffPolicy] = None):
        self.payload_fn = payload_fn or _default_payload
        self.backoff = backoff or BackoffPolicy()
        self.submitted = 0
        self.offered = 0            # admission attempts, retries included
        self.rejected_attempts = 0
        self.retries = 0
        self.gave_up = 0
        self.pending_retries = 0
        # Lazy: only a throttled cluster ever draws from this stream, so
        # unthrottled runs keep their historical randomness untouched.
        self._backoff_rng: Optional[random.Random] = None

    def arrivals(self, cluster) -> List[Tuple[float, int]]:
        """Return the (time, node_id) submission plan."""
        raise NotImplementedError

    def install(self, cluster) -> int:
        """Schedule every submission on the cluster; returns the count."""
        plan = sorted(self.arrivals(cluster))
        counters = {node_id: 0 for node_id in cluster.node_ids()}
        for when, node_id in plan:
            counters[node_id] += 1
            payload = self.payload_fn(node_id, counters[node_id])
            cluster.sim.schedule(when, self._submit, cluster, node_id,
                                 payload)
        return len(plan)

    def _backoff_stream(self) -> random.Random:
        if self._backoff_rng is None:
            self._backoff_rng = random.Random(
                f"flow-backoff:{getattr(self, 'seed', 0)}")
        return self._backoff_rng

    def _submit(self, cluster, node_id: int, payload: Any,
                attempt: int = 0) -> None:
        if not cluster.nodes[node_id].up:
            if attempt:
                self.pending_retries -= 1
            return  # a down process cannot invoke A-broadcast
        self.offered += 1
        try:
            cluster.submit(node_id, payload)
        except OverloadError:
            self.rejected_attempts += 1
            delay = self.backoff.delay(attempt, self._backoff_stream())
            if delay is None:
                self.gave_up += 1
                if attempt:
                    self.pending_retries -= 1
                return
            self.retries += 1
            if not attempt:
                self.pending_retries += 1
            cluster.sim.schedule(delay, self._submit, cluster, node_id,
                                 payload, attempt + 1)
            return
        if attempt:
            self.pending_retries -= 1
        self.submitted += 1


class PoissonWorkload(_SubmissionWorkload):
    """Independent Poisson arrivals at every node."""

    def __init__(self, rate_per_node: float, duration: float,
                 start: float = 0.5, seed: int = 0,
                 payload_fn: Optional[Callable[[int, int], Any]] = None):
        super().__init__(payload_fn)
        self.rate_per_node = rate_per_node
        self.duration = duration
        self.start = start
        self.seed = seed

    def arrivals(self, cluster) -> List[Tuple[float, int]]:
        rng = random.Random(self.seed)
        plan: List[Tuple[float, int]] = []
        for node_id in cluster.node_ids():
            t = self.start
            while True:
                t += rng.expovariate(self.rate_per_node)
                if t >= self.start + self.duration:
                    break
                plan.append((t, node_id))
        return plan


class BurstyWorkload(_SubmissionWorkload):
    """On/off arrivals: bursts of back-to-back messages, then silence."""

    def __init__(self, burst_size: int, burst_spacing: float,
                 bursts: int, intra_gap: float = 0.01,
                 start: float = 0.5, seed: int = 0,
                 payload_fn: Optional[Callable[[int, int], Any]] = None):
        super().__init__(payload_fn)
        self.burst_size = burst_size
        self.burst_spacing = burst_spacing
        self.bursts = bursts
        self.intra_gap = intra_gap
        self.start = start
        self.seed = seed

    def arrivals(self, cluster) -> List[Tuple[float, int]]:
        rng = random.Random(self.seed)
        node_ids = cluster.node_ids()
        plan: List[Tuple[float, int]] = []
        t = self.start
        for _ in range(self.bursts):
            sender = rng.choice(node_ids)
            for i in range(self.burst_size):
                plan.append((t + i * self.intra_gap, sender))
            t += self.burst_spacing
        return plan


class SkewedWorkload(_SubmissionWorkload):
    """Zipf-weighted senders: node ``i`` sends with weight ``1/(i+1)^s``."""

    def __init__(self, total_messages: int, duration: float,
                 skew: float = 1.0, start: float = 0.5, seed: int = 0,
                 payload_fn: Optional[Callable[[int, int], Any]] = None):
        super().__init__(payload_fn)
        self.total_messages = total_messages
        self.duration = duration
        self.skew = skew
        self.start = start
        self.seed = seed

    def arrivals(self, cluster) -> List[Tuple[float, int]]:
        rng = random.Random(self.seed)
        node_ids = cluster.node_ids()
        weights = [1.0 / (i + 1) ** self.skew for i in range(len(node_ids))]
        plan: List[Tuple[float, int]] = []
        for _ in range(self.total_messages):
            when = self.start + rng.random() * self.duration
            sender = rng.choices(node_ids, weights=weights)[0]
            plan.append((when, sender))
        return plan


class ScheduledWorkload(_SubmissionWorkload):
    """Explicit submission plan: ``[(time, node_id, payload), ...]``."""

    def __init__(self, plan: Sequence[Tuple[float, int, Any]]):
        super().__init__()
        self.plan = list(plan)

    def arrivals(self, cluster) -> List[Tuple[float, int]]:  # pragma: no cover
        raise NotImplementedError("ScheduledWorkload installs directly")

    def install(self, cluster) -> int:
        for when, node_id, payload in self.plan:
            cluster.sim.schedule(when, self._submit, cluster, node_id,
                                 payload)
        return len(self.plan)


class ClosedLoopWorkload:
    """Fixed number of outstanding blocking broadcasts per node.

    Each node runs ``window`` client tasks; every task issues a blocking
    ``A-broadcast`` and immediately issues the next one when it returns.
    This measures *sustainable* ordered throughput, the metric batching
    (Section 5.4) is supposed to improve.  Client tasks die with the node
    on a crash and are restarted on recovery by re-installation (closed
    loops are used in failure-free benches).
    """

    def __init__(self, window: int = 4, start: float = 0.5,
                 messages_per_client: Optional[int] = None,
                 payload_fn: Optional[Callable[[int, int], Any]] = None,
                 backoff: Optional[BackoffPolicy] = None):
        self.window = window
        self.start = start
        self.messages_per_client = messages_per_client
        self.payload_fn = payload_fn or _default_payload
        self.backoff = backoff or BackoffPolicy()
        self.submitted = 0
        self.rejected_attempts = 0
        self.gave_up = 0
        self._backoff_rng: Optional[random.Random] = None

    def install(self, cluster) -> int:
        for node_id in cluster.node_ids():
            for client in range(self.window):
                cluster.sim.schedule(self.start, self._start_client,
                                     cluster, node_id, client)
        return 0

    def _start_client(self, cluster, node_id: int, client: int) -> None:
        node = cluster.nodes[node_id]
        if not node.up:
            return
        node.spawn(self._client_loop(cluster, node_id, client),
                   f"client-{client}")

    def _client_loop(self, cluster, node_id: int, client: int):
        rsm = cluster.rsms[node_id]
        index = 0
        while (self.messages_per_client is None
               or index < self.messages_per_client):
            index += 1
            payload = self.payload_fn(node_id, client * 1_000_000 + index)
            # A closed-loop client is the textbook backpressure citizen:
            # on rejection it sleeps out the backoff and re-offers the
            # same command instead of issuing the next one.
            attempt = 0
            while True:
                try:
                    yield from rsm.broadcast(payload)
                except OverloadError:
                    self.rejected_attempts += 1
                    if self._backoff_rng is None:
                        self._backoff_rng = random.Random(
                            f"flow-backoff:closed:{node_id}:{client}")
                    delay = self.backoff.delay(attempt, self._backoff_rng)
                    if delay is None:
                        self.gave_up += 1
                        break
                    attempt += 1
                    yield delay
                    continue
                self.submitted += 1
                break
