"""Workload generators for scenario runs and benchmarks."""

from repro.workloads.generators import (BurstyWorkload, ClosedLoopWorkload,
                                        PoissonWorkload, ScheduledWorkload,
                                        SkewedWorkload)

__all__ = [
    "BurstyWorkload",
    "ClosedLoopWorkload",
    "PoissonWorkload",
    "ScheduledWorkload",
    "SkewedWorkload",
]
