"""repro — Atomic Broadcast in Asynchronous Crash-Recovery Distributed Systems.

A complete, executable reproduction of Rodrigues & Raynal (ICDCS 2000):
the consensus-based Atomic Broadcast protocols for the crash-recovery
model (Figures 2-4), every substrate they stand on (fair-lossy transport,
stable storage, failure detection, crash-recovery consensus), the
baselines they are compared against, and a scenario harness that verifies
the Validity / Integrity / Termination / Total Order properties on every
run.

Quickstart::

    from repro import ClusterConfig, Scenario, run_scenario
    from repro.workloads import PoissonWorkload

    result = run_scenario(Scenario(
        cluster=ClusterConfig(n=3, seed=1, protocol="basic"),
        workload=PoissonWorkload(rate_per_node=2.0, duration=10.0, seed=1),
        duration=15.0,
    ))
    print(result.metrics.throughput, len(result.report.canonical))

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced claims.
"""

from repro.core import (AlternativeAtomicBroadcast, AlternativeConfig,
                        AppMessage, BasicAtomicBroadcast, MessageId)
from repro.harness import (Cluster, ClusterConfig, Scenario, ScenarioResult,
                           run_scenario, verify_run)
from repro.runtime import SeedSequence, Simulator
from repro.sim import FaultSchedule, RandomFaults
from repro.transport import NetworkConfig

__version__ = "1.0.0"

__all__ = [
    "AlternativeAtomicBroadcast",
    "AlternativeConfig",
    "AppMessage",
    "BasicAtomicBroadcast",
    "Cluster",
    "ClusterConfig",
    "FaultSchedule",
    "MessageId",
    "NetworkConfig",
    "RandomFaults",
    "Scenario",
    "ScenarioResult",
    "SeedSequence",
    "Simulator",
    "run_scenario",
    "verify_run",
    "__version__",
]
