"""Ω leader oracle derived from the heartbeat detector.

Ω is the weakest failure detector for consensus: it eventually outputs the
same good process at every good process.  We derive it the classic way —
trust the lowest-id peer that is not currently suspected.  Once the
heartbeat detector stops making mistakes about good processes (its
timeouts have adapted), every up process trusts the same lowest-id good
process forever, which is exactly the stability window the consensus
layer needs to terminate.
"""

from __future__ import annotations

from repro.fdetect.heartbeat import HeartbeatDetector
from repro.runtime import NodeComponent, Signal

__all__ = ["OmegaOracle"]


class OmegaOracle(NodeComponent):
    """Per-node eventual leader election."""

    name = "omega"

    def __init__(self, detector: HeartbeatDetector):
        super().__init__()
        self.detector = detector
        self.changed: Signal = None  # type: ignore[assignment]
        self._last_leader: int = -1

    def on_start(self) -> None:
        assert self.node is not None
        self.changed = self.node.sim.signal(f"omega@{self.node.node_id}")
        self._last_leader = -1
        self.node.spawn(self._watch(), "omega-watch")

    def leader(self) -> int:
        """The currently trusted leader (lowest unsuspected id)."""
        assert self.node is not None
        suspects = self.detector.suspects()
        candidates = [peer for peer in self.detector.endpoint.peers()
                      if peer not in suspects]
        if not candidates:  # everyone suspected: fall back to self
            return self.node.node_id
        return min(candidates)

    def is_leader(self) -> bool:
        """True if this node currently trusts itself."""
        assert self.node is not None
        return self.leader() == self.node.node_id

    def _watch(self):
        """Re-evaluate leadership whenever the detector output changes."""
        while True:
            yield self.detector.changed.wait()
            current = self.leader()
            if current != self._last_leader:
                self._last_leader = current
                self.changed.notify(current)
