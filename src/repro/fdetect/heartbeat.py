"""Heartbeat failure detector with adaptive timeouts.

An eventually-perfect-style detector for the crash-recovery model: every
up process periodically multisends ``ALIVE(epoch)``; a peer is *suspected*
when no heartbeat has arrived within the current (per-peer) timeout.

Two properties matter for the consensus layer built on top:

* **Completeness** — a process that stays down stops sending heartbeats
  and is eventually suspected by every up process.
* **Eventual accuracy** — each time a suspicion proves wrong (a heartbeat
  arrives from a suspected peer) that peer's timeout is increased, so in
  runs whose delays are bounded a good process is eventually never
  suspected.

The heartbeat carries an *epoch* counter logged in stable storage and
incremented on every start/recovery, in the spirit of the unbounded
failure detectors of Aguilera, Chen and Toueg [1]: observers can tell a
recovered incarnation from a stale one, and :meth:`epoch_of` exposes the
count so layers above can detect unstable (oscillating) peers.

The Atomic Broadcast layer itself never reads this detector — the paper's
protocol is failure-detector-free.  Only the consensus substrate (via the
Ω oracle in :mod:`repro.fdetect.omega`) uses it.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.runtime import NodeComponent, Signal
from repro.transport.endpoint import Endpoint
from repro.transport.message import WireMessage

__all__ = ["Heartbeat", "HeartbeatDetector"]


class Heartbeat(WireMessage):
    """``ALIVE`` wire message: sender's current epoch."""

    type = "fd.alive"
    fields = ("epoch",)

    def __init__(self, epoch: int):
        self.epoch = epoch


class HeartbeatDetector(NodeComponent):
    """Per-node failure detector module (one oracle per process).

    Parameters
    ----------
    endpoint:
        The node's transport endpoint.
    period:
        Heartbeat emission period.
    initial_timeout:
        Starting suspicion timeout per peer (adapted upwards on mistakes).
    timeout_increment:
        Additive increase applied each time a suspicion is refuted.
    """

    name = "failure-detector"

    EPOCH_KEY = ("fd", "epoch")

    def __init__(self, endpoint: Endpoint, period: float = 0.5,
                 initial_timeout: float = 2.0,
                 timeout_increment: float = 0.5,
                 durable_epoch: bool = True):
        super().__init__()
        self.endpoint = endpoint
        self.period = period
        self.initial_timeout = initial_timeout
        self.timeout_increment = timeout_increment
        self.durable_epoch = durable_epoch
        self.epoch = 0
        self._last_heard: Dict[int, float] = {}
        self._timeouts: Dict[int, float] = {}
        self._suspects: Set[int] = set()
        self._epochs: Dict[int, int] = {}
        self.changed: Signal = None  # type: ignore[assignment]

    # -- lifecycle -----------------------------------------------------------

    def on_start(self) -> None:
        node = self.node
        assert node is not None
        sim = node.sim
        self.changed = sim.signal(f"fd-changed@{node.node_id}")
        # New incarnation: bump the epoch counter (durable in the
        # crash-recovery model; volatile suffices for crash-stop).
        if self.durable_epoch:
            self.epoch = int(node.storage.retrieve(self.EPOCH_KEY, 0)) + 1
            node.storage.log(self.EPOCH_KEY, self.epoch)  # repro: noqa(REC003) -- epochs must advance per restart so peers discard stale suspicions; skipping an epoch on a mid-recovery crash is harmless
        else:
            self.epoch += 1
        self._last_heard = {peer: sim.now for peer in self.endpoint.peers()}
        self._timeouts = {}
        self._suspects = set()
        self._epochs = {}
        self.endpoint.register(Heartbeat.type, self._on_heartbeat)
        if self.endpoint.view_source is not None:
            # View installs reshape the monitored set.  Subscriptions are
            # volatile on both sides; the view manager sits below this
            # component in the stack, so its on_start (which clears the
            # subscriber list) has already run.
            self.endpoint.view_source.subscribe(self._on_view_change)
        node.spawn(self._beat_loop(), "fd-beat")
        node.spawn(self._check_loop(), "fd-check")

    def on_crash(self) -> None:
        self._last_heard = {}
        self._suspects = set()
        self._epochs = {}

    # -- queries ----------------------------------------------------------------

    def suspects(self) -> Set[int]:
        """The current set of suspected peers (never includes self)."""
        return set(self._suspects)

    def is_suspected(self, peer: int) -> bool:
        """True if ``peer`` is currently suspected."""
        return peer in self._suspects

    def epoch_of(self, peer: int) -> int:
        """Last epoch counter heard from ``peer`` (0 if never heard)."""
        return self._epochs.get(peer, 0)

    def timeout_for(self, peer: int) -> float:
        """Current (adapted) suspicion timeout for ``peer``."""
        return self._timeouts.get(peer, self.initial_timeout)

    # -- internals -------------------------------------------------------------------

    def _on_view_change(self, view) -> None:
        """Align the monitored set with a freshly installed view."""
        assert self.node is not None
        now = self.node.sim.now
        members = set(view.members)
        for peer in list(self._last_heard):
            if peer not in members:
                del self._last_heard[peer]
        removed = self._suspects - members
        self._suspects -= removed
        for peer in list(self._epochs):
            if peer not in members:
                del self._epochs[peer]
        for peer in members:
            if peer != self.node.node_id:
                self._last_heard.setdefault(peer, now)
        if removed:
            self.changed.notify()

    def _on_heartbeat(self, message: Heartbeat, sender: int) -> None:
        assert self.node is not None
        self._last_heard[sender] = self.node.sim.now
        self._epochs[sender] = max(self._epochs.get(sender, 0), message.epoch)
        if sender in self._suspects:
            # Wrong suspicion: rehabilitate and grow this peer's timeout.
            self._suspects.discard(sender)
            self._timeouts[sender] = (self.timeout_for(sender)
                                      + self.timeout_increment)
            self.node.sim.trace("fd", self.node.node_id, "rehabilitate",
                                peer=sender)
            self.changed.notify()

    def _beat_loop(self):
        while True:
            self.endpoint.multisend(Heartbeat(self.epoch))
            yield self.period

    def _check_loop(self):
        assert self.node is not None
        node = self.node
        while True:
            yield self.period
            now = node.sim.now
            newly_suspected = False
            for peer in self.endpoint.peers():
                if peer == node.node_id or peer in self._suspects:
                    continue
                last = self._last_heard.get(peer)
                if last is None:
                    # First sight of a freshly joined member: start its
                    # grace period now instead of instantly suspecting.
                    self._last_heard[peer] = now
                    continue
                if now - last > self.timeout_for(peer):
                    self._suspects.add(peer)
                    node.sim.trace("fd", node.node_id, "suspect",
                                   peer=peer)
                    newly_suspected = True
            if newly_suspected:
                self.changed.notify()
