"""Failure detection: heartbeat detector and Ω leader oracle.

Used only by the consensus substrate; the Atomic Broadcast layer is
failure-detector-free, as the paper emphasises (Sections 1, 3.5, 7).
"""

from repro.fdetect.heartbeat import Heartbeat, HeartbeatDetector
from repro.fdetect.omega import OmegaOracle

__all__ = ["Heartbeat", "HeartbeatDetector", "OmegaOracle"]
