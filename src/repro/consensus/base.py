"""The consensus black-box interface of Section 3.2.

The Atomic Broadcast layer sees consensus through exactly two primitives:

* ``propose(k, v)`` — propose value ``v`` for instance ``k``.  Proposing
  *is* logging: the proposal is durably recorded as the first operation
  (Section 4.2, "the log is done as the first operation of the
  Consensus"), which guarantees property P4 — a process always proposes
  the same value to instance ``k``, however many times it crashes and
  re-invokes ``propose``.
* ``decided(k)`` — the decision of instance ``k``; once an instance has
  decided, its result is *locked* (property P5) and every re-invocation
  returns the same value.

Both primitives are idempotent, as the paper requires: a recovering
process may re-invoke them for instances that already started or even
finished.

:class:`ConsensusService` implements the bookkeeping shared by every
concrete algorithm (proposal/decision logs, idempotence checks, waiting);
subclasses implement the agreement itself by overriding
:meth:`_activate`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.errors import ConsensusError, ProposalMismatch
from repro.runtime import NodeComponent, Signal

__all__ = ["ConsensusService"]


class ConsensusService(NodeComponent):
    """Shared base for consensus implementations.

    Stable-storage layout (per node)::

        consensus/<k>/proposal   — the value this process proposes to k
        consensus/<k>/decision   — the locked decision of instance k

    The ``consensus`` key prefix is what experiment E2 counts when
    checking that Atomic Broadcast adds no log operations of its own.
    """

    name = "consensus"

    PROPOSAL_KEY = "consensus"

    # Volatile caches of the durable proposal/decision logs, patrolled by
    # the WAL001 lint: log first, then cache (P4/P5 survive crashes).
    VOLATILE_FIELDS = ("_proposals", "_decisions")

    def __init__(self, namespace: str = "") -> None:
        super().__init__()
        # A non-empty namespace isolates this instance's durable state —
        # one consensus stack per process group (Section 6.4).
        self.namespace = namespace
        if namespace:
            self.PROPOSAL_KEY = f"consensus@{namespace}"
        self._decided_signal: Dict[int, Signal] = {}
        self._decisions: Dict[int, Any] = {}   # volatile decision cache
        self._proposals: Dict[int, Any] = {}   # volatile proposal cache
        # Optional omniscient observer (the metrics collector): sees each
        # locally-learned decision even after logs are garbage-collected.
        # Lives outside the fault model; protocols never read it.
        self.observer: Optional[Any] = None
        # Instances below the floor have had their durable records
        # garbage-collected here: this process must no longer participate
        # in them (an acceptor whose memory of an instance is gone would
        # otherwise hand out fresh promises and let a stale recovering
        # proposer re-decide it differently).  Volatile — the protocol
        # above re-establishes it from its durable checkpoint on
        # recovery, *before* any message of the new incarnation is
        # handled.
        self.instance_floor = 0

    # -- paper interface -------------------------------------------------------

    def propose(self, k: int, value: Any) -> None:
        """Propose ``value`` for instance ``k`` (idempotent; logs first).

        Raises :class:`~repro.errors.ProposalMismatch` if a *different*
        value was already proposed for ``k`` by this process — the
        protocol above must guarantee P4, and this check enforces it.
        """
        assert self.node is not None
        if k < 0:
            raise ConsensusError(f"negative instance number {k}")
        if value is None:
            raise ConsensusError(
                "None cannot be proposed (it is the 'undecided' sentinel); "
                "propose an empty set instead")
        existing = self.proposal_of(k)
        if existing is not None:
            if existing != value:
                raise ProposalMismatch(
                    f"instance {k}: proposed {existing!r}, now {value!r}")
        else:
            self.node.storage.log((self.PROPOSAL_KEY, k, "proposal"), value)
            self._proposals[k] = value
        self._activate(k)

    def decided_value(self, k: int) -> Optional[Any]:
        """The locked decision of instance ``k``, or ``None`` if undecided."""
        assert self.node is not None
        cached = self._decisions.get(k)
        if cached is not None:
            return cached
        stored = self.node.storage.retrieve(
            (self.PROPOSAL_KEY, k, "decision"), None)
        if stored is not None:
            self._decisions[k] = stored
        return stored

    def wait_decided(self, k: int) -> Generator[Any, Any, Any]:
        """Cooperative-blocking wait for the decision of instance ``k``.

        This is the paper's ``wait until decided(k, result)``; the
        generator's return value is the decision.
        """
        while True:
            value = self.decided_value(k)
            if value is not None:
                return value
            yield self.decision_signal(k).wait()

    # -- replay support (Section 4.2, recovery) -----------------------------------

    def proposal_of(self, k: int) -> Optional[Any]:
        """The value this process logged as its proposal to ``k``."""
        assert self.node is not None
        cached = self._proposals.get(k)
        if cached is not None:
            return cached
        stored = self.node.storage.retrieve(
            (self.PROPOSAL_KEY, k, "proposal"), None)
        if stored is not None:
            self._proposals[k] = stored
        return stored

    def logged_instances(self) -> Dict[int, Any]:
        """All instances with a logged proposal, for the replay procedure."""
        assert self.node is not None
        found: Dict[int, Any] = {}
        for key in self.node.storage.keys(self.PROPOSAL_KEY):
            parts = key.split("/")
            if len(parts) == 3 and parts[2] == "proposal":
                found[int(parts[1])] = self.node.storage.retrieve(key)
        return found

    def set_instance_floor(self, k: int) -> None:
        """Raise the participation floor (never lowers; idempotent)."""
        if k > self.instance_floor:
            self.instance_floor = k

    def discard_instances_below(self, k: int) -> int:
        """Garbage-collect proposal/decision logs of instances < ``k``.

        Called by the checkpointing protocol variant (Section 5.1, line c:
        old proposed values that will not be replayed can be discarded).
        Returns the number of instances discarded.
        """
        assert self.node is not None
        self.set_instance_floor(k)
        discarded = 0
        for key in list(self.node.storage.keys(self.PROPOSAL_KEY)):
            parts = key.split("/")
            if len(parts) == 3 and int(parts[1]) < k:
                self.node.storage.delete(key)
                discarded += 1
        for instance in [i for i in self._proposals if i < k]:
            del self._proposals[instance]
        for instance in [i for i in self._decisions if i < k]:
            del self._decisions[instance]
        # Decision signals below the floor have already fired (or never
        # will be waited on again): keep the cache from growing with the
        # instance history.
        for instance in [i for i in self._decided_signal if i < k]:
            del self._decided_signal[instance]
        return discarded

    # -- shared internals -----------------------------------------------------------

    def decision_signal(self, k: int) -> Signal:
        """Signal notified when instance ``k`` decides (volatile)."""
        assert self.node is not None
        signal = self._decided_signal.get(k)
        if signal is None:
            signal = self.node.sim.signal(f"decided:{k}@{self.node.node_id}")
            self._decided_signal[k] = signal
        return signal

    def _record_decision(self, k: int, value: Any) -> None:
        """Lock the decision of instance ``k`` (idempotent)."""
        assert self.node is not None
        existing = self.decided_value(k)
        if existing is not None:
            if existing != value:
                raise ConsensusError(
                    f"instance {k} decided twice with different values: "
                    f"{existing!r} then {value!r}")
            return
        self.node.storage.log((self.PROPOSAL_KEY, k, "decision"), value)
        self._decisions[k] = value
        self.node.sim.trace("decision", self.node.node_id, "locked",
                            k=k, size=len(value))
        self._notify_observer(k, value)
        self.decision_signal(k).notify(value)

    def _notify_observer(self, k: int, value: Any) -> None:
        if self.observer is not None:
            self.observer.note_decision(k, value)

    def on_crash(self) -> None:
        self._decided_signal = {}
        self._decisions = {}
        self._proposals = {}
        self.instance_floor = 0

    # -- algorithm hook ----------------------------------------------------------------

    def _activate(self, k: int) -> None:
        """Start (or re-join) the agreement for instance ``k``.

        Called by :meth:`propose`; idempotent.  Subclasses spawn their
        per-instance driver here.
        """
        raise NotImplementedError
