"""Consensus substrates (the paper's black box, Section 3).

* :class:`~repro.consensus.base.ConsensusService` — the ``propose`` /
  ``decided`` interface with idempotence and durable proposal/decision
  logs.
* :class:`~repro.consensus.paxos.PaxosConsensus` — crash-recovery
  consensus (durable acceptor state), the role of [1]/[11]/[14].
* :class:`~repro.consensus.chandra_toueg.ChandraTouegConsensus` —
  ◇S rotating-coordinator consensus for the crash-stop baseline [3].
"""

from repro.consensus.base import ConsensusService
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.consensus.paxos import PaxosConsensus

__all__ = ["ChandraTouegConsensus", "ConsensusService", "PaxosConsensus"]
