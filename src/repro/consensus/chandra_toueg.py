"""Chandra-Toueg ◇S consensus for the crash-**stop** model.

The rotating-coordinator algorithm of Chandra & Toueg [3], implemented
for the baseline Atomic Broadcast (:mod:`repro.baselines.ct_abcast`): in
the crash-no-recovery model with reliable channels, the paper's protocol
"reduces to the Chandra-Toueg Atomic Broadcast protocol" (Section 5.6),
and experiment E8 compares the two in exactly that setting.

The algorithm proceeds in asynchronous rounds; round ``r`` is coordinated
by process ``r mod n``:

1. every process sends its ``(estimate, ts)`` to the coordinator;
2. the coordinator gathers a majority, adopts the estimate with the
   highest timestamp and multicasts it as the round's proposal;
3. each process either adopts the proposal (ack) or, if its failure
   detector suspects the coordinator, moves on (nack);
4. a coordinator that gathers a majority of acks decides and disseminates
   the decision with an eager reliable broadcast (re-multisend on first
   receipt).

Assumptions (inherited from [3]): crash-stop faults, ``f < n/2``, and
reliable channels — run it on a loss-free network.  Nothing is written to
stable storage: in the crash-stop model, crashed processes never return.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from repro.consensus.base import ConsensusService
from repro.fdetect.heartbeat import HeartbeatDetector
from repro.runtime import AnyOf, Signal
from repro.transport.endpoint import Endpoint
from repro.transport.message import WireMessage

__all__ = ["ChandraTouegConsensus"]


class CTEstimate(WireMessage):
    """Phase 1: participant's current estimate, sent to the coordinator."""

    type = "ct.estimate"
    fields = ("k", "round", "estimate", "ts")

    def __init__(self, k: int, round: int, estimate: Any, ts: int):
        self.k = k
        self.round = round
        self.estimate = estimate
        self.ts = ts


class CTPropose(WireMessage):
    """Phase 2: coordinator's proposal for the round."""

    type = "ct.propose"
    fields = ("k", "round", "value")

    def __init__(self, k: int, round: int, value: Any):
        self.k = k
        self.round = round
        self.value = value


class CTAck(WireMessage):
    """Phase 3: participant adopted the proposal."""

    type = "ct.ack"
    fields = ("k", "round")

    def __init__(self, k: int, round: int):
        self.k = k
        self.round = round


class CTNack(WireMessage):
    """Phase 3: participant suspected the coordinator and moved on."""

    type = "ct.nack"
    fields = ("k", "round")

    def __init__(self, k: int, round: int):
        self.k = k
        self.round = round


class CTDecide(WireMessage):
    """Phase 4: the decision, spread by eager reliable broadcast."""

    type = "ct.decide"
    fields = ("k", "value")

    def __init__(self, k: int, value: Any):
        self.k = k
        self.value = value


class _InstanceState:
    """Volatile per-instance message tallies."""

    __slots__ = ("estimates", "proposals", "acks", "nacks", "signal")

    def __init__(self, signal: Signal):
        self.estimates: Dict[int, Dict[int, Tuple[Any, int]]] = {}
        self.proposals: Dict[int, Any] = {}
        self.acks: Dict[int, Set[int]] = {}
        self.nacks: Dict[int, Set[int]] = {}
        self.signal = signal


class ChandraTouegConsensus(ConsensusService):
    """Rotating-coordinator ◇S consensus (crash-stop, no logging)."""

    name = "chandra-toueg"

    def __init__(self, endpoint: Endpoint, detector: HeartbeatDetector):
        super().__init__()
        self.endpoint = endpoint
        self.detector = detector
        self._instances: Dict[int, _InstanceState] = {}
        self._drivers: Set[int] = set()

    # -- lifecycle -----------------------------------------------------------

    def on_start(self) -> None:
        self._instances = {}
        self._drivers = set()
        self.endpoint.register(CTEstimate.type, self._on_estimate)
        self.endpoint.register(CTPropose.type, self._on_propose)
        self.endpoint.register(CTAck.type, self._on_ack)
        self.endpoint.register(CTNack.type, self._on_nack)
        self.endpoint.register(CTDecide.type, self._on_decide)

    def on_crash(self) -> None:
        super().on_crash()
        self._instances = {}
        self._drivers = set()

    # -- crash-stop storage: everything volatile ---------------------------------

    def propose(self, k: int, value: Any) -> None:
        existing = self._proposals.get(k)
        if existing is None:
            self._proposals[k] = value
        self._activate(k)  # repro: noqa(WAL003) -- crash-stop model: no stable storage by design ([3])

    def proposal_of(self, k: int) -> Optional[Any]:
        return self._proposals.get(k)

    def decided_value(self, k: int) -> Optional[Any]:
        return self._decisions.get(k)

    def _record_decision(self, k: int, value: Any) -> None:
        if k not in self._decisions:
            self._decisions[k] = value
            self._notify_observer(k, value)
            self.decision_signal(k).notify(value)
        # Round bookkeeping for a decided instance is dead weight; drop
        # it, waking any driver still blocked on the round signal so it
        # re-checks decided_value() and exits.
        state = self._instances.pop(k, None)
        if state is not None:
            state.signal.notify()

    # -- message handlers --------------------------------------------------------

    def _state(self, k: int) -> _InstanceState:
        state = self._instances.get(k)
        if state is None:
            assert self.node is not None
            state = _InstanceState(
                self.node.sim.signal(f"ct:{k}@{self.node.node_id}"))
            self._instances[k] = state
        return state

    def _on_estimate(self, msg: CTEstimate, sender: int) -> None:
        if self.decided_value(msg.k) is not None:
            return  # late round traffic must not resurrect a GC'd instance
        state = self._state(msg.k)
        state.estimates.setdefault(msg.round, {})[sender] = \
            (msg.estimate, msg.ts)
        state.signal.notify()

    def _on_propose(self, msg: CTPropose, sender: int) -> None:
        if self.decided_value(msg.k) is not None:
            return
        state = self._state(msg.k)
        state.proposals[msg.round] = msg.value
        state.signal.notify()

    def _on_ack(self, msg: CTAck, sender: int) -> None:
        if self.decided_value(msg.k) is not None:
            return
        state = self._state(msg.k)
        state.acks.setdefault(msg.round, set()).add(sender)
        state.signal.notify()

    def _on_nack(self, msg: CTNack, sender: int) -> None:
        if self.decided_value(msg.k) is not None:
            return
        state = self._state(msg.k)
        state.nacks.setdefault(msg.round, set()).add(sender)
        state.signal.notify()

    def _on_decide(self, msg: CTDecide, sender: int) -> None:
        if self.decided_value(msg.k) is None:
            # Eager reliable broadcast: relay before delivering, so every
            # correct process receives the decision even if the sender
            # crashed mid-multisend.
            self._record_decision(msg.k, msg.value)
            self.endpoint.multisend(  # repro: noqa(WAL003) -- crash-stop model: decisions are volatile by design
                CTDecide(msg.k, msg.value))

    # -- driver ----------------------------------------------------------------------

    def _quorum(self) -> int:
        return len(self.endpoint.peers()) // 2 + 1

    def _activate(self, k: int) -> None:
        if k in self._drivers or self.decided_value(k) is not None:
            return
        assert self.node is not None
        self._drivers.add(k)
        self.node.spawn(self._drive(k), f"ct-{k}")

    def _drive(self, k: int):
        assert self.node is not None
        peers = self.endpoint.peers()
        n = len(peers)
        me = self.node.node_id
        state = self._state(k)
        estimate: Any = self.proposal_of(k)
        ts = 0
        round_no = 0
        while self.decided_value(k) is None:
            coordinator = peers[round_no % n]
            # Phase 1: send the current estimate to the coordinator.
            self.endpoint.send(coordinator,
                               CTEstimate(k, round_no, estimate, ts))
            # Phase 2 (coordinator only): gather a majority of estimates
            # and multicast the freshest one.
            if coordinator == me:
                while (len(state.estimates.get(round_no, {})) < self._quorum()
                       and self.decided_value(k) is None):
                    yield state.signal.wait()
                if self.decided_value(k) is not None:
                    break
                freshest = max(state.estimates[round_no].values(),
                               key=lambda pair: pair[1])
                # Record locally before multisending: the loopback copy is
                # asynchronous and the coordinator adopts its own proposal.
                state.proposals[round_no] = freshest[0]
                self.endpoint.multisend(CTPropose(k, round_no, freshest[0]))
            # Phase 3: adopt the proposal or give up on the coordinator.
            while (round_no not in state.proposals
                   and not self.detector.is_suspected(coordinator)
                   and coordinator != me
                   and self.decided_value(k) is None):
                yield AnyOf([state.signal.wait(),
                             self.detector.changed.wait()])
            if self.decided_value(k) is not None:
                break
            if round_no in state.proposals:
                estimate = state.proposals[round_no]
                ts = round_no + 1
                self.endpoint.send(coordinator, CTAck(k, round_no))
            else:
                self.endpoint.send(coordinator, CTNack(k, round_no))
            # Phase 4 (coordinator only): majority of acks ⇒ decide.
            if coordinator == me:
                while (len(state.acks.get(round_no, set())) < self._quorum()
                       and len(state.nacks.get(round_no, set()))
                       < self._quorum()
                       and self.decided_value(k) is None):
                    yield state.signal.wait()
                if self.decided_value(k) is not None:
                    break
                if len(state.acks.get(round_no, set())) >= self._quorum():
                    decision = state.proposals[round_no]
                    self._record_decision(k, decision)
                    self.endpoint.multisend(  # repro: noqa(WAL003) -- crash-stop model: decisions are volatile by design
                        CTDecide(k, decision))
                    break
            round_no += 1
        self._drivers.discard(k)
