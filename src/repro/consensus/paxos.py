"""Consensus for the crash-recovery model (Paxos/Synod engine).

This is the "black box" the Atomic Broadcast protocol of the paper plugs
into — the role played by the protocols of Aguilera-Chen-Toueg [1],
Hurfin-Mostefaoui-Raynal [11] and Oliveira-Guerraoui-Schiper [14].  We
implement it as a ballot-based Synod engine because its correctness story
under crash-recovery is the best understood:

* **Acceptor state is durable.**  Each acceptor logs
  ``(promised, accepted_ballot, accepted_value)`` before answering, so a
  crash-and-recover acceptor can never un-promise or forget an accepted
  value — this is what makes Uniform Agreement hold across recoveries.
* **Ballots are leader-disjoint.**  Ballot ``b`` belongs to process
  ``b mod n``; a leader picks fresh ballots by bumping a *durable*
  per-instance attempt counter, so recovered incarnations never reuse a
  ballot.
* **Leadership comes from Ω** (:class:`~repro.fdetect.omega.OmegaOracle`).
  Once the underlying failure detector stabilises, a single good leader
  runs phase 1 / phase 2 to completion and multisends ``DECIDE``.
* **Decisions are locked and gossiped on demand.**  Any process that
  receives *any* message for an instance it knows is decided replies with
  ``DECIDE``, so recovering processes (and the replay procedure of the
  Atomic Broadcast layer) always converge on the locked result (P5).

Setting ``durable=False`` turns off every stable-storage write, which is
sound in the crash-**stop** model (state is never lost because crashed
processes never come back).  The crash-stop baseline uses this mode.

Liveness requires a majority of good processes, the standard assumption
of the consensus substrate papers.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from repro.consensus.base import ConsensusService
from repro.fdetect.omega import OmegaOracle
from repro.runtime import AnyOf
from repro.transport.endpoint import Endpoint
from repro.transport.message import WireMessage

__all__ = [
    "PaxosConsensus",
    "Prepare",
    "Promise",
    "Accept",
    "Accepted",
    "Decide",
    "Nack",
]


class Prepare(WireMessage):
    """Phase-1a: leader asks acceptors to promise ballot ``ballot``."""

    type = "paxos.prepare"
    fields = ("k", "ballot")

    def __init__(self, k: int, ballot: int):
        self.k = k
        self.ballot = ballot


class Promise(WireMessage):
    """Phase-1b: acceptor promises; reports last accepted (ballot, value)."""

    type = "paxos.promise"
    fields = ("k", "ballot", "accepted_ballot", "accepted_value")

    def __init__(self, k: int, ballot: int, accepted_ballot: int,
                 accepted_value: Any):
        self.k = k
        self.ballot = ballot
        self.accepted_ballot = accepted_ballot
        self.accepted_value = accepted_value


class Accept(WireMessage):
    """Phase-2a: leader asks acceptors to accept ``value`` at ``ballot``."""

    type = "paxos.accept"
    fields = ("k", "ballot", "value")

    def __init__(self, k: int, ballot: int, value: Any):
        self.k = k
        self.ballot = ballot
        self.value = value


class Accepted(WireMessage):
    """Phase-2b: acceptor accepted ``ballot``."""

    type = "paxos.accepted"
    fields = ("k", "ballot")

    def __init__(self, k: int, ballot: int):
        self.k = k
        self.ballot = ballot


class Decide(WireMessage):
    """Decision dissemination (also sent in reply to stale traffic)."""

    type = "paxos.decide"
    fields = ("k", "value")

    def __init__(self, k: int, value: Any):
        self.k = k
        self.value = value


class Nack(WireMessage):
    """Rejection: the acceptor has promised a higher ballot."""

    type = "paxos.nack"
    fields = ("k", "promised")

    def __init__(self, k: int, promised: int):
        self.k = k
        self.promised = promised


class Query(WireMessage):
    """Decision pull: "does anyone know the outcome of instance k?"

    Sent by undecided non-leaders after a silence timeout so that a lost
    ``Decide`` is eventually recovered over the fair-loss channel.
    """

    type = "paxos.query"
    fields = ("k",)

    def __init__(self, k: int):
        self.k = k


class _Attempt:
    """Volatile per-ballot tally kept by the leader of an attempt."""

    __slots__ = ("ballot", "promises", "accepts", "value", "nacked")

    def __init__(self, ballot: int):
        self.ballot = ballot
        self.promises: Dict[int, Tuple[int, Any]] = {}
        self.accepts: Set[int] = set()
        self.value: Any = None
        self.nacked = False


class PaxosConsensus(ConsensusService):
    """Ballot-based consensus; durable (crash-recovery) by default.

    Parameters
    ----------
    endpoint:
        Transport endpoint of the owning node.
    omega:
        Ω leader oracle (drives who runs attempts).
    durable:
        When ``True`` (crash-recovery model) acceptor state, proposals and
        decisions are logged; when ``False`` (crash-stop model) everything
        stays volatile.
    attempt_timeout:
        How long a leader waits for a quorum before retrying with a higher
        ballot.
    """

    name = "paxos"

    ACCEPTOR_KEY = "paxos"

    # Volatile mirrors of durable acceptor state, patrolled by the WAL001
    # lint: mutations must reach stable storage before any dependent send
    # (an acceptor that answers before logging can un-promise on recovery).
    VOLATILE_FIELDS = ("_acceptor", "_attempt_counter")

    def __init__(self, endpoint: Endpoint, omega: OmegaOracle,
                 durable: bool = True, attempt_timeout: float = 1.0,
                 namespace: str = ""):
        super().__init__(namespace)
        if namespace:
            self.ACCEPTOR_KEY = f"paxos@{namespace}"
        self.endpoint = endpoint
        self.omega = omega
        self.durable = durable
        self.attempt_timeout = attempt_timeout
        # Volatile state, rebuilt on recovery.
        self._acceptor: Dict[int, Tuple[int, int, Any]] = {}
        self._attempts: Dict[int, _Attempt] = {}
        self._drivers: Set[int] = set()
        self._attempt_counter: Dict[int, int] = {}
        # Member-set snapshot per driven instance.  A proposer only ever
        # starts instance k after delivering the prefix through k-1, so
        # its installed view at activation is the *same* view every
        # other proposer of k uses — freezing it here keeps quorums of
        # one instance mutually intersecting even while later view
        # installs reshape ``endpoint.peers()`` under an in-flight
        # attempt (two live views can be epochs apart and their
        # majorities disjoint).  Volatile: a recovering proposer's view
        # is again the view of its delivered prefix, so re-snapshotting
        # reproduces the same set.
        self._instance_members: Dict[int, Tuple[int, ...]] = {}
        self._shadow_storage: Dict[str, Any] = {}  # non-durable mode only

    # -- lifecycle ------------------------------------------------------------

    def on_start(self) -> None:
        self._acceptor = {}
        self._attempts = {}
        self._drivers = set()
        self._attempt_counter = {}
        self._instance_members = {}
        self.endpoint.register(Prepare.type, self._on_prepare)
        self.endpoint.register(Promise.type, self._on_promise)
        self.endpoint.register(Accept.type, self._on_accept)
        self.endpoint.register(Accepted.type, self._on_accepted)
        self.endpoint.register(Decide.type, self._on_decide)
        self.endpoint.register(Nack.type, self._on_nack)
        self.endpoint.register(Query.type, self._on_query)

    def on_crash(self) -> None:
        super().on_crash()
        self._acceptor = {}
        self._attempts = {}
        self._drivers = set()
        self._attempt_counter = {}
        self._instance_members = {}
        if not self.durable:
            # Crash-stop misuse guard: in the crash-stop model processes do
            # not come back, so volatile shadow storage is simply dropped.
            self._shadow_storage = {}

    # -- durable/volatile storage shim --------------------------------------------

    def _store(self, key: Tuple[Any, ...], value: Any) -> None:
        assert self.node is not None
        if self.durable:
            self.node.storage.log(key, value)
        else:
            self._shadow_storage["/".join(str(p) for p in key)] = value  # repro: noqa(RES001) -- crash-stop stand-in for stable storage: holds exactly what the durable log would, GC'd by discard_instances_below

    def _load(self, key: Tuple[Any, ...], default: Any = None) -> Any:
        assert self.node is not None
        if self.durable:
            return self.node.storage.retrieve(key, default)
        return self._shadow_storage.get(
            "/".join(str(p) for p in key), default)

    # -- ConsensusService overrides -------------------------------------------------

    def propose(self, k: int, value: Any) -> None:
        if self.durable:
            super().propose(k, value)
            return
        # Non-durable mode: same idempotence contract, volatile bookkeeping.
        existing = self._proposals.get(k)
        if existing is None:
            self._proposals[k] = value
        self._activate(k)  # repro: noqa(WAL003) -- non-durable mode models crash-stop: no WAL by design; durable mode takes the super().propose path

    def proposal_of(self, k: int) -> Optional[Any]:
        if self.durable:
            return super().proposal_of(k)
        return self._proposals.get(k)

    def decided_value(self, k: int) -> Optional[Any]:
        if self.durable:
            return super().decided_value(k)
        return self._decisions.get(k)

    def _record_decision(self, k: int, value: Any) -> None:
        if self.durable:
            super()._record_decision(k, value)
            return
        if k not in self._decisions:
            self._decisions[k] = value
            self._notify_observer(k, value)
            self.decision_signal(k).notify(value)

    def discard_instances_below(self, k: int) -> int:
        """GC proposal/decision logs *and* acceptor state below ``k``.

        Safe only below the global watermark (every process's durable
        checkpoint has passed ``k``): no process will ever run or replay
        those instances again, so forgetting their accepted values cannot
        lead to a conflicting re-decision.
        """
        discarded = super().discard_instances_below(k)
        assert self.node is not None
        if self.durable:
            for key in list(self.node.storage.keys(self.ACCEPTOR_KEY)):
                parts = key.split("/")
                if len(parts) == 3 and int(parts[1]) < k:
                    self.node.storage.delete(key)
        for instance in [i for i in self._acceptor if i < k]:
            del self._acceptor[instance]
        for instance in [i for i in self._attempt_counter if i < k]:
            del self._attempt_counter[instance]
        for instance in [i for i in self._instance_members if i < k]:
            del self._instance_members[instance]
        return discarded

    # -- acceptor ------------------------------------------------------------------------

    def _acceptor_state(self, k: int) -> Tuple[int, int, Any]:
        """(promised, accepted_ballot, accepted_value); durable."""
        state = self._acceptor.get(k)
        if state is None:
            state = self._load((self.ACCEPTOR_KEY, k, "acceptor"),
                               (-1, -1, None))
            state = (int(state[0]), int(state[1]), state[2])
            self._acceptor[k] = state
        return state

    def _set_acceptor_state(self, k: int, state: Tuple[int, int, Any]) -> None:
        self._acceptor[k] = state
        self._store((self.ACCEPTOR_KEY, k, "acceptor"), state)

    def _view_changed(self) -> bool:
        """True once the installed view has ever left epoch 0.

        The participation floor only needs *enforcing* after a
        reconfiguration: the GC watermark can pass a down process's
        checkpoint solely because an ordered removal dropped it from the
        member set, and that removal bumps the epoch (durably) before
        any such GC runs.  Under a static view, below-floor traffic is
        always a reordered straggler whose sender has already decided,
        and answering it — the pre-membership behaviour — is harmless.
        """
        source = getattr(self.endpoint, "view_source", None)
        return source is not None and source.epoch() > 0

    def _reply_decided(self, k: int, dst: int) -> bool:
        decision = self.decided_value(k)
        if decision is None:
            return False
        self.endpoint.send(dst, Decide(k, decision))
        return True

    def _on_prepare(self, msg: Prepare, sender: int) -> None:
        if self._reply_decided(msg.k, sender):
            return
        if msg.k < self.instance_floor and self._view_changed():
            # This instance's records were garbage-collected here: a
            # fresh promise would let a stale recovering proposer
            # re-decide it.  Stay silent; the sender catches up by state
            # transfer instead (see ``_peer_behind``).  Enforced only
            # once the view has ever changed: under a static membership
            # the watermark never outruns a down peer's checkpoint, so a
            # below-floor ballot there is a harmless reordered straggler
            # whose proposer has long since decided.
            return
        promised, accepted_ballot, accepted_value = self._acceptor_state(msg.k)
        if msg.ballot >= promised:
            self._set_acceptor_state(
                msg.k, (msg.ballot, accepted_ballot, accepted_value))
            self.endpoint.send(sender, Promise(
                msg.k, msg.ballot, accepted_ballot, accepted_value))
        else:
            self.endpoint.send(sender, Nack(msg.k, promised))

    def _on_accept(self, msg: Accept, sender: int) -> None:
        if self._reply_decided(msg.k, sender):
            return
        if msg.k < self.instance_floor and self._view_changed():
            return  # records gone: no participation (see _on_prepare)
        promised, _, _ = self._acceptor_state(msg.k)
        if msg.ballot >= promised:
            self._set_acceptor_state(msg.k, (msg.ballot, msg.ballot, msg.value))
            self.endpoint.send(sender, Accepted(msg.k, msg.ballot))
        else:
            self.endpoint.send(sender, Nack(msg.k, promised))

    # -- leader tallies -------------------------------------------------------------------

    def _on_promise(self, msg: Promise, sender: int) -> None:
        attempt = self._attempts.get(msg.k)
        if attempt is None or attempt.ballot != msg.ballot:
            return
        if sender not in self._members(msg.k):
            return  # outside this instance's view: not quorum material
        attempt.promises[sender] = (msg.accepted_ballot, msg.accepted_value)

    def _on_accepted(self, msg: Accepted, sender: int) -> None:
        attempt = self._attempts.get(msg.k)
        if attempt is None or attempt.ballot != msg.ballot:
            return
        if sender not in self._members(msg.k):
            return  # quorums count the instance's pinned members only
        attempt.accepts.add(sender)
        if len(attempt.accepts) >= self._quorum(msg.k):
            self._record_decision(msg.k, attempt.value)
            self.endpoint.multisend(  # repro: noqa(WAL003) -- decision is logged in durable mode; non-durable mode models crash-stop
                Decide(msg.k, attempt.value))

    def _on_nack(self, msg: Nack, sender: int) -> None:
        attempt = self._attempts.get(msg.k)
        if attempt is not None and msg.promised > attempt.ballot:
            attempt.nacked = True

    def _on_decide(self, msg: Decide, sender: int) -> None:
        self._record_decision(msg.k, msg.value)

    def _on_query(self, msg: Query, sender: int) -> None:
        self._reply_decided(msg.k, sender)

    # -- instance driver ----------------------------------------------------------------------

    def _members(self, k: int) -> Tuple[int, ...]:
        """The member set instance ``k`` runs under (pinned at activation)."""
        members = self._instance_members.get(k)
        if members is None:
            members = tuple(self.endpoint.peers())
        return members

    def _quorum(self, k: int) -> int:
        return len(self._members(k)) // 2 + 1

    def _next_ballot(self, k: int) -> int:
        """A fresh, durable, leader-disjoint ballot for instance ``k``.

        The stride must exceed every member id — including this node's
        own, which an *evicted* proposer draining its backlog may no
        longer find among the members — so ``counter * stride +
        node_id`` stays per-node unique; on the contiguous ids of a
        static cluster it equals ``n``, reproducing the fixed-membership
        ballot values bit for bit.
        """
        assert self.node is not None
        peers = self._members(k)
        n = max(len(peers), (max(peers) + 1) if peers else 1,
                self.node.node_id + 1)
        counter = self._attempt_counter.get(k)
        if counter is None:
            counter = int(self._load((self.ACCEPTOR_KEY, k, "attempts"), 0))
        counter += 1
        self._attempt_counter[k] = counter
        self._store((self.ACCEPTOR_KEY, k, "attempts"), counter)
        return counter * n + self.node.node_id

    def _activate(self, k: int) -> None:
        if k in self._drivers or self.decided_value(k) is not None:
            return
        assert self.node is not None
        if k not in self._instance_members:
            self._instance_members[k] = tuple(self.endpoint.peers())
        self._drivers.add(k)
        self.node.spawn(self._drive(k), f"paxos-{k}")

    def _drive(self, k: int):
        """Per-instance driver: run attempts while leader, else wait.

        A non-leader that stays undecided through several silent timeouts
        runs an attempt itself — Paxos stays safe under concurrent
        proposers, and this restores liveness when the nominal leader has
        no proposal for (or no memory of) the instance.
        """
        assert self.node is not None
        sim = self.node.sim
        silent_timeouts = 0
        while self.decided_value(k) is None and \
                (k >= self.instance_floor or not self._view_changed()):
            if self.omega.is_leader() or silent_timeouts >= 2:
                silent_timeouts = 0
                yield from self._run_attempt(k)
            else:
                # Wait for leadership change or a decision, with a timeout;
                # on timeout, pull the (possibly lost) decision with a
                # Query so the fair-loss channel eventually delivers it.
                decision_wait = self.decision_signal(k).wait()
                omega_wait = self.omega.changed.wait()
                timer = sim.event(f"paxos-poll-{k}")
                handle = sim.schedule(self.attempt_timeout * 2, timer.fire)
                fired, _ = yield AnyOf([decision_wait, omega_wait, timer])
                handle.cancel()
                if fired is timer and self.decided_value(k) is None:
                    silent_timeouts += 1
                    self.endpoint.multisend(Query(k))
        self._drivers.discard(k)

    def _run_attempt(self, k: int):
        """One phase-1 + phase-2 attempt at the current ballot."""
        assert self.node is not None
        sim = self.node.sim
        ballot = self._next_ballot(k)
        attempt = _Attempt(ballot)
        self._attempts[k] = attempt
        quorum = self._quorum(k)

        self.endpoint.multisend(Prepare(k, ballot))
        deadline = sim.now + self.attempt_timeout
        while (len(attempt.promises) < quorum and not attempt.nacked
               and sim.now < deadline and self.decided_value(k) is None):
            yield min(0.05, self.attempt_timeout / 4)
        if self.decided_value(k) is not None:
            return
        if len(attempt.promises) < quorum:
            return  # retry with a higher ballot on the next loop pass

        # Choose the value: highest accepted ballot wins, else my proposal.
        best_ballot, best_value = -1, None
        for accepted_ballot, accepted_value in attempt.promises.values():
            if accepted_ballot > best_ballot:
                best_ballot, best_value = accepted_ballot, accepted_value
        if best_ballot >= 0 and best_value is not None:
            attempt.value = best_value
        else:
            attempt.value = self.proposal_of(k)
        if attempt.value is None:
            return  # nothing to propose yet (should not happen in practice)

        self.endpoint.multisend(Accept(k, ballot, attempt.value))
        deadline = sim.now + self.attempt_timeout
        while (len(attempt.accepts) < quorum and not attempt.nacked
               and sim.now < deadline and self.decided_value(k) is None):
            yield min(0.05, self.attempt_timeout / 4)
        # Decision (if reached) was recorded by _on_accepted; otherwise the
        # driver loop retries with a fresh ballot.
