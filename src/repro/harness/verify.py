"""Post-hoc verification of the Atomic Broadcast properties (Section 2.2).

After a scenario run, :func:`verify_run` checks the four defining
properties against everything the omniscient observer saw:

* **Uniform agreement on decisions** — every consensus instance decided
  the same value at every node that knows a decision (P5).
* **Validity** — the canonical delivered sequence contains only messages
  that were actually A-broadcast.
* **Integrity** — no message appears twice in any node's delivery
  sequence (checked per incarnation *and* on the final Agreed queues).
* **Total Order** — every node's delivered set is a prefix of the
  canonical sequence, and every incarnation's delivery stream is a
  contiguous slice of it (so not only final states but entire histories
  agree).
* **Termination** — every message either A-broadcast by a process that
  never crashed afterwards, or A-delivered anywhere, is delivered by
  every *good* node (a node that is up at the end of the settled run).

The canonical sequence is derived from the consensus decisions
themselves: per round, the decided batch in deterministic order, minus
messages already placed by earlier rounds — the same computation every
node performs, so any divergence is a real protocol bug.

Raises :class:`~repro.errors.VerificationError` with a precise message on
the first violation; returns a :class:`VerificationReport` otherwise.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set

from repro.core.agreed import deterministic_order
from repro.core.ids import MessageId
from repro.errors import VerificationError

__all__ = ["verify_overload_safety", "verify_run", "VerificationReport",
           "canonical_sequence"]


class VerificationReport:
    """Summary of a successful verification."""

    def __init__(self, canonical: List[MessageId], rounds: int,
                 good_nodes: List[int], undeliverable: Set[MessageId]):
        self.canonical = canonical
        self.rounds = rounds
        self.good_nodes = good_nodes
        self.undeliverable = undeliverable

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"VerificationReport({len(self.canonical)} ordered over "
                f"{self.rounds} rounds, good={self.good_nodes}, "
                f"{len(self.undeliverable)} unordered-but-excusable)")


def _gather_decisions(cluster) -> Dict[int, Any]:
    """Union of consensus decisions across nodes, with agreement check.

    Starts from the collector's omniscient decision archive (which
    survives log garbage collection) and cross-checks it against every
    decision still retrievable at any node.
    """
    if cluster.collector.decision_conflicts:
        k, a, b = cluster.collector.decision_conflicts[0]
        raise VerificationError(
            f"uniform agreement violated: instance {k} decided "
            f"{sorted(m.id for m in a)} and {sorted(m.id for m in b)}")
    decisions: Dict[int, Any] = dict(cluster.collector.decisions)
    highest = max((getattr(ab, 'k', 0) for ab in cluster.abcasts.values()),
                  default=0)
    for node_id, consensus in cluster.consensuses.items():
        for k in range(highest + 2):
            value = consensus.decided_value(k)
            if value is None:
                continue
            if k in decisions and decisions[k] != value:
                raise VerificationError(
                    f"uniform agreement violated: instance {k} decided "
                    f"{sorted(m.id for m in decisions[k])} at one node and "
                    f"{sorted(m.id for m in value)} at node {node_id}")
            decisions.setdefault(k, value)
    return decisions


def canonical_sequence(decisions: Dict[int, Any]) -> List[MessageId]:
    """The single total order implied by the consensus decisions."""
    canonical: List[MessageId] = []
    seen: Set[MessageId] = set()
    for k in sorted(decisions):
        for message in deterministic_order(decisions[k]):
            if message.id not in seen:
                seen.add(message.id)
                canonical.append(message.id)
    return canonical


def _node_delivered_set(abcast) -> Set[MessageId]:
    """All message ids in a node's final Agreed queue (incl. checkpoint)."""
    ids: Set[MessageId] = set()
    tracker = abcast.agreed.tracker
    # The tracker is the authoritative membership structure; enumerate it
    # through its plain form.
    prefixes, exceptions, _ = tracker.to_plain()
    for (sender, incarnation), prefix in \
            [(tuple(stream), value) for stream, value in prefixes]:
        for seq in range(1, prefix + 1):
            ids.add(MessageId(sender, incarnation, seq))
    for (sender, incarnation), seqs in \
            [(tuple(stream), value) for stream, value in exceptions]:
        for seq in seqs:
            ids.add(MessageId(sender, incarnation, seq))
    return ids


def _is_contiguous_slice(stream: Sequence[MessageId],
                         canonical: Sequence[MessageId]) -> bool:
    """True if ``stream`` equals ``canonical[i:i+len(stream)]`` for some i."""
    if not stream:
        return True
    index = {mid: pos for pos, mid in enumerate(canonical)}
    start = index.get(stream[0])
    if start is None:
        return False
    expected = canonical[start:start + len(stream)]
    return list(stream) == list(expected)


def verify_run(cluster, good_nodes: Optional[List[int]] = None,
               check_termination: bool = True) -> VerificationReport:
    """Check every Atomic Broadcast property on a finished run."""
    collector = cluster.collector
    broadcast_ids = collector.broadcast_ids()

    # Uniform views: membership reconfigurations are A-delivered, so every
    # node must walk the same epoch -> member-set timeline (checked on the
    # omniscient install archive; adoption may legitimately *skip* epochs,
    # but never contradict one).
    if getattr(collector, "view_conflicts", None):
        node_id, epoch, a, b = collector.view_conflicts[0]
        raise VerificationError(
            f"uniform views violated: epoch {epoch} installed as "
            f"{list(a)} somewhere and {list(b)} at node {node_id}")

    if cluster.consensuses:
        decisions = _gather_decisions(cluster)
        canonical = canonical_sequence(decisions)
    else:
        # Sequencer baseline: the canonical order is the longest node's
        # delivered sequence (cross-checked below like any other node).
        longest = max(cluster.abcasts.values(),
                      key=lambda ab: len(ab.agreed.sequence()))
        canonical = [m.id for m in longest.agreed.sequence()]
    canonical_set = set(canonical)
    positions = {mid: pos for pos, mid in enumerate(canonical)}

    # Validity: no spurious messages.
    spurious = canonical_set - broadcast_ids
    if spurious:
        raise VerificationError(
            f"validity violated: delivered ids never broadcast: "
            f"{sorted(spurious)[:5]}")

    # Integrity + Total Order on final queues.
    for node_id, abcast in cluster.abcasts.items():
        delivered = _node_delivered_set(abcast)
        extra = delivered - canonical_set
        if extra:
            raise VerificationError(
                f"node {node_id} delivered ids outside the canonical "
                f"order: {sorted(extra)[:5]}")
        expected_prefix = set(canonical[:len(delivered)])
        if delivered != expected_prefix:
            raise VerificationError(
                f"total order violated at node {node_id}: its delivered "
                f"set is not a canonical prefix "
                f"(size {len(delivered)})")
        # The explicit suffix must be in canonical order as well.
        suffix_ids = [m.id for m in abcast.agreed.sequence()]
        suffix_pos = [positions[mid] for mid in suffix_ids]
        if suffix_pos != sorted(suffix_pos):
            raise VerificationError(
                f"total order violated at node {node_id}: Agreed suffix "
                f"out of canonical order")
        if len(set(suffix_ids)) != len(suffix_ids):
            raise VerificationError(
                f"integrity violated at node {node_id}: duplicate in "
                f"Agreed suffix")

    # Integrity + Total Order on every incarnation's delivery stream.
    for node_id in cluster.node_ids():
        for incarnation in collector.incarnations_of(node_id):
            stream = collector.delivered_ids(node_id, incarnation)
            if len(set(stream)) != len(stream):
                raise VerificationError(
                    f"integrity violated: node {node_id} incarnation "
                    f"{incarnation} delivered a duplicate")
            if not _is_contiguous_slice(stream, canonical):
                raise VerificationError(
                    f"total order violated: node {node_id} incarnation "
                    f"{incarnation} delivery stream is not a contiguous "
                    f"slice of the canonical order")

    # Termination.
    if good_nodes is None:
        good_nodes = [node_id for node_id, node in cluster.nodes.items()
                      if node.up]
        views = getattr(cluster, "views", None)
        if views:
            # View-parameterised cluster: only *members* of the final
            # view are obliged to deliver everything — an evicted-but-up
            # node stops receiving the order stream by design.
            final_members = cluster.current_view().members
            good_nodes = [node_id for node_id in good_nodes
                          if node_id in final_members]
    must_deliver: Set[MessageId] = set()
    for mid, sent_at in collector.broadcast_times.items():
        sender_node = cluster.nodes.get(mid.sender)
        if sender_node is None:
            continue
        crashed_after = any(t >= sent_at for t in sender_node.crash_times)
        if not crashed_after:
            must_deliver.add(mid)
    must_deliver |= set(collector.first_delivery)
    undeliverable = broadcast_ids - canonical_set

    if check_termination:
        missing_globally = must_deliver - canonical_set
        if missing_globally:
            raise VerificationError(
                f"termination violated: {len(missing_globally)} messages "
                f"from never-crashed senders (or already delivered "
                f"somewhere) were never ordered: "
                f"{sorted(missing_globally)[:5]}")
        for node_id in good_nodes:
            delivered = _node_delivered_set(cluster.abcasts[node_id])
            missing = (must_deliver | canonical_set) - delivered
            if missing:
                raise VerificationError(
                    f"termination violated: good node {node_id} missing "
                    f"{len(missing)} messages: {sorted(missing)[:5]}")

    return VerificationReport(canonical, rounds=max(
        (getattr(ab, "k", 0) for ab in cluster.abcasts.values()), default=0),
        good_nodes=list(good_nodes), undeliverable=undeliverable)


def verify_overload_safety(cluster,
                           report: Optional[VerificationReport] = None,
                           offered: Optional[int] = None,
                           rejected: Optional[int] = None) -> None:
    """Check the overload-safety invariants on a finished run.

    Complements :func:`verify_run` (which already guarantees that every
    *accepted* broadcast was delivered in the uniform order) with the
    flow-control contract:

    * **Exact accounting** — per node, ``accepted + rejected`` equals the
      admission attempts the controller saw; when the harness knows the
      scenario-level offered/rejected totals, they must match the
      controllers' sums exactly (no rejection silently lost).
    * **Bounded queues** — the stubborn backlog high-water mark never
      exceeded its configured ``max_backlog``, and (when the flow config
      declares a ``queue_bound``) no protocol Unordered/pending buffer
      ever grew beyond it.

    Raises :class:`~repro.errors.VerificationError` on the first
    violation; returns ``None`` otherwise.
    """
    flows = getattr(cluster, "flows", None) or {}
    for node_id, controller in flows.items():
        if controller.accepted + controller.rejected != controller.offered:
            raise VerificationError(
                f"overload accounting violated at node {node_id}: "
                f"{controller.accepted} accepted + {controller.rejected} "
                f"rejected != {controller.offered} offered")
        by_reason = sum(controller.rejected_by_reason.values())
        if by_reason != controller.rejected:
            raise VerificationError(
                f"overload accounting violated at node {node_id}: "
                f"{controller.rejected} rejections but "
                f"{by_reason} accounted by reason")
    if offered is not None:
        total_accepted = sum(c.accepted for c in flows.values())
        total_rejected = sum(c.rejected for c in flows.values())
        if total_accepted + total_rejected != offered:
            raise VerificationError(
                f"overload accounting violated: cluster accepted "
                f"{total_accepted} + rejected {total_rejected} != "
                f"{offered} offered")
        if rejected is not None and total_rejected != rejected:
            raise VerificationError(
                f"overload accounting violated: controllers counted "
                f"{total_rejected} rejections, the harness observed "
                f"{rejected}")

    stubborn = getattr(cluster, "stubborn", None)
    if stubborn is not None and stubborn.config.max_backlog is not None:
        high = stubborn.metrics.backlog_high_water
        if high > stubborn.config.max_backlog:
            raise VerificationError(
                f"bounded-queue invariant violated: stubborn backlog "
                f"high water {high} > max_backlog "
                f"{stubborn.config.max_backlog}")

    config = getattr(cluster, "config", None)
    flow_config = getattr(config, "flow", None)
    bound = getattr(flow_config, "queue_bound", None)
    if bound is not None:
        for node_id, abcast in cluster.abcasts.items():
            for attr in ("unordered_high_water", "pending_high_water"):
                high = getattr(abcast, attr, 0)
                if high > bound:
                    raise VerificationError(
                        f"bounded-queue invariant violated: node "
                        f"{node_id} {attr} {high} > queue_bound {bound}")
