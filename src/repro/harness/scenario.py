"""Scenario runner: cluster + workload + faults → verified metrics.

:func:`run_scenario` is the one-call entry point used by tests, benches
and examples::

    result = run_scenario(Scenario(
        cluster=ClusterConfig(n=5, seed=3, protocol="alternative"),
        workload=PoissonWorkload(rate_per_node=2.0, duration=20.0),
        faults=RandomFaults(mttf=8.0, mttr=2.0, stabilize_at=25.0, seed=3),
        duration=30.0,
    ))
    result.metrics.throughput
    result.report.canonical   # the verified total order

Every run is verified against the Atomic Broadcast properties unless
explicitly disabled — experiments never report numbers from an incorrect
execution.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import VerificationError
from repro.harness.cluster import Cluster, ClusterConfig
from repro.harness.verify import VerificationReport, verify_run
from repro.metrics.collector import RunMetrics

__all__ = ["Scenario", "ScenarioResult", "run_scenario"]


class Scenario:
    """Declarative description of one experiment run."""

    def __init__(self,
                 cluster: ClusterConfig,
                 workload: Optional[Any] = None,
                 faults: Optional[Any] = None,
                 duration: float = 30.0,
                 settle_limit: Optional[float] = None,
                 verify: bool = True,
                 check_termination: bool = True,
                 good_nodes: Optional[List[int]] = None,
                 tracer: Optional[Any] = None):
        self.cluster = cluster
        self.workload = workload
        self.faults = faults
        self.duration = duration
        self.settle_limit = settle_limit or (duration * 3)
        self.verify = verify
        self.check_termination = check_termination
        self.good_nodes = good_nodes
        # Optional repro.runtime.trace.Tracer attached before the run starts.
        self.tracer = tracer


class ScenarioResult:
    """A finished (and, by default, verified) run."""

    def __init__(self, cluster: Cluster, metrics: RunMetrics,
                 report: Optional[VerificationReport], settled: bool):
        self.cluster = cluster
        self.metrics = metrics
        self.report = report
        self.settled = settled


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Build, run, settle and verify one scenario."""
    cluster = Cluster(scenario.cluster)
    if scenario.tracer is not None:
        cluster.sim.tracer = scenario.tracer
    cluster.start()
    if scenario.faults is not None:
        scenario.faults.install(cluster.sim, cluster.nodes)
    if scenario.workload is not None:
        scenario.workload.install(cluster)
    cluster.run(until=scenario.duration)
    settled = cluster.settle(limit=scenario.settle_limit)
    if scenario.verify and scenario.check_termination and not settled:
        raise VerificationError(
            f"run did not settle within {scenario.settle_limit} time "
            f"units (deliveries still in flight); raise settle_limit or "
            f"check liveness")
    report = None
    if scenario.verify:
        report = verify_run(cluster, good_nodes=scenario.good_nodes,
                            check_termination=scenario.check_termination)
    return ScenarioResult(cluster, cluster.metrics(), report, settled)
