"""Live cluster harness: the protocol stack over asyncio + UDP + files.

:class:`LiveCluster` mirrors :class:`~repro.harness.cluster.Cluster` but
builds each node's stack (through the shared
:func:`~repro.harness.cluster.build_node_stack`) on a
:class:`~repro.runtime.live.LiveRuntime`, connects the nodes over
localhost UDP (:class:`~repro.runtime.live_net.LiveNetwork`) and gives
every node fsync'd file-backed stable storage
(:class:`~repro.storage.file.FileStorage`) under its own directory.

Crash-recovery is exercised for real:

* :meth:`kill` crashes the node *and* closes its UDP socket *and*
  discards its in-process storage object — everything volatile is gone,
  only the files remain;
* :meth:`restart` opens a fresh storage handle over the same directory,
  re-binds a fresh socket on a new ephemeral port, and runs the paper's
  single recovery entry point, which replays the on-disk logs.

The harness exposes the same surface the omniscient verifier
(:func:`~repro.harness.verify.verify_run`) consumes from the simulated
cluster (``collector``, ``nodes``, ``abcasts``, ``consensuses``,
``node_ids()``), so live runs are checked against the exact same
Validity/Integrity/Total-Order/Termination predicates.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from repro.apps.base import ReplicatedStateMachine
from repro.core.messages import AppMessage
from repro.errors import SimulationError
from repro.flow.controller import FlowController
from repro.harness.cluster import ClusterConfig, build_node_stack, \
    stack_settled
from repro.membership import View, ViewManager, reconfig_payload
from repro.metrics.collector import MetricsCollector
from repro.runtime import Node
from repro.runtime.live import LiveRuntime
from repro.runtime.live_net import LiveNetwork
from repro.storage.file import FileStorage
from repro.transport.stubborn import StubbornChannel, StubbornConfig

__all__ = ["LiveCluster"]


class LiveCluster:
    """A ready-to-run cluster on the live runtime.

    Parameters
    ----------
    config:
        The same :class:`~repro.harness.cluster.ClusterConfig` the
        simulated cluster takes.  ``config.network`` contributes only its
        ``loss_rate``/``duplicate_rate`` (injected on top of real UDP);
        delay bounds are whatever the loopback interface does.
        ``config.storage_factory`` is ignored: live nodes always persist
        to files under ``directory``.
    directory:
        Root directory for per-node storage (``<directory>/node<i>``).
        Must outlive the cluster for kill/restart to mean anything.
    """

    def __init__(self, config: ClusterConfig, directory: str):
        self.config = config
        self.directory = directory
        self.runtime = LiveRuntime(seed=config.seed)
        self.network = LiveNetwork(
            self.runtime,
            self.runtime.rng("network"),
            loss_rate=config.network.loss_rate,
            duplicate_rate=config.network.duplicate_rate,
            max_send_buffer=(config.flow.max_send_buffer
                             if config.flow is not None else None),
            wire_config=config.wire)
        # UDP is a real fair-loss channel, so the stubborn retransmission
        # layer is on by default here (config.stubborn=False disables it).
        stubborn_config = config.resolve_stubborn(default_on=True)
        if stubborn_config is not None and \
                not isinstance(config.stubborn, StubbornConfig):
            # Default live tuning: batch same-turn envelopes and piggyback
            # acks, pairing with the transport's datagram coalescing.  An
            # explicit StubbornConfig is honoured verbatim.
            stubborn_config.coalesce = True
        self.stubborn = None
        self.medium: Any = self.network
        if stubborn_config is not None:
            self.stubborn = StubbornChannel(
                self.runtime, self.network, stubborn_config,
                rng=self.runtime.rng("stubborn"))
            self.medium = self.stubborn
        self.collector = MetricsCollector()
        self.nodes: Dict[int, Node] = {}
        self.abcasts: Dict[int, Any] = {}
        self.consensuses: Dict[int, Any] = {}
        self.rsms: Dict[int, ReplicatedStateMachine] = {}
        self.views: Dict[int, ViewManager] = {}
        # Per-node admission controllers (empty without a flow config).
        self.flows: Dict[int, FlowController] = {}
        self.initial_view = View.initial(range(config.n))
        self._started = False
        for node_id in range(config.n):
            self._build_node(node_id, self.initial_view)

    def _build_node(self, node_id: int, view: View,
                    joining: bool = False) -> None:
        flow: Optional[FlowController] = None
        if self.config.flow is not None:
            flow = self.flows.setdefault(
                node_id, FlowController(node_id, self.config.flow))
        node, abcast, consensus, rsm, view_manager = build_node_stack(
            self.runtime, self.medium, self.config, self.collector,
            node_id, FileStorage(self._node_dir(node_id), group_commit=True),
            view=view, joining=joining, flow=flow)
        if consensus is not None:
            self.consensuses[node_id] = consensus
        self.nodes[node_id] = node
        self.abcasts[node_id] = abcast
        self.rsms[node_id] = rsm
        if view_manager is not None:
            self.views[node_id] = view_manager

    def _node_dir(self, node_id: int) -> str:
        return os.path.join(self.directory, f"node{node_id}")

    # -- control -----------------------------------------------------------

    def start(self) -> None:
        """Bind every node's socket, then bring every node up."""
        if self._started:
            raise SimulationError("live cluster already started")
        self._started = True
        self.runtime.loop.run_until_complete(self.network.open_all())
        for node in self.nodes.values():
            node.start()

    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self.nodes))

    def submit(self, node_id: int, payload: Any) -> AppMessage:
        """A-broadcast ``payload`` from ``node_id`` (non-blocking)."""
        return self.rsms[node_id].submit(payload)

    # -- membership ---------------------------------------------------------

    def current_view(self) -> View:
        """The most advanced view installed anywhere in the cluster."""
        view = self.initial_view
        for manager in self.views.values():
            if manager.view.epoch > view.epoch:
                view = manager.view
        return view

    def submit_reconfig(self, op: str, target: int,
                        via: Optional[int] = None) -> AppMessage:
        """A-broadcast a reconfiguration command from an up member."""
        if via is None:
            members = self.current_view().members
            candidates = [nid for nid in sorted(self.nodes)
                          if self.nodes[nid].up and nid in members]
            if not candidates:
                raise SimulationError(
                    "no up member available to submit a reconfiguration")
            via = candidates[0]
        return self.submit(via, reconfig_payload(op, target))

    def add_node(self, node_id: Optional[int] = None) -> int:
        """Grow the live cluster: build, bind, start, propose a joiner.

        Mirrors :meth:`repro.harness.cluster.Cluster.add_node`; the new
        node additionally binds a fresh UDP socket before starting.
        """
        if node_id is None:
            node_id = max(self.nodes) + 1
        if node_id in self.nodes:
            raise SimulationError(f"node {node_id} already exists")
        self._build_node(node_id, self.current_view(), joining=True)
        self.runtime.loop.run_until_complete(self.network.open(node_id))
        self.nodes[node_id].start()
        self.submit_reconfig("join", node_id)
        return node_id

    def remove_node(self, node_id: int, evict: bool = False) -> AppMessage:
        """Shrink the cluster by an ordered ``leave`` (or ``evict``)."""
        if node_id not in self.nodes:
            raise SimulationError(f"unknown node {node_id}")
        return self.submit_reconfig("evict" if evict else "leave", node_id)

    def kill(self, node_id: int) -> None:
        """Kill the node's "process": volatile state, socket, storage handle.

        The files under the node's directory are all that survives —
        exactly the paper's crash model.
        """
        self.nodes[node_id].crash()
        self.network.close(node_id)
        # Drop the in-process storage object; recovery gets a fresh
        # handle over the same directory and must replay from disk.
        self.nodes[node_id].storage = FileStorage(
            self._node_dir(node_id), group_commit=True)

    def restart(self, node_id: int) -> None:
        """Restart a killed node: new socket, recovery from on-disk logs."""
        self.runtime.loop.run_until_complete(self.network.open(node_id))
        self.nodes[node_id].recover()

    def run_for(self, seconds: float) -> None:
        """Drive the event loop for ``seconds`` of wall-clock time."""
        self.runtime.run_for(seconds)

    def settle(self, limit: float, check_interval: float = 0.1) -> bool:
        """Keep running until every up node has delivered every broadcast
        message, or ``limit`` further wall-clock seconds pass.  Returns
        ``True`` when fully settled."""
        target = len(self.collector.broadcast_times)
        deadline = self.runtime.now + limit
        while self.runtime.now < deadline:
            self.runtime.check_errors()
            if self._settled(target):
                return True
            self.run_for(check_interval)
        return self._settled(target)

    def _settled(self, target: int) -> bool:
        return stack_settled(self.nodes, self.abcasts, self.collector,
                             target, members=self.current_view().members)

    def close(self) -> None:
        """Tear the cluster down: crash nodes, close sockets and the loop.

        Re-raises the first exception any protocol callback raised during
        the run, so failures inside the loop are not silently dropped.
        """
        try:
            for node in self.nodes.values():
                if node.up:
                    node.crash()
            self.network.close_all()
            # One final spin so transport close callbacks run.
            if not self.runtime.loop.is_closed():
                self.run_for(0)
            self.runtime.check_errors()
        finally:
            self.runtime.close()

    def __enter__(self) -> "LiveCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
