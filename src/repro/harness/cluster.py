"""Cluster builder: assemble a full protocol stack per configuration.

One :class:`Cluster` owns a simulator, a network, ``n`` nodes and, per
node, the selected protocol stack:

====================  ==========================================================
``protocol``          stack
====================  ==========================================================
``"basic"``           Endpoint → HeartbeatDetector → Ω → PaxosConsensus
                      (durable) → BasicAtomicBroadcast (Figure 2)
``"alternative"``     same, with AlternativeAtomicBroadcast (Figures 3–4)
``"eager"``           same, with the eager-logging strawman baseline
``"ct"``              Endpoint → HeartbeatDetector → ChandraTouegConsensus
                      → ChandraTouegAtomicBroadcast (crash-stop baseline)
``"sequencer"``       Endpoint → FixedSequencerBroadcast (no consensus)
====================  ==========================================================

On top of every stack sits a
:class:`~repro.apps.base.ReplicatedStateMachine` hosting the configured
application and reporting to the shared
:class:`~repro.metrics.collector.MetricsCollector`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.apps.base import ReplicatedStateMachine
from repro.apps.counter import SequenceRecorder
from repro.baselines.ct_abcast import ChandraTouegAtomicBroadcast
from repro.baselines.eager import EagerLoggingAtomicBroadcast
from repro.baselines.sequencer import FixedSequencerBroadcast
from repro.consensus.chandra_toueg import ChandraTouegConsensus
from repro.consensus.paxos import PaxosConsensus
from repro.core.alternative import (AlternativeAtomicBroadcast,
                                    AlternativeConfig)
from repro.core.basic import BasicAtomicBroadcast
from repro.core.messages import AppMessage
from repro.errors import SimulationError
from repro.fdetect.heartbeat import HeartbeatDetector
from repro.flow.controller import FlowConfig, FlowController
from repro.fdetect.omega import OmegaOracle
from repro.membership import View, ViewManager, reconfig_payload
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.runtime import Node, SeedSequence, Simulator
from repro.runtime.wire import WireConfig
from repro.storage.memory import MemoryStorage
from repro.transport.endpoint import Endpoint
from repro.transport.network import Network, NetworkConfig
from repro.transport.stubborn import StubbornChannel, StubbornConfig

__all__ = ["Cluster", "ClusterConfig", "PROTOCOLS", "build_node_stack",
           "stack_settled"]

PROTOCOLS = ("basic", "alternative", "eager", "ct", "sequencer")


class ClusterConfig:
    """Everything needed to build a reproducible cluster."""

    def __init__(self,
                 n: int = 3,
                 seed: int = 0,
                 protocol: str = "basic",
                 network: Optional[NetworkConfig] = None,
                 alt: Optional[AlternativeConfig] = None,
                 app_factory: Callable[[], Any] = SequenceRecorder,
                 gossip_interval: float = 0.25,
                 attempt_timeout: float = 1.0,
                 fd_period: float = 0.5,
                 fd_timeout: float = 2.0,
                 sequencer_id: int = 0,
                 storage_factory: Optional[Callable[[int], Any]] = None,
                 stubborn: Any = None,
                 flow: Optional[FlowConfig] = None,
                 wire: Optional[WireConfig] = None):
        if protocol not in PROTOCOLS:
            raise SimulationError(
                f"unknown protocol {protocol!r}; pick one of {PROTOCOLS}")
        if n < 1:
            raise SimulationError("a cluster needs at least one node")
        if protocol == "sequencer" and not 0 <= sequencer_id < n:
            # Fail at build time: a sequencer outside the member set
            # would otherwise only surface as a mid-run send to an
            # unknown destination.
            raise SimulationError(
                f"sequencer_id {sequencer_id} is not a member id "
                f"(cluster has nodes 0..{n - 1})")
        self.n = n
        self.seed = seed
        self.protocol = protocol
        self.network = network or NetworkConfig()
        self.alt = alt
        self.app_factory = app_factory
        self.gossip_interval = gossip_interval
        self.attempt_timeout = attempt_timeout
        self.fd_period = fd_period
        self.fd_timeout = fd_timeout
        self.sequencer_id = sequencer_id
        # storage_factory(node_id) -> StableStorage; defaults to the
        # in-memory simulation backend.
        self.storage_factory = storage_factory or \
            (lambda node_id: MemoryStorage())
        # stubborn: None = runtime default (off on the simulator, whose
        # Network already models the paper's fair-loss channel the
        # protocols are written against; on for the live UDP runtime),
        # False = force off, True or a StubbornConfig = force on.
        self.stubborn = stubborn
        # flow: None = no admission control (every existing seed
        # universe unchanged); a FlowConfig gates to_broadcast() with a
        # per-node deterministic FlowController.
        if flow is not None and not isinstance(flow, FlowConfig):
            raise SimulationError(
                f"flow must be None or a FlowConfig; got {flow!r}")
        self.flow = flow
        # wire: serialisation settings for the live UDP transport (the
        # simulator passes message objects by reference and never
        # serialises).  None = the runtime default (binary v2 with
        # coalescing, per WireConfig's own defaults).
        if wire is not None and not isinstance(wire, WireConfig):
            raise SimulationError(
                f"wire must be None or a WireConfig; got {wire!r}")
        self.wire = wire

    def resolve_stubborn(self, default_on: bool) -> Optional[StubbornConfig]:
        """The effective stubborn-channel config for a runtime, or None."""
        setting = self.stubborn
        if setting is None:
            setting = default_on
        if setting is False:
            return None
        if setting is True:
            return StubbornConfig()
        if isinstance(setting, StubbornConfig):
            return setting
        raise SimulationError(
            f"stubborn must be None, a bool or a StubbornConfig; "
            f"got {setting!r}")


def build_node_stack(sim: Any, network: Any, config: ClusterConfig,
                     collector: MetricsCollector, node_id: int,
                     storage: Any, view: Optional[View] = None,
                     joining: bool = False,
                     flow: Optional[FlowController] = None) -> Tuple[
                         Node, Any, Optional[Any],
                         ReplicatedStateMachine, Optional[ViewManager]]:
    """Assemble one node's protocol stack on any runtime/medium pair.

    ``sim`` is any :class:`~repro.runtime.api.Runtime` and ``network``
    any :class:`~repro.runtime.api.TransportMedium`; the construction
    order is part of the determinism contract (components start in stack
    order), so both the simulated :class:`Cluster` and the live
    :class:`~repro.harness.live.LiveCluster` build through this one
    function.

    ``view`` parameterises the stack by a membership view: a
    :class:`~repro.membership.manager.ViewManager` is stacked directly
    above the endpoint (so its ``on_start`` restores the durable view
    before any peer-consuming layer starts) and every layer derives
    peers and quorums from the installed view instead of the medium's
    full node list.  ``None`` builds the historic static-membership
    stack.  ``joining`` flags a node added to a running cluster that
    must bootstrap via state transfer instead of proposing from round 0
    (alternative protocol only).

    Returns ``(node, abcast, consensus-or-None, rsm, view-manager-or-None)``.
    """
    node = Node(sim, node_id, storage)
    endpoint = node.add_component(Endpoint(network))
    view_manager: Optional[ViewManager] = None
    if view is not None:
        view_manager = node.add_component(ViewManager(view, collector))
        endpoint.view_source = view_manager
    abcast: Any
    consensus: Optional[Any] = None
    if config.protocol == "sequencer":
        abcast = node.add_component(FixedSequencerBroadcast(
            endpoint, sequencer_id=config.sequencer_id))
    else:
        detector = node.add_component(HeartbeatDetector(
            endpoint, period=config.fd_period,
            initial_timeout=config.fd_timeout,
            durable_epoch=config.protocol != "ct"))
        if config.protocol == "ct":
            consensus = node.add_component(
                ChandraTouegConsensus(endpoint, detector))
        else:
            omega = node.add_component(OmegaOracle(detector))
            consensus = node.add_component(PaxosConsensus(
                endpoint, omega, durable=True,
                attempt_timeout=config.attempt_timeout))
        consensus.observer = collector
        if config.protocol == "basic":
            abcast = BasicAtomicBroadcast(
                endpoint, consensus,
                gossip_interval=config.gossip_interval)
        elif config.protocol == "alternative":
            abcast = AlternativeAtomicBroadcast(
                endpoint, consensus,
                gossip_interval=config.gossip_interval,
                config=config.alt or AlternativeConfig())
        elif config.protocol == "eager":
            abcast = EagerLoggingAtomicBroadcast(
                endpoint, consensus,
                gossip_interval=config.gossip_interval)
        elif config.protocol == "ct":
            abcast = ChandraTouegAtomicBroadcast(
                endpoint, consensus,
                gossip_interval=config.gossip_interval)
        node.add_component(abcast)
    abcast.view_manager = view_manager
    if flow is not None:
        abcast.flow = flow
    if joining and isinstance(abcast, AlternativeAtomicBroadcast) and \
            (config.alt or AlternativeConfig()).delta is not None:
        abcast.mark_joining()
    rsm = node.add_component(ReplicatedStateMachine(
        abcast, config.app_factory, collector))
    network.register(node)
    return node, abcast, consensus, rsm, view_manager


def stack_settled(nodes: Dict[int, Node], abcasts: Dict[int, Any],
                  collector: MetricsCollector, target: int,
                  members: Optional[Tuple[int, ...]] = None) -> bool:
    """True when every up node has delivered everything outstanding.

    Shared between the simulated and live clusters so "settled" means the
    same thing on both runtimes.  ``members`` (the currently installed
    view) restricts the must-deliver-everything obligation to view
    members: an evicted-but-up node stops receiving the order stream by
    design and must not hold settling hostage.  Backlog is still checked
    on *every* up node — even a non-member's pending submissions reach
    the members through its gossip and will be ordered.
    """
    for node_id, node in nodes.items():
        if not node.up:
            continue
        if members is not None and node_id not in members:
            continue
        if abcasts[node_id].delivered_count() < len(collector.first_delivery):
            return False
    # Every up member saw every message that anyone delivered; check the
    # backlog too: anything broadcast but not yet ordered anywhere?
    undelivered = target - len(collector.first_delivery)
    if undelivered == 0:
        return True
    # Messages can be legitimately lost if their sender crashed before
    # dissemination; treat those as settled only if no up node still
    # holds one in its backlog.  A member's backlog blocks settling even
    # when already ordered elsewhere (it will deliver it shortly — wait
    # for that); a *non-member's* backlog only counts while it holds
    # something not yet ordered anywhere, because the order stream no
    # longer reaches it and already-ordered leftovers in its Unordered
    # set would otherwise hold settling hostage forever.
    for node_id, node in nodes.items():
        if not node.up:
            continue
        member = members is None or node_id in members
        ordered = None if member else collector.first_delivery
        if abcasts[node_id].has_backlog(ordered=ordered):
            return False
    return True


class Cluster:
    """A built, ready-to-run cluster."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        self.seeds = SeedSequence(config.seed)
        self.network = Network(self.sim, self.seeds.stream("network"),
                               config.network)
        stubborn_config = config.resolve_stubborn(default_on=False)
        self.stubborn: Optional[StubbornChannel] = None
        self.medium: Any = self.network
        if stubborn_config is not None:
            self.stubborn = StubbornChannel(
                self.sim, self.network, stubborn_config,
                rng=self.seeds.stream("stubborn"))
            self.medium = self.stubborn
        self.collector = MetricsCollector()
        self.nodes: Dict[int, Node] = {}
        self.abcasts: Dict[int, Any] = {}
        self.consensuses: Dict[int, Any] = {}
        self.rsms: Dict[int, ReplicatedStateMachine] = {}
        self.views: Dict[int, ViewManager] = {}
        # Per-node admission controllers (empty without a flow config;
        # controllers survive crashes — admission policy is not state
        # the paper's model wipes, it belongs to the harness).
        self.flows: Dict[int, FlowController] = {}
        self.initial_view = View.initial(range(config.n))
        for node_id in range(config.n):
            self._build_node(node_id, self.initial_view)

    # -- construction ---------------------------------------------------------

    def _build_node(self, node_id: int, view: View,
                    joining: bool = False) -> None:
        config = self.config
        flow: Optional[FlowController] = None
        if config.flow is not None:
            flow = self.flows.setdefault(
                node_id, FlowController(node_id, config.flow))
        node, abcast, consensus, rsm, view_manager = build_node_stack(
            self.sim, self.medium, config, self.collector, node_id,
            config.storage_factory(node_id), view=view, joining=joining,
            flow=flow)
        if consensus is not None:
            self.consensuses[node_id] = consensus
        self.nodes[node_id] = node
        self.abcasts[node_id] = abcast
        self.rsms[node_id] = rsm
        if view_manager is not None:
            self.views[node_id] = view_manager

    # -- control -----------------------------------------------------------------

    def start(self) -> None:
        """Start every node (initial ``up`` transition)."""
        for node in self.nodes.values():
            node.start()

    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self.nodes))

    def submit(self, node_id: int, payload: Any) -> AppMessage:
        """A-broadcast ``payload`` from ``node_id`` (non-blocking)."""
        return self.rsms[node_id].submit(payload)

    # -- membership ---------------------------------------------------------------

    def current_view(self) -> View:
        """The most advanced view installed anywhere in the cluster.

        The omniscient-harness notion of "the" view: epochs are totally
        ordered (reconfiguration commands are A-delivered), so the
        max-epoch view is the one every member converges to.
        """
        view = self.initial_view
        for manager in self.views.values():
            if manager.view.epoch > view.epoch:
                view = manager.view
        return view

    def submit_reconfig(self, op: str, target: int,
                        via: Optional[int] = None) -> AppMessage:
        """A-broadcast a reconfiguration command from an up member."""
        if via is None:
            members = self.current_view().members
            candidates = [nid for nid in sorted(self.nodes)
                          if self.nodes[nid].up and nid in members]
            if not candidates:
                raise SimulationError(
                    "no up member available to submit a reconfiguration")
            via = candidates[0]
        return self.submit(via, reconfig_payload(op, target))

    def add_node(self, node_id: Optional[int] = None) -> int:
        """Grow the cluster: build, start and propose a joining node.

        The new stack is built against the current view (its epoch-0
        bootstrap opinion), started immediately — it gossips, but a
        joining alternative-protocol node proposes nothing until a state
        transfer completes — and a ``join`` command is A-broadcast
        through an existing member so every process installs the widened
        view at the same agreed position.
        """
        if node_id is None:
            node_id = max(self.nodes) + 1
        if node_id in self.nodes:
            raise SimulationError(f"node {node_id} already exists")
        self._build_node(node_id, self.current_view(), joining=True)
        self.nodes[node_id].start()
        self.submit_reconfig("join", node_id)
        return node_id

    def remove_node(self, node_id: int, evict: bool = False) -> AppMessage:
        """Shrink the cluster by an ordered ``leave`` (or ``evict``).

        The node's stack stays built and (unless crashed) up: removal is
        a membership fact, not a process kill.  An evicted node that is
        still running keeps gossiping its backlog to the members, but no
        longer counts towards quorums and stops being addressed.
        """
        if node_id not in self.nodes:
            raise SimulationError(f"unknown node {node_id}")
        return self.submit_reconfig("evict" if evict else "leave", node_id)

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()

    def recover(self, node_id: int) -> None:
        self.nodes[node_id].recover()

    def run(self, until: float) -> float:
        """Advance virtual time."""
        return self.sim.run(until=until)

    def settle(self, limit: float, check_interval: float = 1.0) -> bool:
        """Keep running until every up node has delivered every broadcast
        message, or ``limit`` virtual time passes.  Returns ``True`` when
        fully settled."""
        target = len(self.collector.broadcast_times)
        while self.sim.now < limit:
            if self._settled(target):
                return True
            self.sim.run(until=min(limit, self.sim.now + check_interval))
        return self._settled(target)

    def _settled(self, target: int) -> bool:
        return stack_settled(self.nodes, self.abcasts, self.collector,
                             target, members=self.current_view().members)

    # -- reporting -----------------------------------------------------------------

    def app(self, node_id: int) -> Any:
        """The application instance currently hosted at a node."""
        return self.rsms[node_id].app

    def metrics(self) -> RunMetrics:
        """Aggregate the run's metrics (callable at any point)."""
        storage_by_node = {}
        prefix_ops = {}
        prefix_bytes = {}
        residency = {}
        node_stats: Dict[int, Dict[str, Any]] = {}
        for node_id, node in self.nodes.items():
            storage_by_node[node_id] = node.storage.metrics.snapshot()
            prefix_ops[node_id] = dict(node.storage.metrics.ops_by_prefix)
            prefix_bytes[node_id] = dict(node.storage.metrics.bytes_by_prefix)
            residency[node_id] = node.storage.total_bytes_stored()
            abcast = self.abcasts[node_id]
            node_stats[node_id] = {
                "up": node.up,
                "crashes": node.crash_count,
                "recoveries": node.recovery_count,
                "uptime": node.uptime(),
                "rounds": getattr(abcast, "k", None),
                "delivered": abcast.delivered_count(),
                "replayed_rounds": getattr(abcast, "replayed_rounds", 0),
                "rounds_skipped": getattr(abcast, "rounds_skipped", 0),
                "checkpoints": getattr(abcast, "checkpoints_taken", 0),
                "recovery_durations": list(node.recovery_durations),
                "unordered_high_water": getattr(
                    abcast, "unordered_high_water", 0),
            }
            if node_id in self.views:
                node_stats[node_id]["epoch"] = self.views[node_id].view.epoch
        return RunMetrics(
            duration=self.sim.now,
            collector=self.collector,
            storage_by_node=storage_by_node,
            storage_prefix_ops=prefix_ops,
            storage_prefix_bytes=prefix_bytes,
            storage_residency=residency,
            network=self.network.metrics.snapshot(),
            node_stats=node_stats,
            stubborn=(self.stubborn.metrics.snapshot()
                      if self.stubborn is not None else None),
            flow=({nid: controller.snapshot()
                   for nid, controller in sorted(self.flows.items())}
                  if self.flows else None),
        )
