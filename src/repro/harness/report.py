"""Plain-text table rendering for benchmark output.

The benches print one table per reproduced claim; these helpers keep the
formatting consistent (fixed-width columns, a title rule, footnotes).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["format_table", "print_table", "fmt"]


def fmt(value: Any) -> str:
    """Compact cell formatting: floats to 3 significant places."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[Any]],
                 note: Optional[str] = None) -> str:
    """Render a fixed-width table as a string."""
    materialized: List[List[str]] = [[fmt(cell) for cell in row]
                                     for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    rule = "-" * len(line(headers))
    parts = ["", f"== {title} ==", line(headers), rule]
    parts.extend(line(row) for row in materialized)
    if note:
        parts.append(f"note: {note}")
    return "\n".join(parts)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[Any]],
                note: Optional[str] = None) -> None:
    """Print a table (benches use this to regenerate the paper's claims)."""
    print(format_table(title, headers, rows, note))
