"""Experiment harness: cluster assembly, scenario runs, verification."""

from repro.harness.cluster import PROTOCOLS, Cluster, ClusterConfig
from repro.harness.live import LiveCluster
from repro.harness.report import format_table, print_table
from repro.harness.scenario import Scenario, ScenarioResult, run_scenario
from repro.harness.verify import (VerificationReport, canonical_sequence,
                                  verify_run)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "LiveCluster",
    "PROTOCOLS",
    "Scenario",
    "ScenarioResult",
    "VerificationReport",
    "canonical_sequence",
    "format_table",
    "print_table",
    "run_scenario",
    "verify_run",
]
