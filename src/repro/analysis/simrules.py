"""Simulation-coroutine rules (SIM family).

Tasks in this codebase are plain Python generators driven by the
discrete-event kernel (:mod:`repro.sim.kernel`).  Two silent failure
modes follow from that design:

* calling a generator-returning task function and discarding the result
  creates a generator object that is never iterated — the task simply
  never runs, with no error (the gossip task that was never spawned);
* ``yield``-ing a value the kernel cannot interpret as a wait request.
  The kernel raises for most of these, but raw mutable containers are a
  common enough slip (``yield [event_a, event_b]`` instead of
  ``yield AnyOf([event_a, event_b])``) to deserve a static check.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.registry import Rule

__all__ = ["SIM_RULES"]

_SCOPE_BOUNDARY = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)


def _contains_yield(body) -> bool:
    """True if the statements contain a yield in their own scope
    (nested function/class/lambda bodies are pruned)."""
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, _SCOPE_BOUNDARY):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class LostTaskRule(Rule):
    """SIM001: a discarded generator call is a task that never runs."""

    id = "SIM001"
    name = "no-lost-task"
    summary = ("call to a generator task function whose result is "
               "discarded — the coroutine never executes")
    rationale = ("Kernel tasks only run when spawned (Simulator.spawn / "
                 "Node.spawn), joined (yield task) or delegated "
                 "(yield from).  A bare call builds a generator object "
                 "and drops it: the paper's 'fork task' statement "
                 "silently becomes a no-op.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        module_gens: Set[str] = set()
        method_gens: Set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _contains_yield(node.body):
                    module_gens.add(node.name)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)) and \
                            _contains_yield(item.body):
                        method_gens.add(item.name)
        if not module_gens and not method_gens:
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            name = ""
            if isinstance(func, ast.Name) and func.id in module_gens:
                name = func.id
            elif isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "self" \
                    and func.attr in method_gens:
                name = func.attr
            if name:
                yield ctx.finding(
                    self.id, node.value,
                    f"result of generator task function {name!r} is "
                    f"discarded — the task never runs; spawn it, "
                    f"'yield from' it, or return it")


class RawMutableYieldRule(Rule):
    """SIM002: the kernel cannot interpret a raw container as a wait."""

    id = "SIM002"
    name = "no-raw-mutable-yield"
    summary = ("yield of a raw list/dict/set — not a wait request the "
               "kernel understands")
    rationale = ("Task.wait_on accepts float, Event, Task, AnyOf or None. "
                 "A raw container (e.g. a list of events) is rejected at "
                 "runtime mid-simulation; this catches it at lint time "
                 "and points to AnyOf.")

    _BUILDERS = frozenset({"list", "dict", "set"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Yield) or node.value is None:
                continue
            value = node.value
            if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                  ast.SetComp, ast.DictComp)):
                kind = type(value).__name__
                hint = " (a list of events wants AnyOf([...]))" \
                    if isinstance(value, (ast.List, ast.ListComp)) else ""
            elif isinstance(value, ast.Call) \
                    and isinstance(value.func, ast.Name) \
                    and value.func.id in self._BUILDERS:
                kind = f"{value.func.id}(...)"
                hint = ""
            else:
                continue
            yield ctx.finding(
                self.id, value,
                f"yield of raw mutable {kind} — the kernel accepts only "
                f"float/Event/Task/AnyOf/None wait requests{hint}")


SIM_RULES = (LostTaskRule(), RawMutableYieldRule())
