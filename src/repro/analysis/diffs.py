"""Changed-line filtering for ``repro lint --diff BASE``.

CI runs the full analyzer on pushes to main, but on pull requests the
interesting findings are the ones the PR *introduced*.  ``--diff BASE``
keeps only findings whose (file, line) lies inside a changed hunk of
``git diff BASE`` — the analysis itself still sees the whole tree (the
interprocedural rules need it), only the report is filtered.

Hunks are parsed from ``--unified=0`` output, so a changed line means a
line that is literally added or modified, not merely near a change.
"""

from __future__ import annotations

import os
import re
import subprocess
from typing import Dict, List, Set

from repro.analysis.engine import Finding, Report
from repro.errors import AnalysisError

__all__ = ["changed_lines", "filter_report"]

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(?P<start>\d+)(?:,(?P<count>\d+))? @@")


def changed_lines(base: str, cwd: str = ".") -> Dict[str, Set[int]]:
    """Map absolute file path -> set of new-side changed line numbers."""
    command = ["git", "diff", "--unified=0", "--no-color", base, "--"]
    try:
        proc = subprocess.run(command, cwd=cwd, capture_output=True,
                              text=True)
    except OSError as exc:  # git not installed
        raise AnalysisError(f"cannot run git diff: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        raise AnalysisError(
            f"git diff {base} failed: "
            f"{detail[0] if detail else 'unknown error'}")
    toplevel = _git_toplevel(cwd)
    changed: Dict[str, Set[int]] = {}
    current: Set[int] = set()
    for line in proc.stdout.splitlines():
        if line.startswith("+++ "):
            name = line[4:].strip()
            if name == "/dev/null":
                current = set()
                continue
            if name.startswith("b/"):
                name = name[2:]
            path = os.path.normpath(os.path.join(toplevel, name))
            current = changed.setdefault(path, set())
        else:
            match = _HUNK_RE.match(line)
            if match is None:
                continue
            start = int(match.group("start"))
            count = int(match.group("count") or "1")
            current.update(range(start, start + count))
    return changed


def _git_toplevel(cwd: str) -> str:
    proc = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                          cwd=cwd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise AnalysisError("not inside a git repository "
                            "(--diff needs one)")
    return proc.stdout.strip()


def filter_report(report: Report, changed: Dict[str, Set[int]]) -> Report:
    """Keep only findings on changed lines (paths compared absolute)."""
    kept: List[Finding] = []
    for finding in report.findings:
        path = os.path.normpath(os.path.abspath(finding.path))
        if finding.line in changed.get(path, ()):
            kept.append(finding)
    return Report(kept, report.files_analyzed)
