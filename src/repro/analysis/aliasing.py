"""Cross-node aliasing rules (ALI family).

In-process simulation delivers message objects by reference: whatever a
node puts in a message, the receiving node gets the *same* Python
object.  Real deployments serialize; sim does not — so a shared mutable
object silently couples nodes that the paper treats as communicating
only through (fair-lossy, duplicating) channels, and makes crash
simulation unsound: "losing" one node's volatile state can mutate
another's.

* **ALI001 — cross-node mutable escape.**  Two halves.  In harness
  code, a node-building loop (``build_node_stack``/``Cluster``) that
  passes the *same* storage-like object to every iteration gives all
  simulated nodes one stable storage — a crash-recovery test then
  recovers node A from node B's log.  In protocol code, a mutable
  ``self`` container (dict/list/set built in ``__init__``) that escapes
  into a ``send``/``multisend`` without a copy is received by reference
  on every peer; the sender's next local mutation rewrites "received"
  state remotely.
* **ALI002 — stashed message payload.**  A registered handler stores a
  received message's attribute into node state without copying
  (``self.view = msg.members``).  If the payload is mutable and the
  sender retains a reference (ALI001's mirror image), the two nodes now
  share state.  Attributes whose message-class annotation is immutable
  (``int``, ``FrozenSet``, ...) are exempt.

Both rules only reason about *builtin* mutable containers — custom
classes own their sharing semantics (e.g. ``AppMessage`` is immutable
by contract).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ModuleContext, ProjectContext
from repro.analysis.registry import Rule
from repro.analysis.symbols import ClassInfo

__all__ = ["ALIASING_RULES", "CrossNodeMutableEscapeRule",
           "StashedPayloadRule"]

_ALIAS_SCOPE = ("repro.core", "repro.consensus", "repro.quorum",
                "repro.multigroup", "repro.fdetect", "repro.apps",
                "repro.baselines", "repro.harness", "repro.transport",
                "repro.membership", "repro.flow")

_SEND_OPS = frozenset({"send", "multisend"})
_SEND_RECEIVERS = ("endpoint", "network", "transport")

#: Callables that return a fresh (or immutable) object — they stop an
#: escape: ``frozenset(self.unordered.values())`` shares nothing.
_COPYING_BUILTINS = frozenset({
    "tuple", "frozenset", "list", "dict", "set", "sorted", "str",
    "bytes", "repr", "len", "sum",
})
_COPYING_METHODS = frozenset({"copy", "to_plain", "snapshot", "freeze"})

#: Annotation heads ALI002 treats as safe to stash by reference.
#: ``AppMessage`` is here by the documented contract of
#: :mod:`repro.core.messages`: payloads must be immutable and equality
#: is by id, so sharing the object across nodes is sound.
_IMMUTABLE_HEADS = frozenset({
    "int", "float", "str", "bool", "bytes", "complex", "tuple", "Tuple",
    "frozenset", "FrozenSet", "MessageId", "Timestamp", "AppMessage",
})


def _attr_path(node: ast.AST) -> Tuple[str, ...]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _self_field(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _is_send_call(call: ast.Call) -> bool:
    path = _attr_path(call.func)
    if len(path) < 2 or path[-1] not in _SEND_OPS:
        return False
    receiver = path[:-1]
    return any(token in part
               for part in receiver for token in _SEND_RECEIVERS)


def _escaping_fields(expr: ast.expr) -> List[Tuple[str, ast.expr]]:
    """``(field, anchor node)`` for each ``self.<field>`` reference that
    escapes by-reference through ``expr`` (container displays and
    constructor calls pass references on; copying calls stop them)."""
    found: List[Tuple[str, ast.expr]] = []

    def visit(node: ast.expr) -> None:
        field = _self_field(node)
        if field is not None:
            found.append((field, node))
            return
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                visit(elt)
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    visit(key)
            for part in node.values:
                visit(part)
        elif isinstance(node, ast.Starred):
            visit(node.value)
        elif isinstance(node, ast.IfExp):
            visit(node.body), visit(node.orelse)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and \
                    func.id in _COPYING_BUILTINS:
                return  # fresh object: the escape stops here
            if isinstance(func, ast.Attribute):
                if func.attr in _COPYING_METHODS:
                    return  # x.copy() / x.to_plain()
                # self.unordered.values() — a live view of the field.
                visit(func.value)
            for arg in node.args:
                visit(arg)  # constructors store references
            for keyword in node.keywords:
                visit(keyword.value)

    visit(expr)
    return found


class CrossNodeMutableEscapeRule(Rule):
    """ALI001: no mutable object reachable from more than one node."""

    id = "ALI001"
    name = "cross-node-mutable-escape"
    summary = ("a mutable object (storage handle or self container) is "
               "shared across simulated nodes")
    rationale = ("Section 3's processes share nothing but channels; a "
                 "storage handle reused across a node-building loop or "
                 "a mutable container escaping into a message couples "
                 "nodes by reference and makes crash simulation "
                 "unsound.")
    scope = _ALIAS_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.in_scope(self):
            symbols = project.symbols.modules.get(ctx.module)
            if symbols is None:
                continue
            yield from self._check_loops(project, ctx)
            for info in symbols.classes.values():
                yield from self._check_sends(project, ctx, info)

    # -- half A: shared storage across a node-building loop ----------------

    def _check_loops(self, project: ProjectContext,
                     ctx: ModuleContext) -> Iterator[Finding]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            assigned = self._loop_bound_names(loop)
            for call in ast.walk(loop):
                if not isinstance(call, ast.Call) or \
                        not isinstance(call.func, ast.Name):
                    continue
                params = self._callee_params(project, ctx.module,
                                             call.func.id)
                if params is None:
                    continue
                pairs = list(zip(params, call.args))
                pairs += [(kw.arg, kw.value) for kw in call.keywords
                          if kw.arg is not None]
                for param, arg in pairs:
                    if param is None or not (
                            "storage" in param or param == "store"):
                        continue
                    if self._loop_invariant(arg, assigned):
                        yield ctx.finding(
                            self.id, arg,
                            f"storage handle shared across a "
                            f"node-building loop: argument to "
                            f"{param!r} of {call.func.id}() is created "
                            f"outside the loop, so every node gets the "
                            f"same stable storage — recovering one "
                            f"node would replay another's log; build "
                            f"one per iteration (storage_factory)")

    @staticmethod
    def _loop_bound_names(loop: ast.AST) -> Set[str]:
        bound: Set[str] = set()

        def collect(target: ast.AST) -> None:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    bound.add(node.id)

        if isinstance(loop, ast.For):
            collect(loop.target)
        for node in ast.walk(loop):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    collect(target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                collect(node.target)
            elif isinstance(node, ast.NamedExpr):
                collect(node.target)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        collect(item.optional_vars)
        return bound

    @staticmethod
    def _callee_params(project: ProjectContext, module: str,
                       name: str) -> Optional[List[str]]:
        table = project.symbols
        info = table.resolve_name(module, name)
        func: Optional[ast.AST] = None
        if info is not None:
            func = info.methods.get("__init__")
        else:
            resolved = table.resolve_function(module, name)
            if resolved is not None:
                func = resolved[1]
        if func is None:
            return None
        args = getattr(func, "args", None)
        if args is None:
            return None
        return [arg.arg for arg in args.args if arg.arg != "self"]

    @staticmethod
    def _loop_invariant(arg: ast.AST, assigned: Set[str]) -> bool:
        if isinstance(arg, ast.Name):
            return arg.id not in assigned
        if isinstance(arg, ast.Attribute):
            path = _attr_path(arg)
            return bool(path) and path[0] not in assigned
        return False  # calls/literals produce fresh values per iteration

    # -- half B: mutable field escaping into a send ------------------------

    def _check_sends(self, project: ProjectContext, ctx: ModuleContext,
                     info: ClassInfo) -> Iterator[Finding]:
        mutable = project.symbols.mutable_attrs(info.qualname)
        if not mutable:
            return
        seen: Set[Tuple[int, int, str]] = set()
        for func in info.methods.values():
            for call in ast.walk(func):
                if not isinstance(call, ast.Call) or \
                        not _is_send_call(call):
                    continue
                roots = list(call.args)
                roots += [kw.value for kw in call.keywords]
                for root in roots:
                    for field, node in _escaping_fields(root):
                        if field not in mutable:
                            continue
                        key = (node.lineno, node.col_offset, field)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield ctx.finding(
                            self.id, node,
                            f"mutable field self.{field} (a builtin "
                            f"container built in __init__) escapes "
                            f"into a message without copy: in-sim "
                            f"delivery is by reference, so peers "
                            f"receive the live object and later local "
                            f"mutations rewrite their state; wrap it "
                            f"(frozenset/tuple/.copy()) before "
                            f"sending")


class StashedPayloadRule(Rule):
    """ALI002: handlers must copy mutable payloads before stashing."""

    id = "ALI002"
    name = "stashed-message-payload"
    summary = ("a registered handler stores a received message's "
               "attribute into node state without copying")
    rationale = ("The sender may retain (and mutate) the object it "
                 "sent; in-sim delivery shares it by reference, so an "
                 "uncopied stash couples two nodes' volatile state.")
    scope = _ALIAS_SCOPE
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.in_scope(self):
            symbols = project.symbols.modules.get(ctx.module)
            if symbols is None:
                continue
            for info in symbols.classes.values():
                yield from self._check_class(project, ctx, info)

    def _check_class(self, project: ProjectContext, ctx: ModuleContext,
                     info: ClassInfo) -> Iterator[Finding]:
        registrations = self._registrations(info)
        for handler_name, msg_class_name in sorted(registrations.items()):
            found = project.symbols.find_method(info.qualname,
                                                handler_name)
            if found is None:
                continue
            owner, handler = found
            handler_ctx = project.by_module.get(owner.module)
            if handler_ctx is None:
                continue
            args = getattr(handler, "args", None)
            if args is None:
                continue
            params = [arg.arg for arg in args.args if arg.arg != "self"]
            if not params:
                continue
            msg_param = params[0]
            immutable = self._immutable_payload_attrs(
                project, owner.module, msg_class_name)
            yield from self._check_handler(handler_ctx, handler,
                                           handler_name, msg_param,
                                           immutable)

    @staticmethod
    def _registrations(info: ClassInfo) -> Dict[str, Optional[str]]:
        """handler method name -> message class name (when resolvable)."""
        registrations: Dict[str, Optional[str]] = {}
        for func in info.methods.values():
            for call in ast.walk(func):
                if not isinstance(call, ast.Call) or \
                        len(call.args) < 2:
                    continue
                if _attr_path(call.func)[-1:] not in (
                        ("register",), ("register_handler",)):
                    continue
                handler = _self_field(call.args[1])
                if handler is None:
                    continue
                msg_class = None
                type_arg = call.args[0]
                if isinstance(type_arg, ast.Attribute) and \
                        isinstance(type_arg.value, ast.Name):
                    msg_class = type_arg.value.id
                registrations[handler] = msg_class
        return registrations

    @staticmethod
    def _immutable_payload_attrs(project: ProjectContext, module: str,
                                 msg_class_name: Optional[str]
                                 ) -> Optional[Set[str]]:
        """Attrs of the message class with immutable annotations, or
        ``None`` when the class is unknown (conservative: flag all)."""
        if msg_class_name is None:
            return None
        info = project.symbols.resolve_name(module, msg_class_name)
        if info is None:
            return None
        init = info.methods.get("__init__")
        args = getattr(init, "args", None)
        if args is None:
            return None
        immutable: Set[str] = set()
        for arg in list(args.args) + list(args.kwonlyargs):
            annotation = arg.annotation
            head = ""
            while isinstance(annotation, ast.Subscript):
                annotation = annotation.value
            if isinstance(annotation, ast.Name):
                head = annotation.id
            elif isinstance(annotation, ast.Attribute):
                head = annotation.attr
            if head in _IMMUTABLE_HEADS:
                immutable.add(arg.arg)
        return immutable

    def _check_handler(self, ctx: ModuleContext, handler: ast.AST,
                       handler_name: str, msg_param: str,
                       immutable: Optional[Set[str]]
                       ) -> Iterator[Finding]:
        def payload_attr(node: ast.AST) -> Optional[str]:
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == msg_param:
                return node.attr
            return None

        for node in ast.walk(handler):
            stashed: Optional[ast.AST] = None
            target_field: Optional[str] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                field = _self_field(target)
                if field is None and isinstance(target, ast.Subscript):
                    field = _self_field(target.value)
                if field is not None and \
                        payload_attr(node.value) is not None:
                    stashed, target_field = node.value, field
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                field = _self_field(node.func.value)
                if field is not None and node.func.attr in (
                        "append", "add", "update", "extend",
                        "setdefault", "insert", "appendleft"):
                    for arg in node.args:
                        if payload_attr(arg) is not None:
                            stashed, target_field = arg, field
                            break
            if stashed is None:
                continue
            attr = payload_attr(stashed)
            assert attr is not None
            if immutable is not None and attr in immutable:
                continue
            yield ctx.finding(
                self.id, stashed,
                f"handler {handler_name} stashes message payload "
                f".{attr} into self.{target_field} without copy: the "
                f"sender may retain and mutate the same object "
                f"(in-sim delivery is by reference); store a copy "
                f"(tuple/frozenset/.copy()) instead")


ALIASING_RULES = (CrossNodeMutableEscapeRule(), StashedPayloadRule())
